//! Vendored stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io (so no `syn` /
//! `quote`); these derives parse the item's token stream by hand and
//! emit impls of the shim `serde` crate's `Serialize` /
//! `Deserialize` traits as generated source text. The generated
//! impls follow serde's externally-tagged data model:
//!
//! - named struct        → JSON object
//! - newtype struct      → the inner value
//! - tuple struct        → JSON array
//! - unit enum variant   → `"Variant"`
//! - newtype variant     → `{"Variant": value}`
//! - tuple variant       → `{"Variant": [..]}`
//! - struct variant      → `{"Variant": {..}}`
//!
//! Supported field attribute: `#[serde(default)]`. `Option` fields
//! default to `None` when missing, as in upstream serde. Generics
//! are not supported (and not used in the workspace).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
    is_option: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated Deserialize impl parses")
}

// --- parsing -------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    // Skip outer attributes and visibility until `struct` / `enum`.
    let keyword = loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                if s == "pub" {
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
            }
            Some(_) => {}
            None => panic!("serde shim derive: no struct or enum found"),
        }
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generics are not supported (type `{name}`)");
        }
    }
    let kind = if keyword == "struct" {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("serde shim derive: malformed struct `{name}`: {other:?}"),
        }
    } else {
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: malformed enum `{name}`: {other:?}"),
        }
    };
    Item { name, kind }
}

/// Consumes leading `#[...]` attributes, returning whether one of
/// them was `#[serde(default)]`.
fn skip_attrs(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut default = false;
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.next() {
                    if attr_is_serde_default(g.stream()) {
                        default = true;
                    }
                }
            }
            _ => return default,
        }
    }
}

/// Recognizes the content of a `#[serde(default)]` attribute. Any
/// other `serde(...)` option is rejected loudly rather than silently
/// mis-serialized.
fn attr_is_serde_default(ts: TokenStream) -> bool {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<String> = g.stream().into_iter().map(|t| t.to_string()).collect();
            if inner.len() == 1 && inner[0] == "default" {
                true
            } else {
                panic!(
                    "serde shim derive: unsupported serde attribute `{}`",
                    inner.join("")
                );
            }
        }
        _ => false,
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut toks = ts.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let default = skip_attrs(&mut toks);
        if let Some(TokenTree::Ident(id)) = toks.peek() {
            if id.to_string() == "pub" {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
        }
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, found {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected `:` after `{name}`, found {other:?}"),
        }
        // Skip the type, tracking `<`/`>` depth so commas inside
        // generic arguments don't terminate the field. Remember the
        // ident right before the first top-level `<` to spot
        // `Option<..>` fields.
        let mut angle = 0i32;
        let mut last_ident: Option<String> = None;
        let mut opening_ident: Option<String> = None;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == ',' && angle == 0 {
                        toks.next();
                        break;
                    }
                    if c == '<' {
                        if angle == 0 && opening_ident.is_none() {
                            opening_ident = last_ident.clone();
                        }
                        angle += 1;
                    }
                    if c == '>' {
                        angle -= 1;
                    }
                    toks.next();
                }
                Some(TokenTree::Ident(id)) => {
                    last_ident = Some(id.to_string());
                    toks.next();
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
        let is_option = opening_ident.as_deref() == Some("Option");
        fields.push(Field {
            name,
            default,
            is_option,
        });
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut trailing_comma = false;
    for t in ts {
        saw_tokens = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                ',' if angle == 0 => {
                    count += 1;
                    trailing_comma = true;
                }
                '<' => angle += 1,
                '>' => angle -= 1,
                _ => {}
            }
        }
    }
    if saw_tokens && !trailing_comma {
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let mut toks = ts.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        skip_attrs(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, found {other:?}"),
        };
        let kind = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip anything up to the variant separator (covers explicit
        // discriminants like `= 3`).
        loop {
            match toks.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
                None => break,
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// --- code generation ----------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{n}\"), \
                         ::serde::Serialize::to_value(&self.{n})),",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{entries}])")
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: String = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(ty: &str, v: &Variant) -> String {
    let tag = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            format!("{ty}::{tag} => ::serde::Value::Str(::std::string::String::from(\"{tag}\")),")
        }
        VariantKind::Tuple(1) => format!(
            "{ty}::{tag}(f0) => ::serde::Value::Object(::std::vec![(\
                ::std::string::String::from(\"{tag}\"), \
                ::serde::Serialize::to_value(f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: String = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                .collect();
            format!(
                "{ty}::{tag}({binds}) => ::serde::Value::Object(::std::vec![(\
                    ::std::string::String::from(\"{tag}\"), \
                    ::serde::Value::Array(::std::vec![{items}]))]),",
                binds = binds.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
            let items: String = binds
                .iter()
                .map(|b| {
                    format!(
                        "(::std::string::String::from(\"{b}\"), \
                         ::serde::Serialize::to_value({b})),"
                    )
                })
                .collect();
            format!(
                "{ty}::{tag} {{ {binds} }} => ::serde::Value::Object(::std::vec![(\
                    ::std::string::String::from(\"{tag}\"), \
                    ::serde::Value::Object(::std::vec![{items}]))]),",
                binds = binds.join(", ")
            )
        }
    }
}

/// Expression deserializing one named field from `fields` (an object
/// pair slice in scope), honoring `#[serde(default)]` and optional
/// `Option` fields.
fn de_field_expr(f: &Field, ty: &str) -> String {
    let missing = if f.default {
        "::core::default::Default::default()".to_string()
    } else if f.is_option {
        "::core::option::Option::None".to_string()
    } else {
        format!(
            "return ::core::result::Result::Err(::serde::missing_field(\"{n}\", \"{ty}\"))",
            n = f.name
        )
    };
    format!(
        "{n}: match ::serde::obj_get(fields, \"{n}\") {{\n\
             ::core::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
             ::core::option::Option::None => {missing},\n\
         }},",
        n = f.name
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: String = fields.iter().map(|f| de_field_expr(f, name)).collect();
            format!(
                "let fields = ::serde::expect_object(value, \"{name}\")?;\n\
                 ::core::result::Result::Ok({name} {{ {entries} }})"
            )
        }
        ItemKind::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        ItemKind::TupleStruct(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "let items = ::serde::expect_tuple(value, {n}, \"{name}\")?;\n\
                 ::core::result::Result::Ok({name}({entries}))"
            )
        }
        ItemKind::UnitStruct => format!("::core::result::Result::Ok({name})"),
        ItemKind::Enum(variants) => {
            let arms: String = variants.iter().map(|v| de_variant_arm(name, v)).collect();
            format!(
                "let (tag, payload) = ::serde::enum_parts(value, \"{name}\")?;\n\
                 match tag {{\n\
                     {arms}\n\
                     other => ::core::result::Result::Err(\
                         ::serde::unknown_variant(other, \"{name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
              -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn de_variant_arm(ty: &str, v: &Variant) -> String {
    let tag = &v.name;
    let payload = format!(
        "payload.ok_or_else(|| ::serde::DeError::custom(\
            \"variant `{tag}` of `{ty}` expects a payload\"))?"
    );
    match &v.kind {
        VariantKind::Unit => {
            format!("\"{tag}\" => ::core::result::Result::Ok({ty}::{tag}),")
        }
        VariantKind::Tuple(1) => format!(
            "\"{tag}\" => {{\n\
                 let inner = {payload};\n\
                 ::core::result::Result::Ok({ty}::{tag}(\
                     ::serde::Deserialize::from_value(inner)?))\n\
             }}"
        ),
        VariantKind::Tuple(n) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "\"{tag}\" => {{\n\
                     let inner = {payload};\n\
                     let items = ::serde::expect_tuple(inner, {n}, \"{ty}::{tag}\")?;\n\
                     ::core::result::Result::Ok({ty}::{tag}({entries}))\n\
                 }}"
            )
        }
        VariantKind::Named(fields) => {
            let entries: String = fields.iter().map(|f| de_field_expr(f, ty)).collect();
            format!(
                "\"{tag}\" => {{\n\
                     let inner = {payload};\n\
                     let fields = ::serde::expect_object(inner, \"{ty}::{tag}\")?;\n\
                     ::core::result::Result::Ok({ty}::{tag} {{ {entries} }})\n\
                 }}"
            )
        }
    }
}
