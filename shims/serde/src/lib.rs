//! Vendored stand-in for the parts of `serde` that forumcast uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! ships this minimal replacement. Instead of serde's visitor-based
//! zero-copy architecture, it uses a concrete JSON-like [`Value`]
//! tree: `Serialize` renders a type into a `Value`, `Deserialize`
//! reads one back. The derive macros (from the sibling
//! `serde_derive` shim) generate impls matching serde's default
//! externally-tagged data model, so the JSON produced by the
//! `serde_json` shim matches what upstream serde_json would emit for
//! the same types.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the intermediate representation between
/// typed data and text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number (`NaN`/infinite serialize as `null`).
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Deserialization error: a message plus optional field context.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization of `self` into a [`Value`]. Mirrors
/// `serde::Serialize` for the JSON-only data model.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction of `Self` from a [`Value`]. Mirrors
/// `serde::Deserialize`.
pub trait Deserialize: Sized {
    /// Parses a value tree into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] on shape or type mismatch.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- helpers used by derive-generated code -------------------------

/// Interprets `v` as an object, with `ty` naming the expected type in
/// errors.
pub fn expect_object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
    match v {
        Value::Object(fields) => Ok(fields),
        other => Err(DeError(format!(
            "expected object for `{ty}`, found {}",
            kind(other)
        ))),
    }
}

/// Interprets `v` as an array of exactly `len` elements.
pub fn expect_tuple<'a>(v: &'a Value, len: usize, ty: &str) -> Result<&'a [Value], DeError> {
    match v {
        Value::Array(items) if items.len() == len => Ok(items),
        Value::Array(items) => Err(DeError(format!(
            "expected {len} elements for `{ty}`, found {}",
            items.len()
        ))),
        other => Err(DeError(format!(
            "expected array for `{ty}`, found {}",
            kind(other)
        ))),
    }
}

/// Looks up a field in an object's pairs.
pub fn obj_get<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Error for an object missing a required field.
pub fn missing_field(field: &str, ty: &str) -> DeError {
    DeError(format!("missing field `{field}` in `{ty}`"))
}

/// Splits an externally-tagged enum value into `(tag, payload)`:
/// `"Tag"` for unit variants, `{"Tag": payload}` otherwise.
pub fn enum_parts<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, Option<&'a Value>), DeError> {
    match v {
        Value::Str(tag) => Ok((tag, None)),
        Value::Object(fields) if fields.len() == 1 => {
            Ok((fields[0].0.as_str(), Some(&fields[0].1)))
        }
        other => Err(DeError(format!(
            "expected enum tag for `{ty}`, found {}",
            kind(other)
        ))),
    }
}

/// Error for an unrecognized enum tag.
pub fn unknown_variant(tag: &str, ty: &str) -> DeError {
    DeError(format!("unknown variant `{tag}` for `{ty}`"))
}

/// Human-readable name of a value's kind, for error messages.
pub fn kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "boolean",
        Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

// --- primitive impls ----------------------------------------------

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range")))?,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() < 9.0e15 => *f as i64,
                    other => return Err(DeError(format!(
                        "expected integer, found {}", kind(other)
                    ))),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as u64;
                match i64::try_from(n) {
                    Ok(i) => Value::I64(i),
                    Err(_) => Value::U64(n),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match v {
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range")))?,
                    Value::U64(n) => *n,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f < 1.9e19 => *f as u64,
                    other => return Err(DeError(format!(
                        "expected integer, found {}", kind(other)
                    ))),
                };
                <$t>::try_from(n).map_err(|_| DeError(format!(
                    "{n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::I64(n) => Ok(*n as f64),
            Value::U64(n) => Ok(*n as f64),
            Value::F64(f) => Ok(*f),
            other => Err(DeError(format!("expected number, found {}", kind(other)))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected boolean, found {}", kind(other)))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {}", kind(other)))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError(format!(
                "expected single-char string, found {}",
                kind(other)
            ))),
        }
    }
}

// --- composite impls ----------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, found {}", kind(other)))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($i),+].len();
                let items = expect_tuple(v, LEN, "tuple")?;
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys must render to / parse from JSON object keys (strings).
pub trait MapKey: Sized + std::hash::Hash + Eq + Ord {
    /// Key as an object-key string.
    fn to_key(&self) -> String;
    /// Key parsed back from an object-key string.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError(format!("invalid map key `{s}`")))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<K, V, S>
{
    fn to_value(&self) -> Value {
        // Sorted keys keep the output deterministic across runs
        // (std's HashMap iteration order is randomized).
        let mut keys: Vec<&K> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.to_key(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = expect_object(v, "map")?;
        fields
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = expect_object(v, "map")?;
        fields
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn options_and_vecs_roundtrip() {
        let v: Option<u32> = None;
        assert_eq!(v.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        let xs = vec![(vec![1.0f64, 2.0], 3.0f64)];
        let back = Vec::<(Vec<f64>, f64)>::from_value(&xs.to_value()).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn integer_range_checks() {
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
        assert_eq!(u64::from_value(&Value::U64(u64::MAX)).unwrap(), u64::MAX);
    }

    #[test]
    fn hashmap_serializes_sorted() {
        let mut m = std::collections::HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        match m.to_value() {
            Value::Object(fields) => {
                assert_eq!(fields[0].0, "a");
                assert_eq!(fields[1].0, "b");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
