//! Vendored stand-in for the parts of `proptest` that forumcast
//! uses. The build environment has no access to crates.io, so this
//! shim provides the same surface — `proptest!`, `prop_assert*`,
//! `Strategy` with `prop_map`/`prop_flat_map`, range / tuple / vec /
//! regex-pattern strategies — over a simple deterministic runner.
//!
//! Differences from upstream: no shrinking (failures report the
//! already-generated values via the assertion message), and string
//! "regex" strategies support the subset actually used in tests
//! (`.`, `[a-z]` classes with ranges, `{lo,hi}` repetitions).
//!
//! Each test function runs `PROPTEST_CASES` (default 64) cases from
//! an RNG seeded by the test's name, so failures reproduce exactly.

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a second strategy from each generated value and
        /// draws from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the held value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident : $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }

    /// A `Vec` of strategies generates a `Vec` of values, one per
    /// element (proptest semantics).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// String patterns act as strategies for matching strings,
    /// supporting the subset of regex syntax used in the workspace:
    /// `.`, character classes with ranges, and `{lo,hi}` repetition.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            crate::pattern::generate(self, rng)
        }
    }
}

pub mod pattern {
    //! Tiny regex-subset string generator backing `&str` strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    enum CharSet {
        /// `.` — an arbitrary printable character (mostly ASCII, with
        /// some multi-byte characters mixed in to exercise UTF-8
        /// handling, mirroring proptest's arbitrary-`char` behavior).
        Any,
        /// An explicit alternative set from `[...]` or a literal.
        OneOf(Vec<char>),
    }

    struct Unit {
        set: CharSet,
        lo: usize,
        hi: usize,
    }

    /// Characters `.` can produce.
    const ANY_POOL: &[char] = &[
        'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'i', 'j', 'k', 'l', 'm', 'n', 'o', 'p', 'q', 'r',
        's', 't', 'u', 'v', 'w', 'x', 'y', 'z', 'A', 'B', 'C', 'D', 'E', 'Z', '0', '1', '2', '9',
        ' ', ' ', ' ', '.', ',', '!', '?', ';', ':', '-', '_', '(', ')', '[', ']', '{', '}', '#',
        '/', '\\', '"', '\'', '`', '+', '=', '*', '&', '%', '$', '@', '<', '>', 'é', 'ñ', 'ß', 'λ',
        'π', '中', '文', '🦀',
    ];

    /// Generates one string matching `pat`.
    ///
    /// # Panics
    ///
    /// Panics on syntax outside the supported subset.
    pub fn generate(pat: &str, rng: &mut StdRng) -> String {
        let units = parse(pat);
        let mut out = String::new();
        for u in &units {
            let n = if u.lo == u.hi {
                u.lo
            } else {
                rng.gen_range(u.lo..=u.hi)
            };
            for _ in 0..n {
                match &u.set {
                    CharSet::Any => out.push(ANY_POOL[rng.gen_range(0..ANY_POOL.len())]),
                    CharSet::OneOf(chars) => {
                        out.push(chars[rng.gen_range(0..chars.len())]);
                    }
                }
            }
        }
        out
    }

    fn parse(pat: &str) -> Vec<Unit> {
        let chars: Vec<char> = pat.chars().collect();
        let mut units = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set = match chars[i] {
                '.' => {
                    i += 1;
                    CharSet::Any
                }
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed `[` in pattern `{pat}`"))
                        + i;
                    let mut members = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (a, b) = (chars[j], chars[j + 2]);
                            assert!(a <= b, "bad range in pattern `{pat}`");
                            for c in a..=b {
                                members.push(c);
                            }
                            j += 3;
                        } else {
                            members.push(chars[j]);
                            j += 1;
                        }
                    }
                    assert!(!members.is_empty(), "empty class in pattern `{pat}`");
                    i = close + 1;
                    CharSet::OneOf(members)
                }
                '\\' => {
                    i += 2;
                    CharSet::OneOf(vec![chars[i - 1]])
                }
                c => {
                    assert!(
                        !"{}()*+?|^$".contains(c),
                        "unsupported pattern syntax `{c}` in `{pat}`"
                    );
                    i += 1;
                    CharSet::OneOf(vec![c])
                }
            };
            // Optional {lo,hi} / {n} repetition.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed `{{` in pattern `{pat}`"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("pattern repeat lower bound"),
                        b.trim().parse().expect("pattern repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("pattern repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            units.push(Unit { set, lo, hi });
        }
        units
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Size specification for [`vec`]: an exact length or a range.
    pub trait IntoSizeRange {
        /// Lower and inclusive upper bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec`s of `element`-generated values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.lo == self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..=self.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case runner used by the `proptest!` macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of cases per property: `PROPTEST_CASES` or 64.
    pub fn num_cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }

    /// Per-test RNG seeded from the test's name (FNV-1a), so each
    /// property sees a stable, distinct stream.
    pub fn seeded_rng(test_name: &str) -> StdRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: strategy::Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for () {
    type Strategy = strategy::Just<()>;
    fn arbitrary() -> Self::Strategy {
        strategy::Just(())
    }
}

impl Arbitrary for bool {
    type Strategy = BoolStrategy;
    fn arbitrary() -> Self::Strategy {
        BoolStrategy
    }
}

/// Uniform `bool` strategy backing `any::<bool>()`.
pub struct BoolStrategy;

impl strategy::Strategy for BoolStrategy {
    type Value = bool;
    fn generate(&self, rng: &mut rand::rngs::StdRng) -> bool {
        use rand::Rng;
        rng.gen::<bool>()
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Defines property tests: each `fn name(arg in strategy, ..) { .. }`
/// expands to a test running [`test_runner::num_cases`] generated
/// cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::test_runner::num_cases();
                let mut __rng = $crate::test_runner::seeded_rng(stringify!($name));
                for _ in 0..__cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )+
    };
}

/// Asserts a condition inside a property (panics with the message on
/// failure; the shim has no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
        }

        #[test]
        fn tuples_and_vecs_compose(
            v in crate::collection::vec((0u32..5, 0.0f64..1.0), 0..8),
        ) {
            prop_assert!(v.len() < 8);
            for (a, b) in v {
                prop_assert!(a < 5 && (0.0..1.0).contains(&b));
            }
        }

        #[test]
        fn patterns_match_their_class(s in "[a-c]{1,2}") {
            prop_assert!(!s.is_empty() && s.len() <= 2);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s}");
        }

        #[test]
        fn flat_map_threads_outer_value(
            v in (1usize..5).prop_flat_map(|n| {
                crate::collection::vec(0u32..10, n).prop_map(move |xs| (n, xs))
            }),
        ) {
            prop_assert_eq!(v.0, v.1.len());
        }
    }

    #[test]
    fn exact_size_vec() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::seeded_rng("exact");
        let v = crate::collection::vec(0.0f64..1.0, 4usize).generate(&mut rng);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn dot_pattern_produces_valid_strings() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::seeded_rng("dot");
        for _ in 0..50 {
            let s = ".{0,20}".generate(&mut rng);
            assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    fn vec_of_strategies_is_a_strategy() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::seeded_rng("vecstrat");
        let strategies: Vec<_> = (0usize..3).map(|i| (i * 10)..(i * 10 + 5)).collect();
        let values = strategies.generate(&mut rng);
        assert_eq!(values.len(), 3);
        for (i, v) in values.iter().enumerate() {
            assert!((i * 10..i * 10 + 5).contains(v));
        }
    }
}
