//! Vendored stand-in for the parts of `serde_json` that forumcast
//! uses: `to_string`, `to_string_pretty`, and `from_str` over the
//! shim `serde` crate's [`Value`] model.
//!
//! Floats print via Rust's shortest-roundtrip `Display` (with a
//! trailing `.0` for integral values, as upstream serde_json does),
//! so serialize → parse roundtrips are exact — the property the
//! upstream `float_roundtrip` feature guarantees.

use serde::{Deserialize, Serialize, Value};

/// Serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Kept for API compatibility; the shim writer cannot fail.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (2-space indent).
///
/// # Errors
///
/// Kept for API compatibility; the shim writer cannot fail.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a value of type `T`.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// --- writer --------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        // Upstream serde_json renders non-finite floats as null.
        out.push_str("null");
        return;
    }
    let s = f.to_string();
    out.push_str(&s);
    // `Display` for f64 is shortest-roundtrip but drops the decimal
    // point for integral values; keep it so the number reads back as
    // a float, like upstream serde_json.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser --------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".to_string())),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path over unescaped UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error("invalid unicode escape".to_string()))?);
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error("truncated unicode escape".to_string()))?;
        let s =
            std::str::from_utf8(slice).map_err(|_| Error("invalid unicode escape".to_string()))?;
        let n = u32::from_str_radix(s, 16)
            .map_err(|_| Error(format!("invalid unicode escape `{s}`")))?;
        self.pos = end;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = s.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = s.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        s.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{s}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_compact() {
        let v = vec![(vec![1.5f64, -2.0], 3.0f64)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[[1.5,-2.0],3.0]]");
        let back: Vec<(Vec<f64>, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for &f in &[0.1, 1.0 / 3.0, 1e-300, 123_456_789.123_456_79, f64::MAX] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, f, "{json}");
        }
    }

    #[test]
    fn pretty_printing_indents() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), vec![1u32, 2]);
        let json = to_string_pretty(&m).unwrap();
        assert_eq!(json, "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn parses_nested_json_with_whitespace() {
        let json = r#" { "a" : [ 1 , 2.5 , "x\n\"y" , null , true ] , "b" : {} } "#;
        let v: Value = from_str(json).unwrap();
        match v {
            Value::Object(fields) => {
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[0].0, "a");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str(r#""é🦀""#).unwrap();
        assert_eq!(s, "é🦀");
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<u32>("\"no\"").is_err());
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
