//! Vendored stand-in for the parts of the `rand` crate that forumcast
//! uses. The build environment has no access to crates.io, so the
//! workspace ships this minimal implementation: a seedable
//! xoshiro256++ generator behind the familiar `Rng` / `SeedableRng` /
//! `SliceRandom` traits.
//!
//! The generator is of good statistical quality but its output stream
//! is **not** bit-compatible with upstream `rand 0.8`; all forumcast
//! tests assert statistical or structural properties rather than
//! exact stream values, so this does not matter for correctness.

use std::ops::Range;

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed. Deterministic.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic, `Clone`, and fast.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Returns the raw xoshiro256++ state, for checkpointing.
        /// Restoring the four words via [`StdRng::from_state`] resumes
        /// the exact output stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`].
        ///
        /// # Panics
        ///
        /// Debug-panics on the all-zero state, which is a fixed point
        /// of xoshiro256++ (the generator would emit zeros forever).
        /// Seeding via SplitMix64 can never produce it.
        pub fn from_state(s: [u64; 4]) -> Self {
            debug_assert!(s != [0; 4], "all-zero xoshiro state is degenerate");
            StdRng { s }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform sampling of a value of type `T` from the "standard"
/// distribution (all bit patterns for ints, `[0, 1)` for floats).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Per-type uniform sampling primitives, with Lemire's unbiased
/// method for integers. Mirrors upstream rand's `SampleUniform` so
/// that the blanket [`SampleRange`] impls below unify the sampled
/// type with the range's element type during inference.
pub trait SampleUniform: Sized {
    /// Uniform draw from the half-open interval `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from the closed interval `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Uniform sampling from a range expression.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Unbiased uniform integer in `[0, span)` via Lemire's widening
/// multiply with rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let t = span.wrapping_neg() % span;
        while lo < t {
            x = rng.next_u64();
            m = (x as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi - lo) as u64;
                lo + uniform_u64(rng, span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = <$t>::standard_sample(rng);
                let v = lo + u * (hi - lo);
                // Guard against rounding up to `hi` for tiny spans.
                if v >= hi {
                    lo
                } else {
                    v
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = <$t>::standard_sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related random operations.

    use crate::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(-3i32..3);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn clone_forks_identical_streams() {
        let mut a = StdRng::seed_from_u64(5);
        let _ = a.gen::<u64>();
        let mut b = a.clone();
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn state_roundtrip_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..17 {
            let _ = a.gen::<u64>();
        }
        let saved = a.state();
        let expected: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let mut resumed = StdRng::from_state(saved);
        let got: Vec<u64> = (0..32).map(|_| resumed.gen::<u64>()).collect();
        assert_eq!(expected, got);
    }
}
