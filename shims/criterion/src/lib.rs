//! Vendored stand-in for the parts of `criterion` that forumcast's
//! benches use. The build environment has no access to crates.io, so
//! this shim provides a compatible API over a simple wall-clock
//! measurement loop: per benchmark it warms up, scales the iteration
//! count to a time budget, takes `sample_size` samples, and reports
//! the median with min/max spread in criterion-like output.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n-- group: {name} --");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: F) {
        run_one(name, self.sample_size, self.measurement_time, &mut routine);
    }
}

/// Identifier combining a function name and a parameter, for
/// parameterized benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter (criterion's `from_parameter`).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut routine: F) {
        let full = format!("{}/{}", self.name, name);
        run_one(
            &full,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
            &mut routine,
        );
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) {
        let full = format!("{}/{}", self.name, id.id);
        run_one(
            &full,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
            &mut |b: &mut Bencher| routine(b, input),
        );
    }

    /// Ends the group (output flushing happens eagerly; kept for API
    /// compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark routines; [`Bencher::iter`] runs the measured
/// closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, budget: Duration, routine: &mut F) {
    // Warmup sample: one iteration, to size the measurement loop.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = budget.as_secs_f64() / samples as f64;
    let iters = (per_sample / once.as_secs_f64()).clamp(1.0, 1e6) as u64;

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(f64::total_cmp);
    let median = times[times.len() / 2];
    println!(
        "{name:<48} time: [{} {} {}]  ({iters} iters x {samples} samples)",
        fmt_time(times[0]),
        fmt_time(median),
        fmt_time(times[times.len() - 1]),
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            sample_size: 2,
            measurement_time: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| ());
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &p| {
            b.iter(|| p * 2);
        });
        group.finish();
        assert!(ran >= 3, "warmup + 2 samples, got {ran}");
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
