//! Vendored stand-in for the `crossbeam::scope` API used by
//! forumcast, implemented on top of `std::thread::scope` (stable
//! since Rust 1.63, which made the crossbeam implementation
//! redundant upstream too).
//!
//! One deliberate deviation: closures receive the [`Scope`] handle
//! **by value** (it is `Copy`) rather than by reference, because
//! `std::thread::Scope` is invariant over its scope lifetime and
//! cannot be re-borrowed through a wrapper. Call sites using
//! `|scope|` / `|_|` patterns compile unchanged.

use std::thread::ScopedJoinHandle;

/// A scope handle passed to [`scope`]'s closure and to each spawned
/// thread's closure, mirroring crossbeam's `Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope itself
    /// (crossbeam convention), allowing nested spawns.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(handle))
    }
}

/// Runs `f` with a scope in which borrowing, non-`'static` threads
/// can be spawned; all threads are joined before `scope` returns.
///
/// Unlike crossbeam, a panicking child propagates its panic when the
/// scope joins it rather than surfacing through the returned
/// `Result`; the `Result` wrapper is kept for call-site
/// compatibility and is always `Ok`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_locals() {
        let counter = AtomicUsize::new(0);
        let n = 8;
        scope(|s| {
            for _ in 0..n {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), n);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = scope(|_| 41 + 1).unwrap();
        assert_eq!(v, 42);
    }
}
