//! Vendored stand-in for the `parking_lot::Mutex` API used by
//! forumcast, wrapping `std::sync::Mutex` with parking_lot's
//! poison-free interface (`lock()` returns the guard directly).

use std::sync::MutexGuard;

/// A mutex whose `lock` never returns a poison error: if a thread
/// panicked while holding the lock, the data is handed out anyway
/// (parking_lot semantics).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(0);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for i in 0..4 {
                let m = &m;
                s.spawn(move || m.lock().push(i));
            }
        });
        let mut v = m.into_inner();
        v.sort_unstable();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }
}
