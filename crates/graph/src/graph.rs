//! Undirected graph over a dense node population.

use serde::{Deserialize, Serialize};

/// An undirected, unweighted graph on nodes `0 .. num_nodes`.
///
/// Stored as sorted adjacency lists with no self-loops and no parallel
/// edges; both SLN graphs of the paper are symmetric binary adjacency
/// matrices, which this mirrors sparsely.
///
/// # Example
///
/// ```
/// use forumcast_graph::Graph;
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 1)]);
/// assert_eq!(g.num_edges(), 2); // duplicate collapsed
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(g.has_edge(2, 1));
/// assert_eq!(g.degree(3), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl Graph {
    /// Creates an edgeless graph with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); num_nodes],
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list. Self-loops are ignored and
    /// duplicate edges collapsed.
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Self {
        let mut g = Graph::new(num_nodes);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if the edge
    /// was new. Self-loops are ignored (returns `false`).
    ///
    /// # Panics
    ///
    /// Panics when `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        assert!(
            (u as usize) < self.adj.len() && (v as usize) < self.adj.len(),
            "edge ({u}, {v}) out of range for {} nodes",
            self.adj.len()
        );
        if u == v {
            return false;
        }
        let pos = match self.adj[u as usize].binary_search(&v) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        self.adj[u as usize].insert(pos, v);
        let pos = self.adj[v as usize]
            .binary_search(&u)
            .expect_err("symmetric invariant violated");
        self.adj[v as usize].insert(pos, u);
        self.num_edges += 1;
        true
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighbors of `u`.
    ///
    /// # Panics
    ///
    /// Panics when `u` is out of range.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics when `u` is out of range.
    pub fn degree(&self, u: u32) -> usize {
        self.adj[u as usize].len()
    }

    /// `true` when the edge `{u, v}` exists.
    ///
    /// # Panics
    ///
    /// Panics when `u` is out of range.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Mean degree `Σ_u deg(u) / n` (0 for the empty graph). The paper
    /// reports 2.6 for `G_QA` and 3.7 for `G_D`.
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        2.0 * self.num_edges as f64 / self.adj.len() as f64
    }

    /// Iterates over each undirected edge once, as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            let u = u as u32;
            nbrs.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_is_symmetric_and_deduped() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 2));
        assert!(!g.add_edge(2, 0));
        assert!(g.has_edge(0, 2) && g.has_edge(2, 0));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = Graph::new(2);
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::new(2).add_edge(0, 5);
    }

    #[test]
    fn neighbors_stay_sorted() {
        let g = Graph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn average_degree_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn average_degree_empty_graph() {
        assert_eq!(Graph::new(0).average_degree(), 0.0);
        assert_eq!(Graph::new(5).average_degree(), 0.0);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 1), (3, 0)]);
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn serde_roundtrip() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}
