//! Undirected graph over a dense node population.

use serde::{Deserialize, Serialize};

/// An undirected, unweighted graph on nodes `0 .. num_nodes`.
///
/// Stored in **compressed sparse row** (CSR) form: one flat
/// `neighbors` array holding every node's sorted adjacency back to
/// back, indexed by `offsets` (`offsets[u] .. offsets[u + 1]` is the
/// slice of node `u`). No self-loops, no parallel edges; both SLN
/// graphs of the paper are symmetric binary adjacency matrices, which
/// this mirrors sparsely — and the flat layout keeps BFS-heavy kernels
/// (closeness, betweenness, PageRank) on two contiguous allocations
/// instead of one heap cell per node.
///
/// # Example
///
/// ```
/// use forumcast_graph::Graph;
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 1)]);
/// assert_eq!(g.num_edges(), 2); // duplicate collapsed
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(g.has_edge(2, 1));
/// assert_eq!(g.degree(3), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `num_nodes + 1` slice boundaries into `neighbors`.
    pub(crate) offsets: Vec<u32>,
    /// All adjacency lists, concatenated; each node's slice is sorted.
    /// Always `2 * num_edges` long.
    pub(crate) neighbors: Vec<u32>,
    num_edges: usize,
}

impl Graph {
    /// Creates an edgeless graph with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        Graph {
            offsets: vec![0; num_nodes + 1],
            neighbors: Vec::new(),
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list in one bulk pass (sort +
    /// dedup + counting sort into CSR) — the fast path the SLN
    /// builders use. Self-loops are ignored and duplicate edges
    /// collapsed.
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is `>= num_nodes`.
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Self {
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            assert!(
                (u as usize) < num_nodes && (v as usize) < num_nodes,
                "edge ({u}, {v}) out of range for {num_nodes} nodes"
            );
            if u == v {
                continue;
            }
            pairs.push((u, v));
            pairs.push((v, u));
        }
        pairs.sort_unstable();
        pairs.dedup();
        assert!(
            u32::try_from(pairs.len()).is_ok(),
            "graph too large for u32 CSR offsets"
        );
        let mut offsets = vec![0u32; num_nodes + 1];
        for &(u, _) in &pairs {
            offsets[u as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let num_edges = pairs.len() / 2;
        let neighbors: Vec<u32> = pairs.into_iter().map(|(_, v)| v).collect();
        Graph {
            offsets,
            neighbors,
            num_edges,
        }
    }

    /// Adds the undirected edge `{u, v}`. Returns `true` if the edge
    /// was new. Self-loops are ignored (returns `false`).
    ///
    /// This is the incremental slow path (`O(E)` per call: the CSR
    /// arrays are spliced); construct large graphs with
    /// [`from_edges`](Graph::from_edges) instead.
    ///
    /// # Panics
    ///
    /// Panics when `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: u32, v: u32) -> bool {
        let n = self.num_nodes();
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of range for {n} nodes"
        );
        if u == v {
            return false;
        }
        let pos = match self.neighbors_of(u).binary_search(&v) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        self.splice(u, pos, v);
        let pos = self
            .neighbors_of(v)
            .binary_search(&u)
            .expect_err("symmetric invariant violated");
        self.splice(v, pos, u);
        self.num_edges += 1;
        true
    }

    /// Inserts `value` at position `pos` of node `u`'s slice, shifting
    /// every later slice right by one.
    fn splice(&mut self, u: u32, pos: usize, value: u32) {
        let at = self.offsets[u as usize] as usize + pos;
        self.neighbors.insert(at, value);
        for off in &mut self.offsets[u as usize + 1..] {
            *off += 1;
        }
    }

    fn neighbors_of(&self, u: u32) -> &[u32] {
        &self.neighbors[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sorted neighbors of `u`.
    ///
    /// # Panics
    ///
    /// Panics when `u` is out of range.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        self.neighbors_of(u)
    }

    /// Degree of `u`.
    ///
    /// # Panics
    ///
    /// Panics when `u` is out of range.
    pub fn degree(&self, u: u32) -> usize {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as usize
    }

    /// `true` when the edge `{u, v}` exists.
    ///
    /// # Panics
    ///
    /// Panics when `u` is out of range.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        self.neighbors_of(u).binary_search(&v).is_ok()
    }

    /// Mean degree `Σ_u deg(u) / n` (0 for the empty graph). The paper
    /// reports 2.6 for `G_QA` and 3.7 for `G_D`.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            return 0.0;
        }
        2.0 * self.num_edges as f64 / self.num_nodes() as f64
    }

    /// Iterates over each undirected edge once, as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_nodes() as u32).flat_map(move |u| {
            self.neighbors_of(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_is_symmetric_and_deduped() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(0, 2));
        assert!(!g.add_edge(2, 0));
        assert!(g.has_edge(0, 2) && g.has_edge(2, 0));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = Graph::new(2);
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        Graph::new(2).add_edge(0, 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bulk_edge_panics() {
        Graph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn neighbors_stay_sorted() {
        let g = Graph::from_edges(5, &[(2, 4), (2, 0), (2, 3), (2, 1)]);
        assert_eq!(g.neighbors(2), &[0, 1, 3, 4]);
    }

    #[test]
    fn incremental_and_bulk_builds_agree() {
        // Same edge multiset inserted in an adversarial order: CSR
        // splicing must land in the exact state the bulk path builds.
        let edges = [(4u32, 1u32), (0, 3), (1, 0), (3, 4), (1, 4), (2, 2), (0, 1)];
        let bulk = Graph::from_edges(5, &edges);
        let mut inc = Graph::new(5);
        for &(u, v) in &edges {
            inc.add_edge(u, v);
        }
        assert_eq!(bulk, inc);
        // {1,4}, {0,3}, {0,1}, {3,4} — duplicates and the self-loop drop.
        assert_eq!(bulk.num_edges(), 4);
    }

    #[test]
    fn average_degree_triangle() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn average_degree_empty_graph() {
        assert_eq!(Graph::new(0).average_degree(), 0.0);
        assert_eq!(Graph::new(5).average_degree(), 0.0);
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 1), (3, 0)]);
        let mut edges: Vec<_> = g.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn serde_roundtrip() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let json = serde_json::to_string(&g).unwrap();
        let back: Graph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}
