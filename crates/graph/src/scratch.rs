//! Reusable per-thread scratch state for the BFS-based kernels.
//!
//! Every centrality in this crate runs one BFS (or one Brandes pass)
//! per source node. Allocating the distance/σ/δ/predecessor buffers
//! per source is the dominant non-traversal cost on forum-scale
//! graphs, so the kernels draw scratch from a [`ScratchPool`] instead:
//! a chunk of sources acquires one scratch, runs every source through
//! it, and releases it for the next chunk. Resets are `O(visited)`,
//! not `O(n)` — a per-node *visit epoch stamp* marks which entries
//! belong to the current run, so untouched entries are never cleared.
//!
//! The pool reports how often a scratch was reused (`sources −
//! scratches created`), surfaced by the kernels as the
//! `graph.bfs.scratch_reuses` obs counter — on an armed run this
//! equals the number of BFS sources minus the pool size, proving the
//! inner loops allocate nothing per source.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::graph::Graph;

/// Epoch-stamped BFS scratch: distances, the visit queue, and the
/// stamp array marking which `dist` entries are valid this run.
#[derive(Debug, Default)]
pub struct BfsScratch {
    dist: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Visited nodes in BFS order; doubles as the queue (breadth-first
    /// order is append-only, so a head cursor replaces a deque).
    queue: Vec<u32>,
}

impl BfsScratch {
    /// A fresh scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        BfsScratch::default()
    }

    /// Sizes the buffers for an `n`-node graph and advances the
    /// epoch, wrapping safely (a wrap clears the stamps once).
    fn begin(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, 0);
            self.stamp.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.queue.clear();
    }

    /// Runs BFS from `source`, leaving distances and the visit order
    /// readable via [`dist`](Self::dist) / [`visited`](Self::visited).
    ///
    /// # Panics
    ///
    /// Panics when `source` is out of range.
    pub fn run(&mut self, g: &Graph, source: u32) {
        assert!(
            (source as usize) < g.num_nodes(),
            "source {source} out of range"
        );
        self.begin(g.num_nodes());
        self.stamp[source as usize] = self.epoch;
        self.dist[source as usize] = 0;
        self.queue.push(source);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u as usize];
            for &v in g.neighbors(u) {
                if self.stamp[v as usize] != self.epoch {
                    self.stamp[v as usize] = self.epoch;
                    self.dist[v as usize] = du + 1;
                    self.queue.push(v);
                }
            }
        }
    }

    /// Distance to `v` from the last [`run`](Self::run) source;
    /// `u32::MAX` when unreachable.
    pub fn dist(&self, v: u32) -> u32 {
        if self.stamp[v as usize] == self.epoch {
            self.dist[v as usize]
        } else {
            u32::MAX
        }
    }

    /// The nodes reached by the last run, in BFS order (source first).
    pub fn visited(&self) -> &[u32] {
        &self.queue
    }
}

/// Epoch-stamped scratch for one Brandes source pass: shortest-path
/// counts `σ`, dependencies `δ`, distances, the visit stack, and a
/// flat predecessor store laid out by the graph's CSR offsets (node
/// `w`'s predecessors are a prefix of its neighbor slot range), so a
/// pass performs no allocation at all.
#[derive(Debug, Default)]
pub struct BrandesScratch {
    sigma: Vec<f64>,
    dist: Vec<u32>,
    delta: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
    stack: Vec<u32>,
    pred_buf: Vec<u32>,
    pred_count: Vec<u32>,
}

impl BrandesScratch {
    /// A fresh scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        BrandesScratch::default()
    }

    fn begin(&mut self, g: &Graph) {
        let n = g.num_nodes();
        if self.sigma.len() < n {
            self.sigma.resize(n, 0.0);
            self.dist.resize(n, 0);
            self.delta.resize(n, 0.0);
            self.stamp.resize(n, 0);
            self.pred_count.resize(n, 0);
        }
        if self.pred_buf.len() < g.neighbors.len() {
            self.pred_buf.resize(g.neighbors.len(), 0);
        }
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.stack.clear();
    }

    /// Runs one Brandes source pass from `s`, adding each visited
    /// node's scaled dependency into `bc`. The floating-point
    /// operation order is identical to the historical per-source
    /// implementation, so accumulated results are bitwise unchanged.
    pub fn accumulate(&mut self, g: &Graph, s: u32, scale: f64, bc: &mut [f64]) {
        self.begin(g);
        let (epoch, s_us) = (self.epoch, s as usize);
        self.stamp[s_us] = epoch;
        self.sigma[s_us] = 1.0;
        self.dist[s_us] = 0;
        self.delta[s_us] = 0.0;
        self.pred_count[s_us] = 0;
        self.stack.push(s);
        let mut head = 0;
        while head < self.stack.len() {
            let v = self.stack[head];
            head += 1;
            let dv = self.dist[v as usize];
            for &w in g.neighbors(v) {
                let w_us = w as usize;
                if self.stamp[w_us] != epoch {
                    self.stamp[w_us] = epoch;
                    self.dist[w_us] = dv + 1;
                    self.sigma[w_us] = 0.0;
                    self.delta[w_us] = 0.0;
                    self.pred_count[w_us] = 0;
                    self.stack.push(w);
                }
                if self.dist[w_us] == dv + 1 {
                    self.sigma[w_us] += self.sigma[v as usize];
                    let slot = g.offsets[w_us] as usize + self.pred_count[w_us] as usize;
                    self.pred_buf[slot] = v;
                    self.pred_count[w_us] += 1;
                }
            }
        }
        for &w in self.stack.iter().rev() {
            let w_us = w as usize;
            let start = g.offsets[w_us] as usize;
            for i in 0..self.pred_count[w_us] as usize {
                let v = self.pred_buf[start + i] as usize;
                self.delta[v] += self.sigma[v] / self.sigma[w_us] * (1.0 + self.delta[w_us]);
            }
            if w != s {
                bc[w_us] += self.delta[w_us] * scale;
            }
        }
    }
}

/// A lock-guarded free list of scratch buffers shared by the parallel
/// kernels: each work chunk acquires one scratch (reusing a released
/// one when available), runs its sources, and releases it. Tracks how
/// many scratches were ever created so callers can report
/// `sources − created` as the reuse count.
#[derive(Debug, Default)]
pub struct ScratchPool<T> {
    free: Mutex<Vec<T>>,
    created: AtomicUsize,
}

impl<T: Default> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> Self {
        ScratchPool {
            free: Mutex::new(Vec::new()),
            created: AtomicUsize::new(0),
        }
    }

    /// Pops a released scratch, or creates a fresh one.
    pub fn acquire(&self) -> T {
        let popped = self
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        popped.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            T::default()
        })
    }

    /// Returns a scratch to the pool for the next chunk.
    pub fn release(&self, item: T) {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(item);
    }

    /// How many scratches this pool ever created.
    pub fn created(&self) -> usize {
        self.created.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_bfs_runs_from_different_sources_are_correct() {
        // Path 0-1-2-3 plus isolated 4: the second run must not see
        // stale distances from the first.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let mut scratch = BfsScratch::new();
        scratch.run(&g, 0);
        assert_eq!(
            (0..5).map(|v| scratch.dist(v)).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, u32::MAX]
        );
        scratch.run(&g, 3);
        assert_eq!(
            (0..5).map(|v| scratch.dist(v)).collect::<Vec<_>>(),
            vec![3, 2, 1, 0, u32::MAX]
        );
        assert_eq!(scratch.visited(), &[3, 2, 1, 0]);
        // A disconnected source only sees itself.
        scratch.run(&g, 4);
        assert_eq!(scratch.dist(4), 0);
        assert_eq!(scratch.dist(0), u32::MAX);
        assert_eq!(scratch.visited(), &[4]);
    }

    #[test]
    fn scratch_grows_to_larger_graphs() {
        let small = Graph::from_edges(2, &[(0, 1)]);
        let big = Graph::from_edges(6, &[(0, 5), (5, 3)]);
        let mut scratch = BfsScratch::new();
        scratch.run(&small, 1);
        assert_eq!(scratch.dist(0), 1);
        scratch.run(&big, 0);
        assert_eq!(scratch.dist(3), 2);
        assert_eq!(scratch.dist(4), u32::MAX);
    }

    #[test]
    fn epoch_wrap_clears_stamps() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let mut scratch = BfsScratch::new();
        scratch.run(&g, 0);
        scratch.epoch = u32::MAX; // force the wrap path
        scratch.run(&g, 1);
        assert_eq!(scratch.dist(0), 1);
        assert_eq!(scratch.dist(2), u32::MAX);
    }

    #[test]
    fn pool_reuses_released_scratch() {
        let pool: ScratchPool<BfsScratch> = ScratchPool::new();
        let a = pool.acquire();
        assert_eq!(pool.created(), 1);
        pool.release(a);
        let _b = pool.acquire();
        assert_eq!(pool.created(), 1, "released scratch must be reused");
        let _c = pool.acquire();
        assert_eq!(pool.created(), 2);
    }
}
