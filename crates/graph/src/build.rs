//! Constructing the SLN graphs `G_QA` and `G_D` from forum threads.

use forumcast_data::Thread;

use crate::graph::Graph;

/// Builds the **question–answer graph** `G_QA` over `num_users` users
/// from the given threads (a partition `Ω ⊆ Q`): `w_{u,v} = 1` iff one
/// of `u, v` asked a question in `Ω` and the other answered it
/// (paper Section II-B).
///
/// # Example
///
/// ```
/// use forumcast_data::{Post, PostBody, Thread, UserId};
/// use forumcast_graph::qa_graph;
/// let t = Thread::new(
///     0,
///     Post::new(UserId(0), 0.0, 0, PostBody::default()),
///     vec![
///         Post::new(UserId(1), 1.0, 0, PostBody::default()),
///         Post::new(UserId(2), 2.0, 0, PostBody::default()),
///     ],
/// );
/// let g = qa_graph(3, std::slice::from_ref(&t));
/// assert!(g.has_edge(0, 1) && g.has_edge(0, 2));
/// assert!(!g.has_edge(1, 2)); // answerers not linked in G_QA
/// ```
pub fn qa_graph(num_users: u32, threads: &[Thread]) -> Graph {
    let mut edges = Vec::new();
    for t in threads {
        let asker = t.asker().0;
        for a in &t.answers {
            edges.push((asker, a.author.0));
        }
    }
    Graph::from_edges(num_users as usize, &edges)
}

/// Builds the **denser graph** `G_D`: all participants of a thread
/// (asker and answerers) are pairwise connected,
/// `w_{u,v} = 1{∃q, i ≥ 0, j ≥ 0 : u(p_{q,i}) = u, u(p_{q,j}) = v}`.
///
/// # Example
///
/// ```
/// use forumcast_data::{Post, PostBody, Thread, UserId};
/// use forumcast_graph::dense_graph;
/// let t = Thread::new(
///     0,
///     Post::new(UserId(0), 0.0, 0, PostBody::default()),
///     vec![
///         Post::new(UserId(1), 1.0, 0, PostBody::default()),
///         Post::new(UserId(2), 2.0, 0, PostBody::default()),
///     ],
/// );
/// let g = dense_graph(3, std::slice::from_ref(&t));
/// assert!(g.has_edge(1, 2)); // co-answerers are linked in G_D
/// ```
pub fn dense_graph(num_users: u32, threads: &[Thread]) -> Graph {
    let mut edges = Vec::new();
    for t in threads {
        let users = t.participants();
        for (i, &u) in users.iter().enumerate() {
            for &v in &users[i + 1..] {
                edges.push((u.0, v.0));
            }
        }
    }
    Graph::from_edges(num_users as usize, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use forumcast_data::{Post, PostBody, UserId};

    fn post(u: u32, t: f64) -> Post {
        Post::new(UserId(u), t, 0, PostBody::default())
    }

    fn threads() -> Vec<Thread> {
        vec![
            // q0: asker 0; answerers 1, 2
            Thread::new(0, post(0, 0.0), vec![post(1, 1.0), post(2, 2.0)]),
            // q1: asker 2; answerer 3
            Thread::new(1, post(2, 3.0), vec![post(3, 4.0)]),
            // q2: asker 4; unanswered
            Thread::new(2, post(4, 5.0), vec![]),
        ]
    }

    #[test]
    fn qa_links_asker_to_each_answerer_only() {
        let g = qa_graph(5, &threads());
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && g.has_edge(2, 3));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn dense_links_all_thread_participants() {
        let g = dense_graph(5, &threads());
        assert!(g.has_edge(1, 2), "co-answerers linked");
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn dense_is_superset_of_qa() {
        let qa = qa_graph(5, &threads());
        let d = dense_graph(5, &threads());
        for (u, v) in qa.edges() {
            assert!(d.has_edge(u, v), "G_D must contain ({u},{v})");
        }
        assert!(d.average_degree() >= qa.average_degree());
    }

    #[test]
    fn self_answer_creates_no_edge() {
        let t = Thread::new(0, post(1, 0.0), vec![post(1, 1.0)]);
        let g = qa_graph(2, std::slice::from_ref(&t));
        assert_eq!(g.num_edges(), 0);
        let g = dense_graph(2, std::slice::from_ref(&t));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn empty_threads_give_empty_graphs() {
        assert_eq!(qa_graph(3, &[]).num_edges(), 0);
        assert_eq!(dense_graph(3, &[]).num_edges(), 0);
    }
}
