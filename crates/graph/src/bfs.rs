//! Breadth-first search distances.

use crate::graph::Graph;
use crate::scratch::BfsScratch;

/// Unweighted shortest-path distances `z_{s,v}` from `source` to all
/// nodes. Unreachable nodes get `u32::MAX`.
///
/// One-shot convenience over [`BfsScratch`]; kernels that run many
/// BFS passes should hold a scratch and call
/// [`BfsScratch::run`] to avoid the per-call allocation.
///
/// # Panics
///
/// Panics when `source` is out of range.
///
/// # Example
///
/// ```
/// use forumcast_graph::{bfs_distances, Graph};
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
/// let d = bfs_distances(&g, 0);
/// assert_eq!(&d[..3], &[0, 1, 2]);
/// assert_eq!(d[3], u32::MAX); // isolated
/// ```
pub fn bfs_distances(g: &Graph, source: u32) -> Vec<u32> {
    let mut scratch = BfsScratch::new();
    scratch.run(g, source);
    (0..g.num_nodes() as u32).map(|v| scratch.dist(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_on_a_cycle() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 1]);
    }

    #[test]
    fn unreachable_nodes_are_max() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn single_node_distance_zero() {
        let g = Graph::new(1);
        assert_eq!(bfs_distances(&g, 0), vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        bfs_distances(&Graph::new(1), 3);
    }
}
