//! Breadth-first search distances.

use std::collections::VecDeque;

use crate::graph::Graph;

/// Unweighted shortest-path distances `z_{s,v}` from `source` to all
/// nodes. Unreachable nodes get `u32::MAX`.
///
/// # Panics
///
/// Panics when `source` is out of range.
///
/// # Example
///
/// ```
/// use forumcast_graph::{bfs_distances, Graph};
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
/// let d = bfs_distances(&g, 0);
/// assert_eq!(&d[..3], &[0, 1, 2]);
/// assert_eq!(d[3], u32::MAX); // isolated
/// ```
pub fn bfs_distances(g: &Graph, source: u32) -> Vec<u32> {
    assert!(
        (source as usize) < g.num_nodes(),
        "source {source} out of range"
    );
    let mut dist = vec![u32::MAX; g.num_nodes()];
    dist[source as usize] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_on_a_cycle() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 1]);
    }

    #[test]
    fn unreachable_nodes_are_max() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], u32::MAX);
    }

    #[test]
    fn single_node_distance_zero() {
        let g = Graph::new(1);
        assert_eq!(bfs_distances(&g, 0), vec![0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        bfs_distances(&Graph::new(1), 3);
    }
}
