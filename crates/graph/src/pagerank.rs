//! PageRank and local clustering — the authority measures the SLN
//! literature uses alongside closeness/betweenness (e.g. the
//! "identification of authoritative users" line of work the paper
//! cites as related).

use crate::graph::Graph;

/// PageRank by power iteration on the undirected graph (each edge
/// contributes both directions), with damping `d` and uniform
/// teleportation. Dangling (isolated) nodes redistribute uniformly.
///
/// Returns a probability vector (sums to 1 for non-empty graphs).
///
/// # Panics
///
/// Panics when `damping` is not in `[0, 1)`.
///
/// # Example
///
/// ```
/// use forumcast_graph::{pagerank, Graph};
/// // Star: the hub collects the most rank.
/// let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
/// let pr = pagerank(&g, 0.85, 100);
/// assert!(pr[0] > pr[1]);
/// assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
/// ```
pub fn pagerank(g: &Graph, damping: f64, iterations: usize) -> Vec<f64> {
    let mut scratch = PageRankScratch::new();
    scratch.run(g, damping, iterations).to_vec()
}

/// Reusable rank/next buffers for repeated [`pagerank`] runs (e.g.
/// the per-fold feature builds): the power iteration itself already
/// works in place, so reusing the two vectors removes the only
/// allocations the kernel makes.
#[derive(Debug, Default)]
pub struct PageRankScratch {
    rank: Vec<f64>,
    next: Vec<f64>,
}

impl PageRankScratch {
    /// A fresh scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        PageRankScratch::default()
    }

    /// Runs the power iteration, returning the rank vector (valid
    /// until the next `run`). Same arithmetic, in the same order, as
    /// the original one-shot implementation — results are bitwise
    /// unchanged.
    ///
    /// # Panics
    ///
    /// Panics when `damping` is not in `[0, 1)`.
    pub fn run(&mut self, g: &Graph, damping: f64, iterations: usize) -> &[f64] {
        assert!(
            (0.0..1.0).contains(&damping),
            "damping must be in [0, 1), got {damping}"
        );
        let _span = forumcast_obs::span("graph.pagerank");
        let n = g.num_nodes();
        let uniform = 1.0 / n.max(1) as f64;
        self.rank.clear();
        self.rank.resize(n, uniform);
        self.next.clear();
        self.next.resize(n, 0.0);
        let (rank, next) = (&mut self.rank, &mut self.next);
        for _ in 0..iterations {
            let mut dangling_mass = 0.0;
            for v in next.iter_mut() {
                *v = 0.0;
            }
            for (u, &r) in rank.iter().enumerate() {
                let deg = g.degree(u as u32);
                if deg == 0 {
                    dangling_mass += r;
                    continue;
                }
                let share = r / deg as f64;
                for &v in g.neighbors(u as u32) {
                    next[v as usize] += share;
                }
            }
            let teleport = (1.0 - damping) * uniform + damping * dangling_mass * uniform;
            for v in next.iter_mut() {
                *v = damping * *v + teleport;
            }
            std::mem::swap(rank, next);
        }
        &self.rank
    }
}

/// Local clustering coefficient of every node: the fraction of a
/// node's neighbor pairs that are themselves connected (0 for degree
/// < 2). High clustering marks tight answerer communities in `G_D`.
///
/// # Example
///
/// ```
/// use forumcast_graph::{clustering_coefficient, Graph};
/// // Triangle: everything fully clustered.
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
/// assert_eq!(clustering_coefficient(&g), vec![1.0, 1.0, 1.0]);
/// ```
pub fn clustering_coefficient(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut out = vec![0.0; n];
    for u in 0..n as u32 {
        let nbrs = g.neighbors(u);
        let deg = nbrs.len();
        if deg < 2 {
            continue;
        }
        let mut links = 0usize;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if g.has_edge(a, b) {
                    links += 1;
                }
            }
        }
        out[u as usize] = 2.0 * links as f64 / (deg * (deg - 1)) as f64;
    }
    out
}

/// Global (average) clustering coefficient over nodes with degree ≥ 2;
/// 0 when no such node exists.
pub fn average_clustering(g: &Graph) -> f64 {
    let cc = clustering_coefficient(g);
    let eligible: Vec<f64> = (0..g.num_nodes() as u32)
        .filter(|&u| g.degree(u) >= 2)
        .map(|u| cc[u as usize])
        .collect();
    if eligible.is_empty() {
        0.0
    } else {
        eligible.iter().sum::<f64>() / eligible.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_sums_to_one_and_ranks_hub_first() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]);
        let pr = pagerank(&g, 0.85, 200);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for v in 1..5 {
            assert!(pr[0] > pr[v], "{pr:?}");
        }
        // Nodes 1 and 2 (extra edge) outrank 3 and 4.
        assert!(pr[1] > pr[3]);
    }

    #[test]
    fn pagerank_uniform_on_regular_graph() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pr = pagerank(&g, 0.85, 200);
        for v in 1..4 {
            assert!((pr[v] - pr[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_handles_isolated_nodes() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        let pr = pagerank(&g, 0.85, 100);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr[2] > 0.0, "teleportation keeps isolated mass positive");
        assert!(pr[0] > pr[2]);
    }

    #[test]
    fn pagerank_empty_graph() {
        assert!(pagerank(&Graph::new(0), 0.85, 10).is_empty());
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn pagerank_bad_damping_panics() {
        pagerank(&Graph::new(1), 1.0, 10);
    }

    #[test]
    fn pagerank_scratch_reuse_matches_one_shot() {
        let a = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let b = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let mut scratch = PageRankScratch::new();
        // Run big-then-small to force a buffer shrink between runs.
        assert_eq!(scratch.run(&b, 0.85, 50), pagerank(&b, 0.85, 50));
        assert_eq!(scratch.run(&a, 0.85, 50), pagerank(&a, 0.85, 50));
        assert_eq!(scratch.run(&Graph::new(0), 0.85, 5).len(), 0);
    }

    #[test]
    fn clustering_of_square_is_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(clustering_coefficient(&g), vec![0.0; 4]);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn clustering_of_triangle_plus_tail() {
        // Triangle 0-1-2 with tail 2-3.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let cc = clustering_coefficient(&g);
        assert_eq!(cc[0], 1.0);
        assert_eq!(cc[1], 1.0);
        // Node 2 has 3 neighbors {0,1,3}, one connected pair of 3.
        assert!((cc[2] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cc[3], 0.0);
        let avg = average_clustering(&g);
        assert!((avg - (1.0 + 1.0 + 1.0 / 3.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_clustering_empty_cases() {
        assert_eq!(average_clustering(&Graph::new(0)), 0.0);
        assert_eq!(average_clustering(&Graph::from_edges(2, &[(0, 1)])), 0.0);
    }
}
