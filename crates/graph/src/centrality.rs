//! Closeness and betweenness centralities (paper features xv, xvi,
//! xviii, xix).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::graph::Graph;
use crate::scratch::{BfsScratch, BrandesScratch, ScratchPool};

/// Closeness centrality of every node, per the paper's definition
/// `l_u = (|U| − 1) / Σ_{v ≠ u} z_{u,v}` where unreachable pairs are
/// *removed from the sum* (paper footnote 5).
///
/// A node with no reachable peers (isolated) gets closeness 0.
///
/// # Example
///
/// ```
/// use forumcast_graph::{closeness, Graph};
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// let l = closeness(&g);
/// assert!(l[1] > l[0]); // the middle of a path is closest
/// ```
pub fn closeness(g: &Graph) -> Vec<f64> {
    closeness_with_threads(g, forumcast_par::configured_threads())
}

/// [`closeness`] with an explicit worker-thread count (`0` = auto).
/// Each node's BFS is independent and partial results concatenate in
/// chunk (= node) order, so the output is bitwise-identical for any
/// thread count. BFS state comes from a [`ScratchPool`]: every chunk
/// reuses one scratch across all its sources, so the inner loop
/// performs no per-source allocation.
pub fn closeness_with_threads(g: &Graph, threads: usize) -> Vec<f64> {
    let _span = forumcast_obs::span("graph.closeness");
    let n = g.num_nodes();
    if n <= 1 {
        return vec![0.0; n];
    }
    let threads = forumcast_par::resolve_threads(threads);
    let pool: ScratchPool<BfsScratch> = ScratchPool::new();
    let out = forumcast_par::parallel_chunk_fold(
        n,
        threads,
        |range| {
            let mut scratch = pool.acquire();
            let partial: Vec<f64> = range
                .map(|u| {
                    scratch.run(g, u as u32);
                    // The source contributes distance 0, so summing
                    // every visited node equals the v ≠ u sum; nodes
                    // never visited are exactly the unreachable ones.
                    let sum: u64 = scratch
                        .visited()
                        .iter()
                        .map(|&v| scratch.dist(v) as u64)
                        .sum();
                    if sum > 0 {
                        (n as f64 - 1.0) / sum as f64
                    } else {
                        0.0
                    }
                })
                .collect();
            pool.release(scratch);
            partial
        },
        |partials| partials.concat(),
    );
    forumcast_obs::counter_add(
        "graph.bfs.scratch_reuses",
        (n.saturating_sub(pool.created())) as u64,
    );
    out
}

/// Exact betweenness centrality of every node via Brandes' algorithm:
/// `b_u = Σ_{s ≠ t ≠ u} σ_{s,t}(u) / σ_{s,t}` (paper feature xvi).
///
/// Values are the undirected convention (each unordered `{s, t}` pair
/// counted once).
///
/// # Example
///
/// ```
/// use forumcast_graph::{betweenness, Graph};
/// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
/// let b = betweenness(&g);
/// assert_eq!(b, vec![0.0, 1.0, 0.0]);
/// ```
pub fn betweenness(g: &Graph) -> Vec<f64> {
    betweenness_with_threads(g, forumcast_par::configured_threads())
}

/// [`betweenness`] with an explicit worker-thread count (`0` = auto).
/// Deterministic: see [`brandes`] for the reduction-tree argument.
pub fn betweenness_with_threads(g: &Graph, threads: usize) -> Vec<f64> {
    let _span = forumcast_obs::span("graph.betweenness");
    let n = g.num_nodes();
    let sources: Vec<u32> = (0..n as u32).collect();
    brandes(g, &sources, 1.0, threads)
}

/// Approximate betweenness using `num_pivots` random BFS sources,
/// scaled by `n / num_pivots` (Brandes–Pich pivot sampling). With
/// `num_pivots >= n` this equals [`betweenness`]. Deterministic given
/// `seed`.
///
/// This keeps the feature computation tractable on forum-scale graphs
/// (the paper's graphs have ~14K nodes).
pub fn betweenness_sampled(g: &Graph, num_pivots: usize, seed: u64) -> Vec<f64> {
    betweenness_sampled_with_threads(g, num_pivots, seed, forumcast_par::configured_threads())
}

/// [`betweenness_sampled`] with an explicit worker-thread count
/// (`0` = auto). The pivot set depends only on `seed`, and the
/// accumulation only on the pivot order, so the result is
/// bitwise-identical for any thread count.
pub fn betweenness_sampled_with_threads(
    g: &Graph,
    num_pivots: usize,
    seed: u64,
    threads: usize,
) -> Vec<f64> {
    let _span = forumcast_obs::span("graph.betweenness_sampled");
    let n = g.num_nodes();
    if num_pivots >= n {
        return betweenness_with_threads(g, threads);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<u32> = (0..n as u32).collect();
    nodes.shuffle(&mut rng);
    nodes.truncate(num_pivots);
    let scale = n as f64 / num_pivots as f64;
    brandes(g, &nodes, scale, threads)
}

/// Brandes' accumulation from the given BFS sources; contributions are
/// multiplied by `scale`.
///
/// Parallel over sources via [`forumcast_par::parallel_chunk_fold`]:
/// sources are split into fixed-size chunks (independent of the
/// thread count), each chunk accumulates into its own partial `bc`
/// vector in source order, and partials merge in chunk order — so the
/// floating-point reduction tree, and therefore the bitwise result,
/// is identical whether 1 or N workers ran. Per-source state
/// ([`BrandesScratch`]: σ/δ/dist/flat predecessors) comes from a
/// shared [`ScratchPool`], so the source loop allocates nothing.
fn brandes(g: &Graph, sources: &[u32], scale: f64, threads: usize) -> Vec<f64> {
    let n = g.num_nodes();
    let threads = forumcast_par::resolve_threads(threads);
    let pool: ScratchPool<BrandesScratch> = ScratchPool::new();
    let mut bc = forumcast_par::parallel_chunk_fold(
        sources.len(),
        threads,
        |range| {
            let mut scratch = pool.acquire();
            let mut bc = vec![0.0f64; n];
            for &s in &sources[range] {
                scratch.accumulate(g, s, scale, &mut bc);
            }
            pool.release(scratch);
            bc
        },
        |partials| {
            let mut bc = vec![0.0f64; n];
            for partial in partials {
                for (b, p) in bc.iter_mut().zip(&partial) {
                    *b += p;
                }
            }
            bc
        },
    );
    forumcast_obs::counter_add(
        "graph.bfs.scratch_reuses",
        (sources.len().saturating_sub(pool.created())) as u64,
    );
    // Undirected graphs: each pair counted from both endpoints.
    for b in &mut bc {
        *b /= 2.0;
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Star with center 0 and 4 leaves.
    fn star() -> Graph {
        Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)])
    }

    #[test]
    fn star_center_betweenness_is_pairs_count() {
        let b = betweenness(&star());
        // 4 leaves → C(4,2) = 6 shortest paths all through the center.
        assert!((b[0] - 6.0).abs() < 1e-9);
        for leaf in &b[1..5] {
            assert!(leaf.abs() < 1e-9);
        }
    }

    #[test]
    fn path_betweenness_known_values() {
        // 0-1-2-3: b(1) = paths {0,2},{0,3} = 2; same for node 2.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let b = betweenness(&g);
        assert_eq!(b, vec![0.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    fn cycle_betweenness_is_uniform() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let b = betweenness(&g);
        for v in 1..5 {
            assert!((b[v] - b[0]).abs() < 1e-9, "{b:?}");
        }
    }

    #[test]
    fn betweenness_splits_among_equal_paths() {
        // Square 0-1-2-3-0: two shortest paths between opposite
        // corners; each intermediate carries 1/2 per opposite pair.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let b = betweenness(&g);
        for v in 0..4 {
            assert!((b[v] - 0.5).abs() < 1e-9, "{b:?}");
        }
    }

    #[test]
    fn closeness_star_values() {
        let l = closeness(&star());
        // Center: (5-1)/4 = 1.0. Leaf: (5-1)/(1 + 2*3) = 4/7.
        assert!((l[0] - 1.0).abs() < 1e-12);
        assert!((l[1] - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn closeness_ignores_unreachable_pairs() {
        // Two components: edge (0,1) and isolated pair (2,3).
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let l = closeness(&g);
        // Paper formula: (n-1)/sum over reachable = 3/1 = 3.
        assert!((l[0] - 3.0).abs() < 1e-12);
        assert!((l[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_node_has_zero_centralities() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        assert_eq!(closeness(&g)[2], 0.0);
        assert_eq!(betweenness(&g)[2], 0.0);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        assert!(closeness(&Graph::new(0)).is_empty());
        assert_eq!(closeness(&Graph::new(1)), vec![0.0]);
        assert_eq!(betweenness(&Graph::new(1)), vec![0.0]);
    }

    #[test]
    fn sampled_with_all_pivots_equals_exact() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 5)]);
        let exact = betweenness(&g);
        let sampled = betweenness_sampled(&g, 6, 42);
        for (a, b) in exact.iter().zip(&sampled) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sampled_approximates_exact_on_star() {
        let b = betweenness_sampled(&star(), 3, 7);
        // Center must still dominate.
        assert!(b[0] > b[1]);
    }

    /// A graph large enough that chunking and work-stealing actually
    /// engage (several [`forumcast_par::CHUNK_SIZE`] chunks).
    fn dense_test_graph() -> Graph {
        let n = 160;
        let mut edges = Vec::new();
        for i in 0..n as u32 {
            edges.push((i, (i + 1) % n as u32)); // ring
            if i % 3 == 0 {
                edges.push((i, (i * 7 + 5) % n as u32)); // chords
            }
        }
        Graph::from_edges(n, &edges)
    }

    #[test]
    fn betweenness_bitwise_identical_across_thread_counts() {
        let g = dense_test_graph();
        let serial = betweenness_with_threads(&g, 1);
        for threads in [2, 7] {
            let par = betweenness_with_threads(&g, threads);
            assert_eq!(serial.len(), par.len());
            for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "node {i} differs with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn closeness_bitwise_identical_across_thread_counts() {
        let g = dense_test_graph();
        let serial = closeness_with_threads(&g, 1);
        for threads in [2, 7] {
            let par = closeness_with_threads(&g, threads);
            for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "node {i} differs with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn sampled_betweenness_bitwise_identical_across_thread_counts() {
        let g = dense_test_graph();
        let serial = betweenness_sampled_with_threads(&g, 96, 42, 1);
        for threads in [2, 7] {
            let par = betweenness_sampled_with_threads(&g, 96, 42, threads);
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
