//! Social Learning Network (SLN) graph substrate for `forumcast`.
//!
//! The paper (Sections II-B, III-A) infers two undirected graphs over
//! forum users from thread co-participation:
//!
//! * **`G_QA`** — the question–answer graph: asker `u` is linked to
//!   every answerer `v` of their question;
//! * **`G_D`** — the denser graph: all participants of a thread
//!   (asker *and* answerers) are pairwise linked.
//!
//! Four of the paper's social features are centralities/indices over
//! these graphs: closeness (xv, xviii), betweenness (xvi, xix), and
//! the resource-allocation index (xvii, xx).
//!
//! This crate provides the graph representation ([`Graph`]), SLN
//! construction from a dataset ([`build::qa_graph`],
//! [`build::dense_graph`]), BFS distances, exact and pivot-sampled
//! Brandes betweenness, the paper's closeness variant, the
//! resource-allocation index, and component/degree statistics
//! (Figure 2 reproduces from [`stats::GraphStats`]).
//!
//! # Example
//!
//! ```
//! use forumcast_graph::Graph;
//!
//! // A path 0 - 1 - 2: node 1 is the broker.
//! let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
//! let bc = forumcast_graph::betweenness(&g);
//! assert!(bc[1] > bc[0]);
//! let cc = forumcast_graph::closeness(&g);
//! assert!(cc[1] > cc[0]);
//! ```

pub mod bfs;
pub mod build;
pub mod centrality;
pub mod graph;
pub mod pagerank;
pub mod ra;
pub mod scratch;
pub mod stats;

pub use bfs::bfs_distances;
pub use build::{dense_graph, qa_graph};
pub use centrality::{
    betweenness, betweenness_sampled, betweenness_sampled_with_threads, betweenness_with_threads,
    closeness, closeness_with_threads,
};
pub use graph::Graph;
pub use pagerank::{average_clustering, clustering_coefficient, pagerank, PageRankScratch};
pub use ra::resource_allocation;
pub use scratch::{BfsScratch, BrandesScratch, ScratchPool};
pub use stats::GraphStats;
