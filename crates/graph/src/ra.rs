//! Resource-allocation index (paper features xvii, xx).

use crate::graph::Graph;

/// Resource-allocation index
/// `Re_{u,v} = Σ_{n ∈ Γ_u ∩ Γ_v} 1 / |Γ_n|`,
/// where `Γ_u` is the neighbor set of `u`. Returns 0 when `u` and `v`
/// share no neighbors (paper footnote 5). This was the most
/// predictive topology feature for link prediction in Yang et al.
/// (INFOCOM 2018), which the paper adopts.
///
/// # Panics
///
/// Panics when `u` or `v` is out of range.
///
/// # Example
///
/// ```
/// use forumcast_graph::{resource_allocation, Graph};
/// // 0 and 2 share the hub 1, which has 3 neighbors.
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (1, 3)]);
/// assert!((resource_allocation(&g, 0, 2) - 1.0 / 3.0).abs() < 1e-12);
/// ```
pub fn resource_allocation(g: &Graph, u: u32, v: u32) -> f64 {
    let (mut a, mut b) = (g.neighbors(u), g.neighbors(v));
    if a.len() > b.len() {
        std::mem::swap(&mut a, &mut b);
    }
    // Sorted-merge intersection of the two neighbor lists.
    let mut sum = 0.0;
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let deg = g.degree(a[i]);
                debug_assert!(deg > 0, "a common neighbor has degree >= 2");
                sum += 1.0 / deg as f64;
                i += 1;
                j += 1;
            }
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_common_neighbors_is_zero() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        assert_eq!(resource_allocation(&g, 0, 2), 0.0);
    }

    #[test]
    fn direct_edge_without_common_neighbor_is_zero() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        assert_eq!(resource_allocation(&g, 0, 1), 0.0);
    }

    #[test]
    fn multiple_common_neighbors_sum() {
        // u=0, v=1 share neighbors 2 (deg 2) and 3 (deg 3).
        let g = Graph::from_edges(5, &[(0, 2), (1, 2), (0, 3), (1, 3), (3, 4)]);
        let ra = resource_allocation(&g, 0, 1);
        assert!((ra - (0.5 + 1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn symmetric_in_arguments() {
        let g = Graph::from_edges(5, &[(0, 2), (1, 2), (0, 3), (1, 3), (3, 4)]);
        assert_eq!(resource_allocation(&g, 0, 1), resource_allocation(&g, 1, 0));
    }

    #[test]
    fn self_index_counts_all_neighbors() {
        // Re_{u,u} = Σ_{n ∈ Γ_u} 1/|Γ_n| (degenerate but well-defined).
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        assert!((resource_allocation(&g, 0, 0) - 1.0).abs() < 1e-12);
    }
}
