//! Degree / component statistics of the SLN graphs (Figure 2).

use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// Structural summary of an SLN graph: the quantities discussed around
/// the paper's Figure 2 (average degree 2.6 for `G_QA` vs 3.7 for
/// `G_D`; both graphs disconnected with high degree variance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of undirected edges.
    pub num_edges: usize,
    /// Mean degree.
    pub average_degree: f64,
    /// Sample variance of the degree distribution.
    pub degree_variance: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Nodes with degree 0.
    pub num_isolated: usize,
    /// Number of connected components (isolated nodes count as
    /// singleton components).
    pub num_components: usize,
    /// Size of the largest connected component.
    pub largest_component: usize,
}

impl GraphStats {
    /// Computes all statistics for `g`.
    pub fn compute(g: &Graph) -> GraphStats {
        let n = g.num_nodes();
        let degrees: Vec<usize> = (0..n as u32).map(|u| g.degree(u)).collect();
        let mean = if n == 0 {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / n as f64
        };
        let variance = if n == 0 {
            0.0
        } else {
            degrees
                .iter()
                .map(|&d| (d as f64 - mean).powi(2))
                .sum::<f64>()
                / n as f64
        };
        let (num_components, largest_component) = components(g);
        GraphStats {
            num_nodes: n,
            num_edges: g.num_edges(),
            average_degree: mean,
            degree_variance: variance,
            max_degree: degrees.iter().copied().max().unwrap_or(0),
            num_isolated: degrees.iter().filter(|&&d| d == 0).count(),
            num_components,
            largest_component,
        }
    }

    /// `true` when the graph has more than one connected component —
    /// the paper observes this for both SLN graphs.
    pub fn is_disconnected(&self) -> bool {
        self.num_components > 1
    }
}

/// Returns `(number of components, size of largest)` via union–find.
fn components(g: &Graph) -> (usize, usize) {
    let n = g.num_nodes();
    if n == 0 {
        return (0, 0);
    }
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        // Path compression.
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for (u, v) in g.edges() {
        let ru = find(&mut parent, u);
        let rv = find(&mut parent, v);
        if ru != rv {
            parent[ru as usize] = rv;
        }
    }
    let mut sizes = vec![0usize; n];
    for x in 0..n as u32 {
        let r = find(&mut parent, x);
        sizes[r as usize] += 1;
    }
    let num = sizes.iter().filter(|&&s| s > 0).count();
    let largest = sizes.iter().copied().max().unwrap_or(0);
    (num, largest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_two_components() {
        // Triangle {0,1,2} + edge {3,4} + isolated 5.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_nodes, 6);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.num_components, 3);
        assert_eq!(s.largest_component, 3);
        assert_eq!(s.num_isolated, 1);
        assert_eq!(s.max_degree, 2);
        assert!(s.is_disconnected());
        assert!((s.average_degree - 8.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn connected_graph_has_one_component() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_components, 1);
        assert!(!s.is_disconnected());
    }

    #[test]
    fn empty_graph_stats() {
        let s = GraphStats::compute(&Graph::new(0));
        assert_eq!(s.num_components, 0);
        assert_eq!(s.average_degree, 0.0);
        assert_eq!(s.largest_component, 0);
    }

    #[test]
    fn degree_variance_zero_on_regular_graph() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = GraphStats::compute(&g);
        assert!(s.degree_variance.abs() < 1e-12);
    }
}
