//! CSR-vs-adjacency-list equivalence: the CSR [`Graph`] plus scratch
//! kernels must reproduce, bit for bit, what the original
//! `Vec<Vec<u32>>` adjacency-list implementations computed. The
//! reference implementations below are faithful ports of the pre-CSR
//! kernels (fresh per-source allocations, `VecDeque` BFS, per-node
//! predecessor vectors); the floating-point operation order is the
//! contract, so the comparisons are on bits, not epsilons.
//!
//! Graphs stay under one parallel chunk (`CHUNK_SIZE` = 64 sources)
//! so the serial reference and the chunk-merged production kernel
//! share one FP reduction order.

use std::collections::VecDeque;

use proptest::prelude::*;

use forumcast_graph::{
    betweenness_with_threads, bfs_distances, closeness_with_threads, pagerank, Graph,
};

/// Sorted, deduped adjacency lists — the old storage layout.
fn adjacency(g: &Graph) -> Vec<Vec<u32>> {
    (0..g.num_nodes() as u32)
        .map(|u| g.neighbors(u).to_vec())
        .collect()
}

fn ref_bfs(adj: &[Vec<u32>], source: u32) -> Vec<u32> {
    let mut dist = vec![u32::MAX; adj.len()];
    dist[source as usize] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in &adj[u as usize] {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

fn ref_closeness(adj: &[Vec<u32>]) -> Vec<f64> {
    let n = adj.len();
    if n <= 1 {
        return vec![0.0; n];
    }
    (0..n as u32)
        .map(|u| {
            let dist = ref_bfs(adj, u);
            let sum: u64 = dist
                .iter()
                .enumerate()
                .filter(|&(v, &d)| v != u as usize && d != u32::MAX)
                .map(|(_, &d)| d as u64)
                .sum();
            if sum > 0 {
                (n as f64 - 1.0) / sum as f64
            } else {
                0.0
            }
        })
        .collect()
}

fn ref_betweenness(adj: &[Vec<u32>]) -> Vec<f64> {
    let n = adj.len();
    let mut bc = vec![0.0f64; n];
    for s in 0..n as u32 {
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![i64::MAX; n];
        let mut delta = vec![0.0f64; n];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        let mut stack: Vec<u32> = Vec::new();
        let mut queue = VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            let dv = dist[v as usize];
            for &w in &adj[v as usize] {
                if dist[w as usize] == i64::MAX {
                    dist[w as usize] = dv + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dv + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    preds[w as usize].push(v);
                }
            }
        }
        while let Some(w) = stack.pop() {
            for &v in &preds[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w != s {
                bc[w as usize] += delta[w as usize] * 1.0;
            }
        }
    }
    for b in &mut bc {
        *b /= 2.0;
    }
    bc
}

fn ref_pagerank(adj: &[Vec<u32>], damping: f64, iterations: usize) -> Vec<f64> {
    let n = adj.len();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0; n];
    for _ in 0..iterations {
        let mut dangling_mass = 0.0;
        for v in next.iter_mut() {
            *v = 0.0;
        }
        for (u, &r) in rank.iter().enumerate() {
            let deg = adj[u].len();
            if deg == 0 {
                dangling_mass += r;
                continue;
            }
            let share = r / deg as f64;
            for &v in &adj[u] {
                next[v as usize] += share;
            }
        }
        let teleport = (1.0 - damping) * uniform + damping * dangling_mass * uniform;
        for v in next.iter_mut() {
            *v = damping * *v + teleport;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..40).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..80)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    #[test]
    fn bfs_matches_adjacency_list_reference(g in arb_graph()) {
        let adj = adjacency(&g);
        for s in 0..g.num_nodes() as u32 {
            prop_assert_eq!(bfs_distances(&g, s), ref_bfs(&adj, s), "source {}", s);
        }
    }

    #[test]
    fn closeness_matches_adjacency_list_reference_bitwise(g in arb_graph()) {
        let adj = adjacency(&g);
        prop_assert_eq!(bits(&closeness_with_threads(&g, 1)), bits(&ref_closeness(&adj)));
    }

    #[test]
    fn betweenness_matches_adjacency_list_reference_bitwise(g in arb_graph()) {
        let adj = adjacency(&g);
        prop_assert_eq!(bits(&betweenness_with_threads(&g, 1)), bits(&ref_betweenness(&adj)));
    }

    #[test]
    fn pagerank_matches_adjacency_list_reference_bitwise(g in arb_graph()) {
        let adj = adjacency(&g);
        prop_assert_eq!(
            bits(&pagerank(&g, 0.85, 60)),
            bits(&ref_pagerank(&adj, 0.85, 60))
        );
    }
}
