//! Property-based tests for graph invariants and centralities.

use proptest::prelude::*;

use forumcast_graph::{
    betweenness, bfs_distances, closeness, resource_allocation, Graph, GraphStats,
};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..30).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..60)
            .prop_map(move |edges| Graph::from_edges(n, &edges))
    })
}

proptest! {
    /// Adjacency is symmetric and self-loop-free.
    #[test]
    fn symmetry_and_no_loops(g in arb_graph()) {
        for u in 0..g.num_nodes() as u32 {
            for &v in g.neighbors(u) {
                prop_assert!(v != u, "self loop at {u}");
                prop_assert!(g.has_edge(v, u), "asymmetric edge {u}-{v}");
            }
        }
        let degree_sum: usize = (0..g.num_nodes() as u32).map(|u| g.degree(u)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    /// BFS satisfies the triangle property along edges.
    #[test]
    fn bfs_distances_are_consistent(g in arb_graph()) {
        let d = bfs_distances(&g, 0);
        prop_assert_eq!(d[0], 0);
        for (u, v) in g.edges() {
            let (du, dv) = (d[u as usize], d[v as usize]);
            if du != u32::MAX {
                prop_assert!(dv != u32::MAX && dv <= du + 1, "edge ({u},{v})");
            }
            if dv != u32::MAX {
                prop_assert!(du != u32::MAX && du <= dv + 1);
            }
        }
    }

    /// Centralities are finite, non-negative, and zero on isolated
    /// nodes.
    #[test]
    fn centralities_sane(g in arb_graph()) {
        let bc = betweenness(&g);
        let cc = closeness(&g);
        for u in 0..g.num_nodes() {
            prop_assert!(bc[u].is_finite() && bc[u] >= -1e-12);
            prop_assert!(cc[u].is_finite() && cc[u] >= 0.0);
            if g.degree(u as u32) == 0 {
                prop_assert_eq!(bc[u], 0.0);
                prop_assert_eq!(cc[u], 0.0);
            }
        }
    }

    /// Total betweenness is bounded by the number of connected pairs.
    #[test]
    fn betweenness_total_bounded(g in arb_graph()) {
        let bc = betweenness(&g);
        let total: f64 = bc.iter().sum();
        let n = g.num_nodes() as f64;
        // Each unordered pair contributes at most (path length − 1) ≤ n.
        prop_assert!(total <= n * n * n / 2.0 + 1e-6);
    }

    /// Resource allocation is symmetric and non-negative.
    #[test]
    fn resource_allocation_symmetric(g in arb_graph(), a in 0u32..30, b in 0u32..30) {
        let n = g.num_nodes() as u32;
        let (a, b) = (a % n, b % n);
        let ra = resource_allocation(&g, a, b);
        prop_assert!(ra >= 0.0);
        prop_assert!((ra - resource_allocation(&g, b, a)).abs() < 1e-12);
        // Bounded by the smaller degree (each term ≤ 1/2... ≤ 1).
        prop_assert!(ra <= g.degree(a).min(g.degree(b)) as f64 + 1e-12);
    }

    /// Component stats are consistent.
    #[test]
    fn component_stats_consistent(g in arb_graph()) {
        let s = GraphStats::compute(&g);
        prop_assert!(s.largest_component <= s.num_nodes);
        prop_assert!(s.num_components >= 1);
        prop_assert!(s.num_components <= s.num_nodes);
        prop_assert!(s.num_isolated <= s.num_nodes);
        // Isolated nodes are singleton components.
        prop_assert!(s.num_components >= s.num_isolated.max(1).min(s.num_nodes));
    }
}
