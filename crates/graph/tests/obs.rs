//! Counter-exactness tests for the graph instrumentation: the
//! scratch-reuse counter must equal the number of BFS sources minus
//! the number of scratches the pool created — the proof that the
//! centrality inner loops perform no per-source allocation.
//!
//! These live in their own integration binary because armed
//! collector scopes are process-global: `forumcast_obs::arm`
//! serializes armed tests, but unarmed tests running concurrently in
//! the same process would still feed the counters.

use forumcast_graph::{betweenness_with_threads, closeness_with_threads, Graph};

fn ring_with_chords(n: usize) -> Graph {
    let mut edges = Vec::new();
    for i in 0..n as u32 {
        edges.push((i, (i + 1) % n as u32));
        if i % 3 == 0 {
            edges.push((i, (i * 7 + 5) % n as u32));
        }
    }
    Graph::from_edges(n, &edges)
}

fn counter(log: &forumcast_obs::TraceLog, name: &str) -> u64 {
    log.counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

#[test]
fn betweenness_serial_reuses_one_scratch_for_all_sources() {
    let g = ring_with_chords(160);
    let guard = forumcast_obs::arm();
    let _ = betweenness_with_threads(&g, 1);
    let log = forumcast_obs::drain().expect("collector armed");
    drop(guard);
    // One worker drains every chunk with the same pooled scratch:
    // 160 sources, pool of 1 → 159 reuses.
    assert_eq!(counter(&log, "graph.bfs.scratch_reuses"), 159);
}

#[test]
fn closeness_reuse_counter_is_sources_minus_pool_size() {
    let g = ring_with_chords(160);
    for threads in [1usize, 4] {
        let guard = forumcast_obs::arm();
        let _ = closeness_with_threads(&g, threads);
        let log = forumcast_obs::drain().expect("collector armed");
        drop(guard);
        let reuses = counter(&log, "graph.bfs.scratch_reuses");
        // The pool never creates more scratches than workers (160
        // nodes / CHUNK_SIZE 64 = 3 chunks), and always at least one.
        assert!(
            (0..160).contains(&reuses),
            "reuses {reuses} out of range for 160 sources"
        );
        if threads == 1 {
            assert_eq!(reuses, 159, "serial run must reuse a single scratch");
        } else {
            assert!(reuses >= 160 - 3, "at most one scratch per chunk stream");
        }
    }
}
