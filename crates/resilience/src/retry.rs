//! Panic-isolated bounded retry.
//!
//! [`with_retry`] runs a closure under [`std::panic::catch_unwind`]
//! up to a fixed number of attempts. It is the containment boundary
//! around per-fold CV work: an injected (or real) panic in one fold
//! is caught, the fold is re-run, and — because fold work is a pure
//! function of its inputs and injected faults fire a bounded number
//! of times — the retried result is bitwise-identical to a fault-free
//! run.

use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// All attempts of a retried operation panicked.
#[derive(Debug, Clone)]
pub struct RetryExhausted {
    /// What was being retried (e.g. `cv fold 3`).
    pub label: String,
    /// How many attempts ran.
    pub attempts: usize,
    /// Panic message of the last attempt.
    pub message: String,
}

impl fmt::Display for RetryExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} failed after {} attempt(s); last panic: {}",
            self.label, self.attempts, self.message
        )
    }
}

impl std::error::Error for RetryExhausted {}

/// Extracts a human-readable message from a caught panic payload.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f` until it returns without panicking, up to `attempts`
/// times. Panics are caught per attempt; state captured by `f` is
/// assumed to stay consistent across an unwind (fold work operates on
/// shared *read-only* inputs, which trivially satisfy this).
///
/// # Errors
///
/// Returns [`RetryExhausted`] carrying the last panic message when
/// every attempt panicked.
///
/// # Panics
///
/// Panics when `attempts == 0`.
pub fn with_retry<T, F: FnMut() -> T>(
    label: &str,
    attempts: usize,
    mut f: F,
) -> Result<T, RetryExhausted> {
    assert!(attempts > 0, "retry needs at least one attempt");
    let mut last = String::new();
    for attempt in 0..attempts {
        match catch_unwind(AssertUnwindSafe(&mut f)) {
            Ok(v) => return Ok(v),
            Err(payload) => {
                last = panic_message(payload.as_ref());
                forumcast_obs::counter_add("retry.panics", 1);
                forumcast_obs::mark("retry.panic", attempt as u64);
            }
        }
    }
    Err(RetryExhausted {
        label: label.to_string(),
        attempts,
        message: last,
    })
}

/// How many times checkpoint/WAL saves attempt a transiently failing
/// I/O operation before giving up (first try + two retries).
pub const SAVE_ATTEMPTS: usize = 3;

/// Deterministic backoff schedule between save retries, indexed by the
/// zero-based attempt that just failed. Fixed (no jitter, no clock
/// reads) so a faulted run behaves identically every time.
const SAVE_BACKOFF_MS: [u64; SAVE_ATTEMPTS] = [1, 2, 4];

/// Runs a fallible I/O operation up to [`SAVE_ATTEMPTS`] times with
/// the deterministic [`SAVE_BACKOFF_MS`] schedule between failures —
/// the containment boundary around checkpoint and WAL saves, where an
/// injected (or real) transient `fsync`/write failure should cost a
/// counted retry, not the save. Each retry bumps the
/// `ckpt.save.retries` counter and emits a `ckpt.save.retry` mark at
/// the failing attempt index, so healed saves stay visible in
/// telemetry.
///
/// Retries re-invoke `f` with the attempt number; callers whose
/// failure is produced by a bounded fault plan (shots drain per
/// probe) heal exactly when the plan runs out of shots, making the
/// retry count itself deterministic.
///
/// # Errors
///
/// Returns the final attempt's error once all [`SAVE_ATTEMPTS`] fail.
pub fn save_with_retry<T, E>(mut f: impl FnMut(usize) -> Result<T, E>) -> Result<T, E> {
    let mut attempt = 0;
    loop {
        match f(attempt) {
            Ok(v) => return Ok(v),
            Err(e) => {
                if attempt + 1 >= SAVE_ATTEMPTS {
                    return Err(e);
                }
                forumcast_obs::counter_add("ckpt.save.retries", 1);
                forumcast_obs::mark("ckpt.save.retry", attempt as u64);
                std::thread::sleep(std::time::Duration::from_millis(SAVE_BACKOFF_MS[attempt]));
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn first_success_returns_immediately() {
        let calls = AtomicUsize::new(0);
        let out = with_retry("op", 3, || {
            calls.fetch_add(1, Ordering::Relaxed);
            42
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn panic_then_success_heals() {
        let calls = AtomicUsize::new(0);
        let out = with_retry("op", 3, || {
            if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("injected fault: test");
            }
            7
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn exhausted_retry_reports_label_attempts_and_message() {
        let err =
            with_retry::<(), _>("cv fold 3", 2, || panic!("injected fault: boom")).unwrap_err();
        assert_eq!(err.attempts, 2);
        assert!(err.to_string().contains("cv fold 3"));
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let _ = with_retry("op", 0, || ());
    }

    #[test]
    fn save_retry_heals_transient_failures() {
        let calls = AtomicUsize::new(0);
        let out: Result<u32, String> = save_with_retry(|attempt| {
            assert_eq!(attempt, calls.fetch_add(1, Ordering::Relaxed));
            if attempt < 2 {
                Err("transient".into())
            } else {
                Ok(9)
            }
        });
        assert_eq!(out.unwrap(), 9);
        assert_eq!(calls.load(Ordering::Relaxed), SAVE_ATTEMPTS);
    }

    #[test]
    fn save_retry_surfaces_the_last_error_when_exhausted() {
        let calls = AtomicUsize::new(0);
        let out: Result<(), String> = save_with_retry(|attempt| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(format!("attempt {attempt} failed"))
        });
        assert_eq!(out.unwrap_err(), "attempt 2 failed");
        assert_eq!(calls.load(Ordering::Relaxed), SAVE_ATTEMPTS);
    }
}
