//! Resilience layer for forumcast pipelines: deterministic fault
//! injection, panic-isolated retry, and checkpoint/resume.
//!
//! A multi-hour evaluation sweep must not lose everything to a single
//! malformed record, a panicking fold worker, or a diverged optimizer
//! step. This crate provides the three mechanisms the rest of the
//! workspace plugs into:
//!
//! * [`fault`] — a [`FaultPlan`] parsed from the `FORUMCAST_FAULTS`
//!   environment variable (or a CLI flag) that injects panics, I/O
//!   errors, and NaN gradients at *deterministic* sites, so the
//!   recovery paths can be exercised reproducibly in CI;
//! * [`retry`] — [`with_retry`], a `catch_unwind`-based bounded retry
//!   wrapper that isolates panics from one work item (e.g. one CV
//!   fold) without poisoning the rest of the run;
//! * [`checkpoint`] — a generic JSON [`Checkpoint`] file recording
//!   completed work items so an interrupted run can resume and skip
//!   them, with a meta fingerprint guarding against resuming into a
//!   differently-configured run.
//!
//! # Determinism contract
//!
//! Faults fire by *logical unit index* (fold job number, record
//! number, optimizer step number), never by wall clock or arrival
//! order, and each configured shot fires a bounded number of times.
//! Because retried work is itself a pure function of its inputs, a
//! healed run produces output bitwise-identical to a fault-free run
//! at any thread count.

pub mod checkpoint;
pub mod fault;
pub mod retry;

pub use checkpoint::{
    reclaim_tmp, Checkpoint, CheckpointError, CkptFormat, TrainCheckpoint, SUBFOLD_FORMAT_VERSION,
};
pub use fault::{FaultGuard, FaultPlan, FaultSite, FaultSpecError, FAULTS_ENV};
pub use retry::{save_with_retry, with_retry, RetryExhausted, SAVE_ATTEMPTS};
