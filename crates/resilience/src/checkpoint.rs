//! JSON checkpoint files for resumable sweeps.
//!
//! A [`Checkpoint`] records `(unit index, result)` entries — one per
//! completed work item, e.g. one CV fold — plus a free-form `meta`
//! fingerprint describing the run configuration. Drivers save the
//! checkpoint after every completed item (atomically: write to a
//! temporary file, then rename) and, on resume, load it back, verify
//! the fingerprint, and skip the recorded units. Because every unit
//! is a pure function of its inputs, merging checkpointed and freshly
//! computed results reproduces an uninterrupted run bit for bit.

use serde::{expect_object, missing_field, obj_get, Deserialize, Serialize, Value};
use std::fmt;
use std::path::Path;

use crate::fault::{self, FaultSite};

/// Completed-unit log for one resumable run.
///
/// Generic over the per-unit result type; the serde shim's derive
/// does not handle generics, so `Serialize`/`Deserialize` are
/// implemented by hand over the shim's [`Value`] model.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint<T> {
    /// Fingerprint of the run configuration. [`Checkpoint::load`]
    /// refuses to resume when it does not match, so a checkpoint from
    /// a differently-configured run can never be silently merged.
    pub meta: String,
    /// `(unit index, result)` pairs, in completion order.
    pub entries: Vec<(u64, T)>,
}

impl<T> Checkpoint<T> {
    /// An empty checkpoint for a run described by `meta`.
    pub fn new(meta: impl Into<String>) -> Self {
        Checkpoint {
            meta: meta.into(),
            entries: Vec::new(),
        }
    }

    /// Records the result for `unit`, replacing any earlier entry.
    pub fn record(&mut self, unit: u64, result: T) {
        match self.entries.iter_mut().find(|(u, _)| *u == unit) {
            Some(slot) => slot.1 = result,
            None => self.entries.push((unit, result)),
        }
    }

    /// The recorded result for `unit`, if any.
    pub fn get(&self, unit: u64) -> Option<&T> {
        self.entries
            .iter()
            .find(|(u, _)| *u == unit)
            .map(|(_, r)| r)
    }
}

impl<T: Serialize> Checkpoint<T> {
    /// Atomically saves the checkpoint as pretty JSON: writes
    /// `<path>.tmp`, then renames over `path`, so a crash mid-write
    /// never corrupts an existing checkpoint.
    ///
    /// The tmp write probes the `ckpt-write` fault site (unit = number
    /// of recorded entries): a fired shot leaves a *truncated* tmp
    /// file behind and fails before the rename — exactly what a disk
    /// full or power cut mid-write would do — so tests can prove the
    /// real checkpoint survives untouched.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let json = serde_json::to_string_pretty(self).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let tmp = path.with_extension("tmp");
        let io_err = |e: std::io::Error| CheckpointError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        if fault::fires(FaultSite::CkptWrite, self.entries.len() as u64) {
            let _ = std::fs::write(&tmp, &json.as_bytes()[..json.len() / 2]);
            return Err(CheckpointError::Io {
                path: path.display().to_string(),
                message: format!(
                    "{} ckpt-write:{}",
                    fault::INJECTED_PREFIX,
                    self.entries.len()
                ),
            });
        }
        std::fs::write(&tmp, json).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)?;
        forumcast_obs::counter_add("ckpt.saves", 1);
        Ok(())
    }
}

impl<T: Deserialize> Checkpoint<T> {
    /// Loads a checkpoint, verifying its meta fingerprint. `Ok(None)`
    /// when `path` does not exist (a fresh run).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on unreadable files,
    /// [`CheckpointError::Corrupt`] on malformed JSON, and
    /// [`CheckpointError::MetaMismatch`] when the file belongs to a
    /// differently-configured run.
    pub fn load(path: &Path, expected_meta: &str) -> Result<Option<Self>, CheckpointError> {
        let json = match std::fs::read_to_string(path) {
            Ok(json) => json,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(CheckpointError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })
            }
        };
        let cp: Checkpoint<T> =
            serde_json::from_str(&json).map_err(|e| CheckpointError::Corrupt {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
        if cp.meta != expected_meta {
            return Err(CheckpointError::MetaMismatch {
                path: path.display().to_string(),
                expected: expected_meta.to_string(),
                found: cp.meta,
            });
        }
        Ok(Some(cp))
    }
}

impl<T: Serialize> Serialize for Checkpoint<T> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("meta".to_string(), self.meta.to_value()),
            ("entries".to_string(), self.entries.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for Checkpoint<T> {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        let fields = expect_object(v, "Checkpoint")?;
        let meta = String::from_value(
            obj_get(fields, "meta").ok_or_else(|| missing_field("meta", "Checkpoint"))?,
        )?;
        let entries = Vec::<(u64, T)>::from_value(
            obj_get(fields, "entries").ok_or_else(|| missing_field("entries", "Checkpoint"))?,
        )?;
        Ok(Checkpoint { meta, entries })
    }
}

/// Current on-disk format version for [`TrainCheckpoint`] files.
/// Bumped whenever the payload layout changes incompatibly; readers
/// refuse (as [`CheckpointError::Corrupt`]) anything else.
pub const SUBFOLD_FORMAT_VERSION: u32 = 1;

/// A versioned, fingerprinted single-payload checkpoint for sub-fold
/// (mid-training) state. Where [`Checkpoint`] logs completed units,
/// `TrainCheckpoint` holds *one* in-flight snapshot — the latest
/// epoch-granular training state of the fold currently running — and
/// nests beside the fold-level checkpoint (`<base>.fold<N>.train.json`
/// next to `<base>`).
///
/// The same crash-consistency contract applies: saves are atomic
/// (tmp + rename, probing the `ckpt-write` fault site), loads verify
/// the format version and the run fingerprint, and a file that fails
/// either check is never silently trusted.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint<T> {
    /// On-disk format version; always [`SUBFOLD_FORMAT_VERSION`] for
    /// values produced by this build.
    pub version: u32,
    /// Fingerprint of the run configuration *and* the fold this
    /// snapshot belongs to. [`TrainCheckpoint::load`] refuses to
    /// resume ([`CheckpointError::Stale`]) when it does not match.
    pub fingerprint: String,
    /// The mid-training snapshot.
    pub payload: T,
}

impl<T> TrainCheckpoint<T> {
    /// Wraps `payload` in the current format version under
    /// `fingerprint`.
    pub fn new(fingerprint: impl Into<String>, payload: T) -> Self {
        TrainCheckpoint {
            version: SUBFOLD_FORMAT_VERSION,
            fingerprint: fingerprint.into(),
            payload,
        }
    }
}

impl<T: Serialize> TrainCheckpoint<T> {
    /// Atomically saves the snapshot (write `<path>.tmp`, rename over
    /// `path`), probing the `ckpt-write` fault site at `unit` — the
    /// caller picks a unit disjoint from fold-level saves so shot
    /// plans can target either layer independently.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path, unit: u64) -> Result<(), CheckpointError> {
        let json = serde_json::to_string_pretty(self).map_err(|e| CheckpointError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let tmp = path.with_extension("tmp");
        let io_err = |e: std::io::Error| CheckpointError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        if fault::fires(FaultSite::CkptWrite, unit) {
            let _ = std::fs::write(&tmp, &json.as_bytes()[..json.len() / 2]);
            return Err(CheckpointError::Io {
                path: path.display().to_string(),
                message: format!("{} ckpt-write:{unit}", fault::INJECTED_PREFIX),
            });
        }
        let bytes = json.len() as u64;
        let started = std::time::Instant::now();
        std::fs::write(&tmp, json).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)?;
        forumcast_obs::counter_add("ckpt.subfold.saves", 1);
        // Snapshot cost telemetry: the ROADMAP's JSON-vs-binary format
        // decision hinges on how large these payloads get and how long
        // the write+rename takes in practice.
        forumcast_obs::counter_add("ckpt.subfold.bytes", bytes);
        forumcast_obs::counter_add(
            "ckpt.subfold.write_ms",
            started.elapsed().as_millis() as u64,
        );
        Ok(())
    }
}

impl<T: Deserialize> TrainCheckpoint<T> {
    /// Loads a sub-fold snapshot, verifying format version and
    /// fingerprint. `Ok(None)` when `path` does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on unreadable files,
    /// [`CheckpointError::Corrupt`] on malformed JSON or an unknown
    /// format version, and [`CheckpointError::Stale`] when the file
    /// belongs to a differently-configured run or a different fold.
    pub fn load(path: &Path, expected_fingerprint: &str) -> Result<Option<Self>, CheckpointError> {
        let json = match std::fs::read_to_string(path) {
            Ok(json) => json,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(CheckpointError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })
            }
        };
        let cp: TrainCheckpoint<T> =
            serde_json::from_str(&json).map_err(|e| CheckpointError::Corrupt {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
        if cp.version != SUBFOLD_FORMAT_VERSION {
            return Err(CheckpointError::Corrupt {
                path: path.display().to_string(),
                message: format!(
                    "unknown sub-fold format version {} (this build reads version {})",
                    cp.version, SUBFOLD_FORMAT_VERSION
                ),
            });
        }
        if cp.fingerprint != expected_fingerprint {
            return Err(CheckpointError::Stale {
                path: path.display().to_string(),
                expected: expected_fingerprint.to_string(),
                found: cp.fingerprint,
            });
        }
        Ok(Some(cp))
    }
}

impl<T: Serialize> Serialize for TrainCheckpoint<T> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".to_string(), self.version.to_value()),
            ("fingerprint".to_string(), self.fingerprint.to_value()),
            ("payload".to_string(), self.payload.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for TrainCheckpoint<T> {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        let fields = expect_object(v, "TrainCheckpoint")?;
        let version = u32::from_value(
            obj_get(fields, "version")
                .ok_or_else(|| missing_field("version", "TrainCheckpoint"))?,
        )?;
        let fingerprint = String::from_value(
            obj_get(fields, "fingerprint")
                .ok_or_else(|| missing_field("fingerprint", "TrainCheckpoint"))?,
        )?;
        let payload = T::from_value(
            obj_get(fields, "payload")
                .ok_or_else(|| missing_field("payload", "TrainCheckpoint"))?,
        )?;
        Ok(TrainCheckpoint {
            version,
            fingerprint,
            payload,
        })
    }
}

/// Failure loading or saving a [`Checkpoint`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Filesystem read/write failed.
    Io {
        /// Checkpoint path.
        path: String,
        /// Underlying error.
        message: String,
    },
    /// The file exists but is not a valid checkpoint.
    Corrupt {
        /// Checkpoint path.
        path: String,
        /// Parse error.
        message: String,
    },
    /// The file belongs to a run with a different configuration.
    MetaMismatch {
        /// Checkpoint path.
        path: String,
        /// Fingerprint of the current run.
        expected: String,
        /// Fingerprint stored in the file.
        found: String,
    },
    /// A sub-fold snapshot whose fingerprint does not match the
    /// current run — left behind by an earlier, differently-configured
    /// invocation.
    Stale {
        /// Sub-fold checkpoint path.
        path: String,
        /// Fingerprint of the current run.
        expected: String,
        /// Fingerprint stored in the file.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint {path}: i/o error: {message}")
            }
            CheckpointError::Corrupt { path, message } => {
                write!(f, "checkpoint {path}: corrupt: {message}")
            }
            CheckpointError::MetaMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {path}: belongs to a different run (expected `{expected}`, found `{found}`); \
                 delete it or pass a matching configuration"
            ),
            CheckpointError::Stale {
                path,
                expected,
                found,
            } => write!(
                f,
                "stale sub-fold checkpoint {path}: this run expects fingerprint `{expected}` \
                 but the file carries `{found}`; delete the file to discard that partial \
                 training state, or rerun with the `--resume` path and configuration of the \
                 run that wrote it"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("forumcast-ckpt-{name}-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn save_load_roundtrip_preserves_entries_bitwise() {
        let path = temp_path("roundtrip");
        let mut cp: Checkpoint<f64> = Checkpoint::new("run A");
        cp.record(3, 0.1 + 0.2);
        cp.record(1, f64::MIN_POSITIVE);
        cp.save(&path).unwrap();
        let back = Checkpoint::<f64>::load(&path, "run A").unwrap().unwrap();
        assert_eq!(back.meta, "run A");
        assert_eq!(back.entries.len(), 2);
        for ((u, x), (bu, bx)) in cp.entries.iter().zip(&back.entries) {
            assert_eq!(u, bu);
            assert_eq!(x.to_bits(), bx.to_bits());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn subfold_save_reports_bytes_and_write_duration() {
        let path = temp_path("save-cost");
        let cp = TrainCheckpoint::new("fp", vec![1u32, 2, 3]);
        let guard = forumcast_obs::arm();
        cp.save(&path, 0).unwrap();
        let log = forumcast_obs::drain().expect("collector armed");
        drop(guard);
        let counter = |name: &str| {
            log.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        let written = std::fs::metadata(&path).unwrap().len();
        // Concurrent unarmed tests may also save while we are armed,
        // so assert lower bounds rather than exact equality.
        assert!(counter("ckpt.subfold.saves").unwrap() >= 1);
        assert!(
            counter("ckpt.subfold.bytes").unwrap() >= written,
            "byte counter must cover at least this save's payload"
        );
        assert!(
            counter("ckpt.subfold.write_ms").is_some(),
            "write duration counter must be emitted"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn record_replaces_existing_unit() {
        let mut cp: Checkpoint<i32> = Checkpoint::new("m");
        cp.record(5, 1);
        cp.record(5, 2);
        assert_eq!(cp.entries.len(), 1);
        assert_eq!(cp.get(5), Some(&2));
        assert_eq!(cp.get(6), None);
    }

    #[test]
    fn missing_file_loads_as_none() {
        let path = temp_path("missing");
        assert_eq!(Checkpoint::<f64>::load(&path, "m").unwrap(), None);
    }

    #[test]
    fn meta_mismatch_is_refused() {
        let path = temp_path("meta");
        Checkpoint::<i32>::new("run A").save(&path).unwrap();
        let err = Checkpoint::<i32>::load(&path, "run B").unwrap_err();
        assert!(matches!(err, CheckpointError::MetaMismatch { .. }), "{err}");
        assert!(err.to_string().contains("run B"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_file_is_reported_with_path() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{ not json").unwrap();
        let err = Checkpoint::<i32>::load(&path, "m").unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("forumcast-ckpt-corrupt"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn subfold_roundtrip_preserves_payload_bitwise() {
        let path = temp_path("subfold-roundtrip");
        let cp = TrainCheckpoint::new("fold 3 of run A", vec![0.1 + 0.2, f64::MIN_POSITIVE]);
        cp.save(&path, 0).unwrap();
        let back = TrainCheckpoint::<Vec<f64>>::load(&path, "fold 3 of run A")
            .unwrap()
            .unwrap();
        assert_eq!(back.version, SUBFOLD_FORMAT_VERSION);
        for (x, bx) in cp.payload.iter().zip(&back.payload) {
            assert_eq!(x.to_bits(), bx.to_bits());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn subfold_missing_file_loads_as_none() {
        let path = temp_path("subfold-missing");
        assert_eq!(TrainCheckpoint::<i32>::load(&path, "f").unwrap(), None);
    }

    #[test]
    fn subfold_unknown_version_is_corrupt_not_trusted() {
        let path = temp_path("subfold-version");
        let mut cp = TrainCheckpoint::new("f", 7i32);
        cp.version = SUBFOLD_FORMAT_VERSION + 1;
        cp.save(&path, 0).unwrap();
        let err = TrainCheckpoint::<i32>::load(&path, "f").unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("format version"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn subfold_truncated_file_is_corrupt_not_trusted() {
        let path = temp_path("subfold-truncated");
        TrainCheckpoint::new("f", vec![1.0f64, 2.0])
            .save(&path, 0)
            .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &json[..json.len() / 2]).unwrap();
        let err = TrainCheckpoint::<Vec<f64>>::load(&path, "f").unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    /// The stale-fingerprint error must hand the operator everything
    /// needed to act: the offending path, both fingerprints, and the
    /// `--resume` remedy.
    #[test]
    fn subfold_stale_fingerprint_names_path_fingerprints_and_remedy() {
        let path = temp_path("subfold-stale");
        TrainCheckpoint::new("quick scale, 5 folds", 7i32)
            .save(&path, 0)
            .unwrap();
        let err = TrainCheckpoint::<i32>::load(&path, "full scale, 10 folds").unwrap_err();
        assert!(matches!(err, CheckpointError::Stale { .. }), "{err}");
        let msg = err.to_string();
        assert!(msg.contains(path.display().to_string().as_str()), "{msg}");
        assert!(msg.contains("full scale, 10 folds"), "{msg}");
        assert!(msg.contains("quick scale, 5 folds"), "{msg}");
        assert!(msg.contains("--resume"), "{msg}");
        std::fs::remove_file(&path).unwrap();
    }
}
