//! Checkpoint files for resumable sweeps.
//!
//! A [`Checkpoint`] records `(unit index, result)` entries — one per
//! completed work item, e.g. one CV fold — plus a free-form `meta`
//! fingerprint describing the run configuration. Drivers save the
//! checkpoint after every completed item (atomically: write to a
//! temporary file, fsync, then rename) and, on resume, load it back,
//! verify the fingerprint, and skip the recorded units. Because every
//! unit is a pure function of its inputs, merging checkpointed and
//! freshly computed results reproduces an uninterrupted run bit for
//! bit.
//!
//! # Formats
//!
//! The default on-disk format ([`CkptFormat::Binary`]) is the framed
//! binary store from `forumcast-store`: a CRC-guarded header carrying
//! the fingerprint, then one CRC-guarded frame per entry. Torn tails
//! truncate to the valid entry prefix (the lost tail is recomputed);
//! any CRC mismatch quarantines the file to `<path>.corrupt` and
//! surfaces as [`CheckpointError::Corrupt`]. The legacy JSON format
//! ([`CkptFormat::Json`]) is still written on request and **read
//! transparently for one release**: loads sniff the file magic, so a
//! PR 4-era JSON checkpoint resumes seamlessly and the next save
//! migrates it to binary.
//!
//! # Fault sites
//!
//! Saves probe four sites (unit = the caller's save unit):
//! `ckpt-write` (truncated tmp, error before rename — the legacy
//! crash-mid-write), `torn-write` (final frame cut *after* a
//! successful rename), `bit-flip` (one payload bit flipped
//! post-rename), and `fsync-fail` (save errors at the sync step, old
//! checkpoint intact).

use serde::{expect_object, missing_field, obj_get, Deserialize, Serialize, Value};
use std::fmt;
use std::path::Path;

use crate::fault::{self, FaultSite};
use forumcast_store::{
    decode_value, encode_value, is_store_bytes, Corruption, SaveOptions, StoreError, StoreFile,
};

pub use forumcast_store::reclaim_tmp;

/// On-disk checkpoint encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CkptFormat {
    /// Framed, CRC-checksummed binary store (the default).
    #[default]
    Binary,
    /// Legacy pretty-printed JSON (kept one release for migration).
    Json,
}

impl CkptFormat {
    /// Parses a `--ckpt-format` value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "binary" => Ok(CkptFormat::Binary),
            "json" => Ok(CkptFormat::Json),
            other => Err(format!(
                "unknown checkpoint format `{other}` (expected `binary` or `json`)"
            )),
        }
    }

    /// The spec name (`binary` / `json`).
    pub fn name(self) -> &'static str {
        match self {
            CkptFormat::Binary => "binary",
            CkptFormat::Json => "json",
        }
    }
}

impl fmt::Display for CkptFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds the [`SaveOptions`] for one save by probing the
/// media-damage fault sites at `unit`. `torn-write` and `bit-flip`
/// complete the save and plant damage for the next reader;
/// `fsync-fail` makes the save itself error.
fn injected_save_options(unit: u64) -> SaveOptions {
    let mut opts = SaveOptions::default();
    if fault::fires(FaultSite::TornWrite, unit) {
        opts.corruption = Some(Corruption::TearLastFrame);
    }
    if fault::fires(FaultSite::BitFlip, unit) {
        opts.corruption = Some(Corruption::FlipPayloadBit { bit: unit });
    }
    if fault::fires(FaultSite::FsyncFail, unit) {
        opts.fail_sync = Some(format!("{} fsync-fail:{unit}", fault::INJECTED_PREFIX));
    }
    opts
}

fn store_io_err(path: &Path, e: StoreError) -> CheckpointError {
    CheckpointError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// The legacy `ckpt-write` fault: leave a truncated tmp behind and
/// fail before the rename, exactly what a disk-full or power cut
/// mid-write does. Returns the error to surface when fired; `bytes`
/// is lazy so the unfired fast path costs one atomic load.
fn ckpt_write_fault(
    path: &Path,
    unit: u64,
    bytes: impl FnOnce() -> Vec<u8>,
) -> Option<CheckpointError> {
    if fault::fires(FaultSite::CkptWrite, unit) {
        let bytes = bytes();
        let tmp = path.with_extension("tmp");
        let _ = std::fs::write(&tmp, &bytes[..bytes.len() / 2]);
        Some(CheckpointError::Io {
            path: path.display().to_string(),
            message: format!("{} ckpt-write:{unit}", fault::INJECTED_PREFIX),
        })
    } else {
        None
    }
}

/// Completed-unit log for one resumable run.
///
/// Generic over the per-unit result type; the serde shim's derive
/// does not handle generics, so `Serialize`/`Deserialize` are
/// implemented by hand over the shim's [`Value`] model.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint<T> {
    /// Fingerprint of the run configuration. [`Checkpoint::load`]
    /// refuses to resume when it does not match, so a checkpoint from
    /// a differently-configured run can never be silently merged.
    pub meta: String,
    /// `(unit index, result)` pairs, in completion order.
    pub entries: Vec<(u64, T)>,
}

impl<T> Checkpoint<T> {
    /// An empty checkpoint for a run described by `meta`.
    pub fn new(meta: impl Into<String>) -> Self {
        Checkpoint {
            meta: meta.into(),
            entries: Vec::new(),
        }
    }

    /// Records the result for `unit`, replacing any earlier entry.
    pub fn record(&mut self, unit: u64, result: T) {
        match self.entries.iter_mut().find(|(u, _)| *u == unit) {
            Some(slot) => slot.1 = result,
            None => self.entries.push((unit, result)),
        }
    }

    /// The recorded result for `unit`, if any.
    pub fn get(&self, unit: u64) -> Option<&T> {
        self.entries
            .iter()
            .find(|(u, _)| *u == unit)
            .map(|(_, r)| r)
    }
}

impl<T: Serialize> Checkpoint<T> {
    /// Saves in the default (binary) format. See [`Self::save_with`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        self.save_with(path, CkptFormat::default())
    }

    /// Atomically and durably saves the checkpoint: writes
    /// `<path>.tmp`, fsyncs, renames over `path`, fsyncs the parent
    /// directory — a crash mid-write never corrupts an existing
    /// checkpoint, and a completed save survives power loss.
    ///
    /// Probes the `ckpt-write`, `torn-write`, `bit-flip`, and
    /// `fsync-fail` fault sites at unit = number of recorded entries.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure
    /// (including the injected `ckpt-write`/`fsync-fail` faults).
    pub fn save_with(&self, path: &Path, format: CkptFormat) -> Result<(), CheckpointError> {
        let unit = self.entries.len() as u64;
        match format {
            CkptFormat::Binary => {
                // One frame per entry: a torn tail costs only the
                // last entries, which resume recomputes.
                let frames: Vec<Vec<u8>> = self
                    .entries
                    .iter()
                    .map(|(u, r)| encode_value(&Value::Array(vec![Value::U64(*u), r.to_value()])))
                    .collect();
                let store = StoreFile::new(&self.meta, frames);
                if let Some(err) = ckpt_write_fault(path, unit, || store.encode()) {
                    return Err(err);
                }
                // Transient failures (an injected or real fsync error)
                // cost a counted, deterministically-backed-off retry,
                // not the save; the options are re-probed per attempt
                // so bounded fault shots drain across retries.
                crate::retry::save_with_retry(|_| store.save(path, &injected_save_options(unit)))
                    .map_err(|e| store_io_err(path, e))?;
            }
            CkptFormat::Json => {
                let json = serde_json::to_string_pretty(self).map_err(|e| CheckpointError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })?;
                if let Some(err) = ckpt_write_fault(path, unit, || json.clone().into_bytes()) {
                    return Err(err);
                }
                let tmp = path.with_extension("tmp");
                let io_err = |e: std::io::Error| CheckpointError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                };
                crate::retry::save_with_retry(|_| {
                    std::fs::write(&tmp, &json)?;
                    std::fs::rename(&tmp, path)
                })
                .map_err(io_err)?;
            }
        }
        forumcast_obs::counter_add("ckpt.saves", 1);
        Ok(())
    }
}

impl<T: Deserialize> Checkpoint<T> {
    /// Loads a checkpoint, verifying its meta fingerprint. `Ok(None)`
    /// when `path` does not exist (a fresh run). The format is
    /// sniffed from the file magic: binary stores and legacy JSON
    /// checkpoints both load through this one entry point.
    ///
    /// Corruption policy: a torn binary tail silently yields the
    /// valid entry prefix (counted `store.frame.torn` — resume
    /// recomputes the lost tail); a CRC mismatch or malformed JSON
    /// quarantines the file to `<path>.corrupt` (counted
    /// `ckpt.corrupt.quarantined`) and returns
    /// [`CheckpointError::Corrupt`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on unreadable files,
    /// [`CheckpointError::Corrupt`] on damage, and
    /// [`CheckpointError::MetaMismatch`] when the file belongs to a
    /// differently-configured run.
    pub fn load(path: &Path, expected_meta: &str) -> Result<Option<Self>, CheckpointError> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(CheckpointError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })
            }
        };
        let cp = if is_store_bytes(&bytes) {
            Self::load_binary(path)?
        } else {
            Self::load_json(path, &bytes)?
        };
        if cp.meta != expected_meta {
            return Err(CheckpointError::MetaMismatch {
                path: path.display().to_string(),
                expected: expected_meta.to_string(),
                found: cp.meta,
            });
        }
        Ok(Some(cp))
    }

    fn load_binary(path: &Path) -> Result<Self, CheckpointError> {
        let store = load_store(path)?;
        let mut entries = Vec::with_capacity(store.frames.len());
        for (i, frame) in store.frames.iter().enumerate() {
            entries.push(decode_entry::<T>(path, i, frame)?);
        }
        Ok(Checkpoint {
            meta: store.fingerprint,
            entries,
        })
    }

    fn load_json(path: &Path, bytes: &[u8]) -> Result<Self, CheckpointError> {
        let corrupt = |message: String| {
            forumcast_store::quarantine(path);
            CheckpointError::Corrupt {
                path: path.display().to_string(),
                message,
            }
        };
        let json = std::str::from_utf8(bytes).map_err(|e| corrupt(format!("not UTF-8: {e}")))?;
        serde_json::from_str(json).map_err(|e| corrupt(e.to_string()))
    }
}

/// Loads the raw store, translating store-level failures into
/// checkpoint errors (the store has already counted and quarantined
/// as its policy dictates).
fn load_store(path: &Path) -> Result<StoreFile, CheckpointError> {
    StoreFile::load(path).map_err(|e| match e {
        StoreError::Io { source, .. } => CheckpointError::Io {
            path: path.display().to_string(),
            message: source.to_string(),
        },
        other => CheckpointError::Corrupt {
            path: path.display().to_string(),
            message: other.to_string(),
        },
    })
}

/// Decodes one `(unit, result)` checkpoint frame. A frame that
/// passed its CRC but fails decoding means schema drift, not media
/// damage — still quarantined so resume falls back to recompute
/// instead of looping on the same bad file.
fn decode_entry<T: Deserialize>(
    path: &Path,
    index: usize,
    frame: &[u8],
) -> Result<(u64, T), CheckpointError> {
    let corrupt = |message: String| {
        forumcast_store::quarantine(path);
        CheckpointError::Corrupt {
            path: path.display().to_string(),
            message,
        }
    };
    let value = decode_value(frame).map_err(|e| corrupt(format!("entry frame {index}: {e}")))?;
    let Value::Array(parts) = &value else {
        return Err(corrupt(format!("entry frame {index}: not a pair")));
    };
    let (Some(unit_v), Some(result_v), 2) = (parts.first(), parts.get(1), parts.len()) else {
        return Err(corrupt(format!("entry frame {index}: not a pair")));
    };
    let unit = match unit_v {
        Value::U64(u) => *u,
        Value::I64(u) if *u >= 0 => *u as u64,
        _ => return Err(corrupt(format!("entry frame {index}: bad unit index"))),
    };
    let result =
        T::from_value(result_v).map_err(|e| corrupt(format!("entry frame {index}: {e}")))?;
    Ok((unit, result))
}

impl<T: Serialize> Serialize for Checkpoint<T> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("meta".to_string(), self.meta.to_value()),
            ("entries".to_string(), self.entries.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for Checkpoint<T> {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        let fields = expect_object(v, "Checkpoint")?;
        let meta = String::from_value(
            obj_get(fields, "meta").ok_or_else(|| missing_field("meta", "Checkpoint"))?,
        )?;
        let entries = Vec::<(u64, T)>::from_value(
            obj_get(fields, "entries").ok_or_else(|| missing_field("entries", "Checkpoint"))?,
        )?;
        Ok(Checkpoint { meta, entries })
    }
}

/// Current on-disk format version for [`TrainCheckpoint`] files.
/// Bumped whenever the payload layout changes incompatibly; readers
/// refuse (as [`CheckpointError::Corrupt`]) anything else.
pub const SUBFOLD_FORMAT_VERSION: u32 = 1;

/// A versioned, fingerprinted single-payload checkpoint for sub-fold
/// (mid-training) state. Where [`Checkpoint`] logs completed units,
/// `TrainCheckpoint` holds *one* in-flight snapshot — the latest
/// epoch-granular training state of the fold currently running — and
/// nests beside the fold-level checkpoint (`<base>.fold<N>.train.ckpt`
/// next to `<base>`; `.train.json` in the legacy format).
///
/// The same crash-consistency contract applies: saves are atomic and
/// durable (tmp + fsync + rename, probing the save fault sites),
/// loads verify the format version and the run fingerprint, and a
/// file that fails either check is never silently trusted.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint<T> {
    /// On-disk format version; always [`SUBFOLD_FORMAT_VERSION`] for
    /// values produced by this build.
    pub version: u32,
    /// Fingerprint of the run configuration *and* the fold this
    /// snapshot belongs to. [`TrainCheckpoint::load`] refuses to
    /// resume ([`CheckpointError::Stale`]) when it does not match.
    pub fingerprint: String,
    /// The mid-training snapshot.
    pub payload: T,
}

impl<T> TrainCheckpoint<T> {
    /// Wraps `payload` in the current format version under
    /// `fingerprint`.
    pub fn new(fingerprint: impl Into<String>, payload: T) -> Self {
        TrainCheckpoint {
            version: SUBFOLD_FORMAT_VERSION,
            fingerprint: fingerprint.into(),
            payload,
        }
    }
}

impl<T: Serialize> TrainCheckpoint<T> {
    /// Saves in the default (binary) format. See [`Self::save_with`].
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path, unit: u64) -> Result<(), CheckpointError> {
        self.save_with(path, unit, CkptFormat::default())
    }

    /// Atomically and durably saves the snapshot, probing the
    /// `ckpt-write`/`torn-write`/`bit-flip`/`fsync-fail` fault sites
    /// at `unit` — the caller picks a unit disjoint from fold-level
    /// saves so shot plans can target either layer independently.
    ///
    /// Binary layout: frame 0 is the format version, frame 1 the
    /// payload; the fingerprint rides in the store header.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on filesystem failure.
    pub fn save_with(
        &self,
        path: &Path,
        unit: u64,
        format: CkptFormat,
    ) -> Result<(), CheckpointError> {
        let started = std::time::Instant::now();
        let bytes = match format {
            CkptFormat::Binary => {
                let frames = vec![
                    encode_value(&Value::U64(u64::from(self.version))),
                    encode_value(&self.payload.to_value()),
                ];
                let store = StoreFile::new(&self.fingerprint, frames);
                if let Some(err) = ckpt_write_fault(path, unit, || store.encode()) {
                    return Err(err);
                }
                crate::retry::save_with_retry(|_| store.save(path, &injected_save_options(unit)))
                    .map_err(|e| store_io_err(path, e))?
            }
            CkptFormat::Json => {
                let json = serde_json::to_string_pretty(self).map_err(|e| CheckpointError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })?;
                if let Some(err) = ckpt_write_fault(path, unit, || json.clone().into_bytes()) {
                    return Err(err);
                }
                let tmp = path.with_extension("tmp");
                let io_err = |e: std::io::Error| CheckpointError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                };
                let bytes = json.len() as u64;
                crate::retry::save_with_retry(|_| {
                    std::fs::write(&tmp, &json)?;
                    std::fs::rename(&tmp, path)
                })
                .map_err(io_err)?;
                bytes
            }
        };
        forumcast_obs::counter_add("ckpt.subfold.saves", 1);
        // Snapshot cost telemetry: the ROADMAP's JSON-vs-binary format
        // decision uses these as the before/after. Per-write durations
        // go through the histogram path so the summary can report
        // p50/p99 instead of only a lifetime total.
        forumcast_obs::counter_add("ckpt.subfold.bytes", bytes);
        forumcast_obs::observe(
            "ckpt.subfold.write_ms",
            started.elapsed().as_millis() as u64,
        );
        Ok(())
    }
}

impl<T: Deserialize> TrainCheckpoint<T> {
    /// Loads a sub-fold snapshot, verifying format version and
    /// fingerprint; the on-disk format is sniffed from the file
    /// magic. `Ok(None)` when `path` does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on unreadable files,
    /// [`CheckpointError::Corrupt`] on damage (a torn or
    /// CRC-mismatched snapshot is never partially trusted — unlike
    /// fold-level entries, half a training state is useless) or an
    /// unknown format version, and [`CheckpointError::Stale`] when
    /// the file belongs to a differently-configured run or a
    /// different fold.
    pub fn load(path: &Path, expected_fingerprint: &str) -> Result<Option<Self>, CheckpointError> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(CheckpointError::Io {
                    path: path.display().to_string(),
                    message: e.to_string(),
                })
            }
        };
        let cp = if is_store_bytes(&bytes) {
            Self::load_binary(path)?
        } else {
            Self::load_json(path, &bytes)?
        };
        if cp.version != SUBFOLD_FORMAT_VERSION {
            return Err(CheckpointError::Corrupt {
                path: path.display().to_string(),
                message: format!(
                    "unknown sub-fold format version {} (this build reads version {})",
                    cp.version, SUBFOLD_FORMAT_VERSION
                ),
            });
        }
        if cp.fingerprint != expected_fingerprint {
            return Err(CheckpointError::Stale {
                path: path.display().to_string(),
                expected: expected_fingerprint.to_string(),
                found: cp.fingerprint,
            });
        }
        Ok(Some(cp))
    }

    fn load_binary(path: &Path) -> Result<Self, CheckpointError> {
        let corrupt = |message: String| CheckpointError::Corrupt {
            path: path.display().to_string(),
            message,
        };
        let store = load_store(path)?;
        // A torn tail left fewer than the two required frames: the
        // snapshot is unusable, which for a sub-fold means "recompute
        // the fold from its start".
        if store.frames.len() < 2 {
            return Err(corrupt(format!(
                "sub-fold snapshot truncated: {} of 2 frames survived",
                store.frames.len()
            )));
        }
        let version = match decode_value(&store.frames[0])
            .map_err(|e| corrupt(format!("version frame: {e}")))?
        {
            Value::U64(v) => u32::try_from(v).unwrap_or(u32::MAX),
            Value::I64(v) if v >= 0 => u32::try_from(v).unwrap_or(u32::MAX),
            other => return Err(corrupt(format!("version frame: unexpected {other:?}"))),
        };
        let payload_value =
            decode_value(&store.frames[1]).map_err(|e| corrupt(format!("payload frame: {e}")))?;
        let payload =
            T::from_value(&payload_value).map_err(|e| corrupt(format!("payload: {e}")))?;
        Ok(TrainCheckpoint {
            version,
            fingerprint: store.fingerprint,
            payload,
        })
    }

    fn load_json(path: &Path, bytes: &[u8]) -> Result<Self, CheckpointError> {
        let corrupt = |message: String| {
            forumcast_store::quarantine(path);
            CheckpointError::Corrupt {
                path: path.display().to_string(),
                message,
            }
        };
        let json = std::str::from_utf8(bytes).map_err(|e| corrupt(format!("not UTF-8: {e}")))?;
        serde_json::from_str(json).map_err(|e| corrupt(e.to_string()))
    }
}

impl<T: Serialize> Serialize for TrainCheckpoint<T> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".to_string(), self.version.to_value()),
            ("fingerprint".to_string(), self.fingerprint.to_value()),
            ("payload".to_string(), self.payload.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for TrainCheckpoint<T> {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        let fields = expect_object(v, "TrainCheckpoint")?;
        let version = u32::from_value(
            obj_get(fields, "version")
                .ok_or_else(|| missing_field("version", "TrainCheckpoint"))?,
        )?;
        let fingerprint = String::from_value(
            obj_get(fields, "fingerprint")
                .ok_or_else(|| missing_field("fingerprint", "TrainCheckpoint"))?,
        )?;
        let payload = T::from_value(
            obj_get(fields, "payload")
                .ok_or_else(|| missing_field("payload", "TrainCheckpoint"))?,
        )?;
        Ok(TrainCheckpoint {
            version,
            fingerprint,
            payload,
        })
    }
}

/// Failure loading or saving a [`Checkpoint`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// Filesystem read/write failed.
    Io {
        /// Checkpoint path.
        path: String,
        /// Underlying error.
        message: String,
    },
    /// The file exists but is not a valid checkpoint.
    Corrupt {
        /// Checkpoint path.
        path: String,
        /// Parse error.
        message: String,
    },
    /// The file belongs to a run with a different configuration.
    MetaMismatch {
        /// Checkpoint path.
        path: String,
        /// Fingerprint of the current run.
        expected: String,
        /// Fingerprint stored in the file.
        found: String,
    },
    /// A sub-fold snapshot whose fingerprint does not match the
    /// current run — left behind by an earlier, differently-configured
    /// invocation.
    Stale {
        /// Sub-fold checkpoint path.
        path: String,
        /// Fingerprint of the current run.
        expected: String,
        /// Fingerprint stored in the file.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, message } => {
                write!(f, "checkpoint {path}: i/o error: {message}")
            }
            CheckpointError::Corrupt { path, message } => {
                write!(f, "checkpoint {path}: corrupt: {message}")
            }
            CheckpointError::MetaMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "checkpoint {path}: belongs to a different run (expected `{expected}`, found `{found}`); \
                 delete it or pass a matching configuration"
            ),
            CheckpointError::Stale {
                path,
                expected,
                found,
            } => write!(
                f,
                "stale sub-fold checkpoint {path}: this run expects fingerprint `{expected}` \
                 but the file carries `{found}`; delete the file to discard that partial \
                 training state, or rerun with the `--resume` path and configuration of the \
                 run that wrote it"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("forumcast-ckpt-{name}-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_file(p.with_extension("json.corrupt"));
        p
    }

    #[test]
    fn save_load_roundtrip_preserves_entries_bitwise() {
        for format in [CkptFormat::Binary, CkptFormat::Json] {
            let path = temp_path(&format!("roundtrip-{format}"));
            let mut cp: Checkpoint<f64> = Checkpoint::new("run A");
            cp.record(3, 0.1 + 0.2);
            cp.record(1, f64::MIN_POSITIVE);
            cp.save_with(&path, format).unwrap();
            let back = Checkpoint::<f64>::load(&path, "run A").unwrap().unwrap();
            assert_eq!(back.meta, "run A");
            assert_eq!(back.entries.len(), 2);
            for ((u, x), (bu, bx)) in cp.entries.iter().zip(&back.entries) {
                assert_eq!(u, bu);
                assert_eq!(x.to_bits(), bx.to_bits());
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn default_format_is_binary_and_json_still_loads() {
        let path = temp_path("default-binary");
        let mut cp: Checkpoint<i32> = Checkpoint::new("m");
        cp.record(0, 7);
        cp.save(&path).unwrap();
        let head = std::fs::read(&path).unwrap();
        assert!(
            forumcast_store::is_store_bytes(&head),
            "default save must write the binary store format"
        );
        // Overwrite with the legacy JSON encoding: the sniffing load
        // reads it transparently (one-release migration window).
        cp.save_with(&path, CkptFormat::Json).unwrap();
        let back = Checkpoint::<i32>::load(&path, "m").unwrap().unwrap();
        assert_eq!(back.get(0), Some(&7));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn subfold_save_reports_bytes_and_write_duration() {
        let path = temp_path("save-cost");
        let cp = TrainCheckpoint::new("fp", vec![1u32, 2, 3]);
        let guard = forumcast_obs::arm();
        cp.save(&path, 0).unwrap();
        let log = forumcast_obs::drain().expect("collector armed");
        drop(guard);
        let counter = |name: &str| {
            log.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        let written = std::fs::metadata(&path).unwrap().len();
        // Concurrent unarmed tests may also save while we are armed,
        // so assert lower bounds rather than exact equality.
        assert!(counter("ckpt.subfold.saves").unwrap() >= 1);
        assert!(
            counter("ckpt.subfold.bytes").unwrap() >= written,
            "byte counter must cover at least this save's payload"
        );
        let write_hist = log
            .hists
            .iter()
            .find(|(n, _)| n == "ckpt.subfold.write_ms")
            .map(|(_, h)| h)
            .expect("write duration must land in the latency histogram");
        assert!(write_hist.count() >= 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn record_replaces_existing_unit() {
        let mut cp: Checkpoint<i32> = Checkpoint::new("m");
        cp.record(5, 1);
        cp.record(5, 2);
        assert_eq!(cp.entries.len(), 1);
        assert_eq!(cp.get(5), Some(&2));
        assert_eq!(cp.get(6), None);
    }

    #[test]
    fn missing_file_loads_as_none() {
        let path = temp_path("missing");
        assert_eq!(Checkpoint::<f64>::load(&path, "m").unwrap(), None);
    }

    #[test]
    fn meta_mismatch_is_refused() {
        let path = temp_path("meta");
        Checkpoint::<i32>::new("run A").save(&path).unwrap();
        let err = Checkpoint::<i32>::load(&path, "run B").unwrap_err();
        assert!(matches!(err, CheckpointError::MetaMismatch { .. }), "{err}");
        assert!(err.to_string().contains("run B"));
        assert!(path.exists(), "meta mismatch must not quarantine");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_json_is_reported_and_quarantined() {
        let path = temp_path("corrupt");
        std::fs::write(&path, "{ not json").unwrap();
        let err = Checkpoint::<i32>::load(&path, "m").unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("forumcast-ckpt-corrupt"));
        let quarantined = path.with_extension("json.corrupt");
        assert!(quarantined.exists(), "corrupt JSON must be moved aside");
        assert!(!path.exists());
        std::fs::remove_file(&quarantined).unwrap();
    }

    #[test]
    fn torn_write_fault_loses_only_the_tail_entries() {
        let path = temp_path("torn-write");
        let mut cp: Checkpoint<i32> = Checkpoint::new("m");
        cp.record(0, 10);
        cp.record(1, 11);
        cp.record(2, 12);
        {
            let _guard = FaultPlan::parse("torn-write:3").unwrap().arm();
            // Save succeeds: the tear is post-rename media damage.
            cp.save(&path).unwrap();
        }
        let back = Checkpoint::<i32>::load(&path, "m").unwrap().unwrap();
        assert_eq!(back.entries, vec![(0, 10), (1, 11)]);
        assert!(
            path.exists(),
            "torn checkpoint is truncated, not quarantined"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_fault_is_detected_and_quarantined() {
        let path = temp_path("bit-flip");
        let mut cp: Checkpoint<f64> = Checkpoint::new("m");
        cp.record(0, 1.0);
        cp.record(1, 2.0);
        {
            let _guard = FaultPlan::parse("bit-flip:2").unwrap().arm();
            cp.save(&path).unwrap();
        }
        let err = Checkpoint::<f64>::load(&path, "m").unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("CRC mismatch"), "{err}");
        let quarantined = path.with_extension("json.corrupt");
        assert!(quarantined.exists());
        assert!(!path.exists());
        std::fs::remove_file(&quarantined).unwrap();
    }

    #[test]
    fn fsync_fail_fault_errors_and_keeps_the_old_checkpoint() {
        let path = temp_path("fsync-fail");
        let mut cp: Checkpoint<i32> = Checkpoint::new("m");
        cp.record(0, 1);
        cp.save(&path).unwrap();
        cp.record(1, 2);
        {
            // Three shots exhaust the bounded save retry (x3 =
            // SAVE_ATTEMPTS), so the failure is permanent.
            let _guard = FaultPlan::parse("fsync-fail:2x3").unwrap().arm();
            let err = cp.save(&path).unwrap_err();
            assert!(
                err.to_string().contains("fsync-fail:2"),
                "injected sync failure must be typed: {err}"
            );
        }
        // The previous checkpoint survives untouched and loadable.
        let back = Checkpoint::<i32>::load(&path, "m").unwrap().unwrap();
        assert_eq!(back.entries, vec![(0, 1)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn transient_fsync_fail_is_healed_by_counted_retries() {
        let path = temp_path("fsync-retry");
        let mut cp: Checkpoint<i32> = Checkpoint::new("m");
        cp.record(0, 1);
        cp.record(1, 2);
        {
            // Two shots fail attempts 0 and 1; attempt 2 saves clean.
            let _guard = FaultPlan::parse("fsync-fail:2x2").unwrap().arm();
            let obs = forumcast_obs::arm();
            cp.save(&path).expect("transient sync failure must heal");
            let log = forumcast_obs::drain().expect("collector armed");
            drop(obs);
            let retries = log
                .counters
                .iter()
                .find(|(n, _)| n == "ckpt.save.retries")
                .map(|(_, v)| *v)
                .unwrap_or(0);
            assert_eq!(retries, 2, "each failed attempt is one counted retry");
        }
        let back = Checkpoint::<i32>::load(&path, "m").unwrap().unwrap();
        assert_eq!(back.entries, vec![(0, 1), (1, 2)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn subfold_roundtrip_preserves_payload_bitwise() {
        for format in [CkptFormat::Binary, CkptFormat::Json] {
            let path = temp_path(&format!("subfold-roundtrip-{format}"));
            let cp = TrainCheckpoint::new("fold 3 of run A", vec![0.1 + 0.2, f64::MIN_POSITIVE]);
            cp.save_with(&path, 0, format).unwrap();
            let back = TrainCheckpoint::<Vec<f64>>::load(&path, "fold 3 of run A")
                .unwrap()
                .unwrap();
            assert_eq!(back.version, SUBFOLD_FORMAT_VERSION);
            for (x, bx) in cp.payload.iter().zip(&back.payload) {
                assert_eq!(x.to_bits(), bx.to_bits());
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    /// JSON drops NaN (serializes as null, rejected or zeroed on
    /// read); binary must carry non-finite payload bits verbatim so
    /// the validation layer above can reject them with its *typed*
    /// error instead of silently mutating state.
    #[test]
    fn subfold_binary_preserves_nonfinite_bits() {
        let path = temp_path("subfold-nan");
        let bits = 0x7FF8_0000_DEAD_BEEFu64;
        let cp = TrainCheckpoint::new("f", vec![f64::from_bits(bits)]);
        cp.save_with(&path, 0, CkptFormat::Binary).unwrap();
        let back = TrainCheckpoint::<Vec<f64>>::load(&path, "f")
            .unwrap()
            .unwrap();
        assert_eq!(back.payload[0].to_bits(), bits);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn subfold_missing_file_loads_as_none() {
        let path = temp_path("subfold-missing");
        assert_eq!(TrainCheckpoint::<i32>::load(&path, "f").unwrap(), None);
    }

    #[test]
    fn subfold_unknown_version_is_corrupt_not_trusted() {
        for format in [CkptFormat::Binary, CkptFormat::Json] {
            let path = temp_path(&format!("subfold-version-{format}"));
            let mut cp = TrainCheckpoint::new("f", 7i32);
            cp.version = SUBFOLD_FORMAT_VERSION + 1;
            cp.save_with(&path, 0, format).unwrap();
            let err = TrainCheckpoint::<i32>::load(&path, "f").unwrap_err();
            assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
            assert!(err.to_string().contains("format version"));
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn subfold_truncated_json_is_corrupt_not_trusted() {
        let path = temp_path("subfold-truncated");
        TrainCheckpoint::new("f", vec![1.0f64, 2.0])
            .save_with(&path, 0, CkptFormat::Json)
            .unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &json[..json.len() / 2]).unwrap();
        let err = TrainCheckpoint::<Vec<f64>>::load(&path, "f").unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        let quarantined = path.with_extension("json.corrupt");
        assert!(quarantined.exists(), "corrupt JSON snapshot is moved aside");
        std::fs::remove_file(&quarantined).unwrap();
    }

    #[test]
    fn subfold_torn_binary_is_corrupt_not_partially_trusted() {
        let path = temp_path("subfold-torn");
        let cp = TrainCheckpoint::new("f", vec![1.0f64; 64]);
        {
            let _guard = FaultPlan::parse("torn-write:5").unwrap().arm();
            cp.save_with(&path, 5, CkptFormat::Binary).unwrap();
        }
        let err = TrainCheckpoint::<Vec<f64>>::load(&path, "f").unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("truncated"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    /// The stale-fingerprint error must hand the operator everything
    /// needed to act: the offending path, both fingerprints, and the
    /// `--resume` remedy.
    #[test]
    fn subfold_stale_fingerprint_names_path_fingerprints_and_remedy() {
        let path = temp_path("subfold-stale");
        TrainCheckpoint::new("quick scale, 5 folds", 7i32)
            .save(&path, 0)
            .unwrap();
        let err = TrainCheckpoint::<i32>::load(&path, "full scale, 10 folds").unwrap_err();
        assert!(matches!(err, CheckpointError::Stale { .. }), "{err}");
        let msg = err.to_string();
        assert!(msg.contains(path.display().to_string().as_str()), "{msg}");
        assert!(msg.contains("full scale, 10 folds"), "{msg}");
        assert!(msg.contains("quick scale, 5 folds"), "{msg}");
        assert!(msg.contains("--resume"), "{msg}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_tmp_is_reclaimed_and_counted() {
        let path = temp_path("tmp-reclaim");
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, b"half a checkpoint").unwrap();
        let guard = forumcast_obs::arm();
        assert!(reclaim_tmp(&path));
        let log = forumcast_obs::drain().expect("collector armed");
        drop(guard);
        assert!(!tmp.exists());
        assert!(
            log.counters
                .iter()
                .any(|(n, v)| n == "ckpt.tmp.reclaimed" && *v >= 1),
            "reclaim must be counted"
        );
        assert!(!reclaim_tmp(&path), "nothing left to reclaim");
    }
}
