//! Deterministic fault injection.
//!
//! A [`FaultPlan`] names *sites* (places in the pipeline instrumented
//! with a probe) and *unit indices* (the logical work item at that
//! site: fold job number, record number, optimizer step number). When
//! a plan is armed, the probe for `(site, unit)` fires as many times
//! as the plan has shots for it, then goes quiet — so a retry of the
//! same unit succeeds, and the healed output is bitwise-identical to
//! a fault-free run regardless of which worker thread hit the fault
//! first.
//!
//! Plans are written as a comma-separated spec, e.g.
//! `fold-panic:1,nan-grad:3` ("panic the first attempt of fold job 1;
//! corrupt optimizer step 3"), with an optional `xN` multiplicity
//! suffix (`fold-panic:1x3` fires three attempts in a row — enough to
//! exhaust a bounded retry and simulate a hard failure). The spec is
//! read from the [`FAULTS_ENV`] environment variable or passed
//! explicitly via a CLI flag.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, PoisonError, RwLock};

/// Environment variable holding the fault-plan spec.
pub const FAULTS_ENV: &str = "FORUMCAST_FAULTS";

/// Prefix of every injected panic payload / error message. The panic
/// hook installed when a plan is armed suppresses backtraces for
/// payloads with this prefix so CI logs stay readable; real panics
/// still print normally.
pub const INJECTED_PREFIX: &str = "injected fault:";

/// An instrumented place in the pipeline where faults can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultSite {
    /// Panic inside a CV fold worker (unit = fold job index). The
    /// sub-fold resume path adds a second probe right after each
    /// mid-training snapshot save, at unit = total job count + fold
    /// job index — a disjoint unit space, so a plan can kill a fold
    /// *mid-training* (with snapshots already on disk) without also
    /// tripping the fold-start probe.
    FoldPanic,
    /// I/O error during record ingestion (unit = record index).
    IngestIo,
    /// NaN written into the gradient buffer before an optimizer step
    /// (unit = cumulative step index within one trainer).
    NanGrad,
    /// Failure writing a checkpoint's temporary file, leaving a
    /// truncated `.tmp` behind — the atomic tmp+rename path must keep
    /// the real checkpoint intact (unit = entries recorded at save
    /// time).
    CkptWrite,
    /// Simulated allocation failure while materializing the experiment
    /// feature matrix (unit = feature-bucket index): the bucket build
    /// panics as an out-of-memory condition would, and the retry
    /// wrapper must degrade gracefully instead of aborting the sweep.
    AllocPressure,
    /// Media-level torn write: the checkpoint's final frame is cut
    /// mid-payload *after* the rename completed, so the save reports
    /// success and the damage is only visible to the next reader
    /// (unit = same save-unit as `ckpt-write`). The store must
    /// truncate to the valid frame prefix, never surface partial
    /// bytes.
    TornWrite,
    /// Media-level bit rot: one payload bit of the written checkpoint
    /// is flipped post-rename; the save reports success (unit = same
    /// save-unit as `ckpt-write`). The reader must detect the CRC
    /// mismatch and quarantine the file.
    BitFlip,
    /// `fsync` failure during a checkpoint save: the save errors out
    /// before the rename, leaving the previous checkpoint intact
    /// (unit = same save-unit as `ckpt-write`).
    FsyncFail,
    /// Torn WAL append: the frame for one event is cut mid-payload
    /// and the append reports failure (unit = event id). Reopening
    /// the log must truncate the torn tail back to the valid prefix
    /// so the append can be repeated.
    WalTornAppend,
    /// Duplicate delivery of one event to the WAL ingest path (unit =
    /// event id): the event is appended and offered twice, and replay
    /// must skip the duplicate id idempotently.
    WalDupDeliver,
    /// Delivery reorder at the WAL ingest path (unit = event id): the
    /// event swaps places with its successor, and the ingestor's
    /// bounded reorder buffer must restore id order.
    WalReorder,
}

impl FaultSite {
    /// All sites, in spec-name order.
    pub const ALL: [FaultSite; 11] = [
        FaultSite::FoldPanic,
        FaultSite::IngestIo,
        FaultSite::NanGrad,
        FaultSite::CkptWrite,
        FaultSite::AllocPressure,
        FaultSite::TornWrite,
        FaultSite::BitFlip,
        FaultSite::FsyncFail,
        FaultSite::WalTornAppend,
        FaultSite::WalDupDeliver,
        FaultSite::WalReorder,
    ];

    /// The spec name (`fold-panic`, `ingest-io`, `nan-grad`,
    /// `ckpt-write`, `alloc-pressure`, `torn-write`, `bit-flip`,
    /// `fsync-fail`, `wal-torn-append`, `wal-dup-deliver`,
    /// `wal-reorder`).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::FoldPanic => "fold-panic",
            FaultSite::IngestIo => "ingest-io",
            FaultSite::NanGrad => "nan-grad",
            FaultSite::CkptWrite => "ckpt-write",
            FaultSite::AllocPressure => "alloc-pressure",
            FaultSite::TornWrite => "torn-write",
            FaultSite::BitFlip => "bit-flip",
            FaultSite::FsyncFail => "fsync-fail",
            FaultSite::WalTornAppend => "wal-torn-append",
            FaultSite::WalDupDeliver => "wal-dup-deliver",
            FaultSite::WalReorder => "wal-reorder",
        }
    }

    fn from_name(name: &str) -> Result<Self, FaultSpecError> {
        FaultSite::ALL
            .into_iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| {
                FaultSpecError(format!(
                    "unknown fault site `{name}` (expected one of: fold-panic, ingest-io, \
                     nan-grad, ckpt-write, alloc-pressure, torn-write, bit-flip, fsync-fail, \
                     wal-torn-append, wal-dup-deliver, wal-reorder)"
                ))
            })
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A malformed fault-plan spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(pub String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {FAULTS_ENV} spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

/// A set of faults to inject: `(site, unit, shots)` triples. Armed
/// via [`FaultPlan::arm`]; while armed, probes at the named sites
/// fire deterministically.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    shots: Vec<(FaultSite, u64, u32)>,
}

impl FaultPlan {
    /// Parses a spec like `fold-panic:1,ingest-io:0,nan-grad:3x2`.
    /// Empty (or all-whitespace) specs parse to an empty plan.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] on unknown sites or unparsable
    /// indices/multiplicities.
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let mut shots = Vec::new();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (site_s, rest) = part
                .split_once(':')
                .ok_or_else(|| FaultSpecError(format!("`{part}` is not of the form site:index")))?;
            let (idx_s, count_s) = match rest.split_once('x') {
                Some((i, c)) => (i, c),
                None => (rest, "1"),
            };
            let site = FaultSite::from_name(site_s.trim())?;
            let unit: u64 = idx_s.trim().parse().map_err(|_| {
                FaultSpecError(format!(
                    "`{}` is not a valid unit index in `{part}`",
                    idx_s.trim()
                ))
            })?;
            let count: u32 = count_s.trim().parse().map_err(|_| {
                FaultSpecError(format!(
                    "`{}` is not a valid shot count in `{part}`",
                    count_s.trim()
                ))
            })?;
            if count == 0 {
                return Err(FaultSpecError(format!(
                    "shot count must be >= 1 in `{part}`"
                )));
            }
            shots.push((site, unit, count));
        }
        Ok(FaultPlan { shots })
    }

    /// Reads the plan from [`FAULTS_ENV`]. `Ok(None)` when the
    /// variable is unset or blank.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] when the variable is set but
    /// malformed.
    pub fn from_env() -> Result<Option<Self>, FaultSpecError> {
        match std::env::var(FAULTS_ENV) {
            Ok(spec) if !spec.trim().is_empty() => Ok(Some(Self::parse(&spec)?)),
            _ => Ok(None),
        }
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.shots.is_empty()
    }

    /// Arms the plan process-wide and returns a guard that disarms it
    /// on drop. Armed scopes are serialized: a second `arm` blocks
    /// until the first guard drops, so concurrent tests cannot see
    /// each other's faults.
    pub fn arm(self) -> FaultGuard {
        install_quiet_hook();
        let lock = ARM_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let mut remaining: HashMap<(FaultSite, u64), u32> = HashMap::new();
        for (site, unit, count) in &self.shots {
            *remaining.entry((*site, *unit)).or_insert(0) += count;
        }
        *ACTIVE.write().unwrap_or_else(PoisonError::into_inner) = Some(Arc::new(ActivePlan {
            remaining: Mutex::new(remaining),
        }));
        ARMED.store(true, Ordering::Release);
        FaultGuard { _lock: lock }
    }

    /// Arms the plan for the remainder of the process — for binaries
    /// wiring up `--faults` / [`FAULTS_ENV`] at startup. Later `arm`
    /// calls in the same process will block forever; use [`Self::arm`]
    /// in tests.
    pub fn arm_for_process(self) {
        std::mem::forget(self.arm());
    }
}

struct ActivePlan {
    remaining: Mutex<HashMap<(FaultSite, u64), u32>>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static ACTIVE: RwLock<Option<Arc<ActivePlan>>> = RwLock::new(None);
static ARM_LOCK: Mutex<()> = Mutex::new(());
static HOOK: Once = Once::new();

/// Disarms the plan (and releases the arming lock) on drop.
pub struct FaultGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::Release);
        *ACTIVE.write().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<String>()
                .map(|s| s.starts_with(INJECTED_PREFIX))
                .or_else(|| {
                    payload
                        .downcast_ref::<&str>()
                        .map(|s| s.starts_with(INJECTED_PREFIX))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    });
}

/// Consumes one shot for `(site, unit)` from the armed plan, if any.
/// Returns `false` when no plan is armed, the plan has no shot for
/// this probe, or all its shots already fired. The armed-check fast
/// path is a single atomic load, so probes are safe in hot loops.
pub fn fires(site: FaultSite, unit: u64) -> bool {
    if !ARMED.load(Ordering::Acquire) {
        return false;
    }
    let active = ACTIVE.read().unwrap_or_else(PoisonError::into_inner);
    let Some(plan) = active.as_ref() else {
        return false;
    };
    let mut remaining = plan
        .remaining
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    match remaining.get_mut(&(site, unit)) {
        Some(n) if *n > 0 => {
            *n -= 1;
            if forumcast_obs::is_enabled() {
                forumcast_obs::counter_add(&format!("fault.fired.{}", site.name()), 1);
                forumcast_obs::mark("fault.fired", unit);
            }
            true
        }
        _ => false,
    }
}

/// Panics with an injected-fault payload when `(site, unit)` fires.
pub fn panic_point(site: FaultSite, unit: u64) {
    if fires(site, unit) {
        panic!("{INJECTED_PREFIX} {site}:{unit}");
    }
}

/// Returns an injected I/O error when `(site, unit)` fires.
///
/// # Errors
///
/// Returns [`std::io::Error`] exactly when the probe fires.
pub fn io_point(site: FaultSite, unit: u64) -> std::io::Result<()> {
    if fires(site, unit) {
        Err(std::io::Error::other(format!(
            "{INJECTED_PREFIX} {site}:{unit}"
        )))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_sites_indices_and_multiplicity() {
        let plan = FaultPlan::parse(" fold-panic:1 , ingest-io:0, nan-grad:3x2 ").unwrap();
        assert_eq!(
            plan.shots,
            vec![
                (FaultSite::FoldPanic, 1, 1),
                (FaultSite::IngestIo, 0, 1),
                (FaultSite::NanGrad, 3, 2),
            ]
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("  ,  ").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "fold-panic",
            "nope:1",
            "fold-panic:x",
            "fold-panic:1x0",
            "fold-panic:1xq",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.to_string().contains(FAULTS_ENV), "{err}");
        }
    }

    #[test]
    fn fires_exactly_the_configured_number_of_times() {
        let _guard = FaultPlan::parse("fold-panic:7x2").unwrap().arm();
        assert!(fires(FaultSite::FoldPanic, 7));
        assert!(fires(FaultSite::FoldPanic, 7));
        assert!(!fires(FaultSite::FoldPanic, 7));
        assert!(!fires(FaultSite::FoldPanic, 8));
        assert!(!fires(FaultSite::IngestIo, 7));
    }

    #[test]
    fn disarmed_probes_never_fire() {
        {
            let _guard = FaultPlan::parse("ingest-io:0").unwrap().arm();
        }
        assert!(!fires(FaultSite::IngestIo, 0));
    }

    #[test]
    fn io_point_reports_site_and_unit() {
        let _guard = FaultPlan::parse("ingest-io:4").unwrap().arm();
        let err = io_point(FaultSite::IngestIo, 4).unwrap_err();
        assert!(err.to_string().contains("ingest-io:4"));
        assert!(io_point(FaultSite::IngestIo, 4).is_ok());
    }

    #[test]
    fn panic_point_payload_carries_the_injected_prefix() {
        let _guard = FaultPlan::parse("fold-panic:2").unwrap().arm();
        let payload =
            std::panic::catch_unwind(|| panic_point(FaultSite::FoldPanic, 2)).unwrap_err();
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.starts_with(INJECTED_PREFIX), "{msg}");
        assert!(msg.contains("fold-panic:2"));
    }
}
