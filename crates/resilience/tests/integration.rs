//! End-to-end resilience tests over the real CV harness: injected
//! faults heal bitwise-identically via retry, and an interrupted
//! sweep resumes from its checkpoint to the exact uninterrupted
//! output.
//!
//! The dev-dependency on `forumcast-eval` intentionally closes a
//! cycle in the test graph (eval → data → resilience): these tests
//! exercise the injector through the highest-level consumer.

use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use forumcast_eval::{
    run_cv, run_cv_resumable, CvError, CvOptions, EvalConfig, ExperimentData, FoldOutcome,
};
use forumcast_resilience::FaultPlan;

/// Armed fault plans are process-global, so tests that run CVs must
/// not overlap — one could consume another's shots.
static LOCK: Mutex<()> = Mutex::new(());

fn quick_config(threads: usize) -> EvalConfig {
    let mut cfg = EvalConfig::quick();
    cfg.folds = 2;
    cfg.repeats = 1;
    cfg.threads = threads;
    cfg
}

/// One shared dataset/feature build — by far the slowest part.
fn shared_data() -> &'static ExperimentData {
    static DATA: OnceLock<ExperimentData> = OnceLock::new();
    DATA.get_or_init(|| {
        let cfg = quick_config(1);
        let (ds, _) = cfg.synth.generate().preprocess();
        ExperimentData::build(&ds, &cfg)
    })
}

/// Every float of every outcome, as raw bits — the comparison the
/// determinism guarantees are stated in.
fn bits(outcomes: &[FoldOutcome]) -> Vec<u64> {
    outcomes
        .iter()
        .flat_map(|o| {
            [
                o.auc,
                o.auc_baseline,
                o.rmse_votes,
                o.rmse_votes_baseline,
                o.rmse_time,
                o.rmse_time_baseline,
            ]
        })
        .map(f64::to_bits)
        .collect()
}

fn temp_checkpoint(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "forumcast-resilience-{name}-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

#[test]
fn injected_faults_heal_bitwise_identically() {
    let _lock = LOCK.lock().unwrap();
    let data = shared_data();
    for threads in [1, 2] {
        let cfg = quick_config(threads);
        let clean = run_cv(data, &cfg, None, false);
        // One panic in each fold job plus a NaN gradient in the vote
        // trainer: every fault is retried away and the healed run must
        // reproduce the fault-free bits.
        let guard = FaultPlan::parse("fold-panic:0,fold-panic:1,nan-grad:3")
            .unwrap()
            .arm();
        let healed = run_cv(data, &cfg, None, false);
        drop(guard);
        assert_eq!(
            bits(&clean),
            bits(&healed),
            "healed run diverged at {threads} thread(s)"
        );
    }
}

#[test]
fn interrupted_sweep_resumes_bitwise_identically() {
    let _lock = LOCK.lock().unwrap();
    let data = shared_data();
    for threads in [1, 2] {
        let cfg = quick_config(threads);
        let uninterrupted = run_cv(data, &cfg, None, false);

        // Kill the sweep after fold job 0: job 1 panics through all
        // three attempts, so the run dies with job 0 checkpointed.
        let path = temp_checkpoint(&format!("resume-t{threads}"));
        let opts = CvOptions::with_checkpoint(&path);
        {
            let _guard = FaultPlan::parse("fold-panic:1x3").unwrap().arm();
            let err = run_cv_resumable(data, &cfg, None, false, &opts).unwrap_err();
            assert!(
                matches!(err, CvError::FoldFailed { job: 1, .. }),
                "expected job 1 to fail, got: {err}"
            );
        }

        // Resume fault-free: job 0 is restored from the checkpoint,
        // job 1 recomputed, and the concatenation matches the
        // uninterrupted run bit for bit.
        let resumed = run_cv_resumable(data, &cfg, None, false, &opts).unwrap();
        assert_eq!(
            bits(&uninterrupted),
            bits(&resumed),
            "resumed run diverged at {threads} thread(s)"
        );
        std::fs::remove_file(&path).unwrap();
    }
}

#[test]
fn failed_checkpoint_write_leaves_no_partial_checkpoint_and_resumes() {
    let _lock = LOCK.lock().unwrap();
    let data = shared_data();
    let cfg = quick_config(1);
    let uninterrupted = run_cv(data, &cfg, None, false);

    // With 2 fold jobs at 1 thread, saves run in order: the first
    // holds 1 entry, the second 2. Fire the fault at the second save
    // so a good checkpoint already exists when the write "crashes".
    let path = temp_checkpoint("ckpt-write");
    // Sub-fold snapshots off: this test aims `ckpt-write` at the
    // *fold-level* save units (1 and 2 = entry counts), and the job-0
    // sub-fold save probes the same site at unit 2 (= jobs + job).
    let opts = CvOptions::with_checkpoint(&path).with_snapshot_every(0);
    let tmp = path.with_extension("tmp");
    {
        let _guard = FaultPlan::parse("ckpt-write:2").unwrap().arm();
        let err = run_cv_resumable(data, &cfg, None, false, &opts).unwrap_err();
        let msg = err.to_string();
        assert!(
            matches!(err, CvError::Checkpoint(_)) && msg.contains("injected fault"),
            "{msg}"
        );
    }

    // The fired shot truncated the tmp file but never renamed it: the
    // tmp is damaged (a torn store or a broken header), while the
    // real checkpoint still scans clean.
    let truncated = std::fs::read(&tmp).unwrap();
    let tmp_damaged = match forumcast_store::scan(&truncated, &tmp) {
        Err(_) => true,
        Ok(report) => report.issue.is_some(),
    };
    assert!(
        tmp_damaged,
        "tmp file should be a truncated, unparseable write"
    );
    let good = std::fs::read(&path).unwrap();
    let report = forumcast_store::scan(&good, &path).expect("real checkpoint stayed intact");
    assert!(report.issue.is_none(), "real checkpoint stayed intact");

    // A fault-free rerun resumes from the intact checkpoint (job 0
    // restored, job 1 recomputed) and reproduces the uninterrupted
    // bits exactly.
    let resumed = run_cv_resumable(data, &cfg, None, false, &opts).unwrap();
    assert_eq!(bits(&uninterrupted), bits(&resumed));
    std::fs::remove_file(&path).unwrap();
    let _ = std::fs::remove_file(&tmp);
}

/// Smoke test for the `FORUMCAST_FAULTS` env path (`scripts/check.sh`
/// runs this suite with `fold-panic:1` set). The spec must be one the
/// bounded retry can heal — that is the point of the smoke pass.
#[test]
fn env_fault_spec_is_honored_and_healed() {
    let _lock = LOCK.lock().unwrap();
    let data = shared_data();
    let cfg = quick_config(2);
    let clean = run_cv(data, &cfg, None, false);
    let plan = FaultPlan::from_env()
        .expect("FORUMCAST_FAULTS parses")
        .unwrap_or_else(|| FaultPlan::parse("fold-panic:0").unwrap());
    let _guard = plan.arm();
    let healed = run_cv(data, &cfg, None, false);
    assert_eq!(bits(&clean), bits(&healed));
}
