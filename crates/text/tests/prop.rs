//! Property-based tests for tokenization and bag-of-words invariants.

use proptest::prelude::*;

use forumcast_text::{tokenize, tokenize_filtered, BagOfWords, Vocabulary};

proptest! {
    /// Tokens never contain separators and are all lowercase.
    #[test]
    fn tokens_are_clean(text in ".{0,200}") {
        for tok in tokenize(&text) {
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().any(|c| c.is_alphanumeric()));
            prop_assert!(!tok.chars().any(char::is_whitespace));
            prop_assert_eq!(tok.to_lowercase(), tok.clone());
        }
    }

    /// Filtering only removes tokens; it never invents them.
    #[test]
    fn filtered_is_subsequence(text in "[a-zA-Z ]{0,200}") {
        let all = tokenize(&text);
        let filtered = tokenize_filtered(&text);
        prop_assert!(filtered.len() <= all.len());
        let mut it = all.iter();
        for f in &filtered {
            prop_assert!(it.any(|t| t == f), "token {f} out of order");
        }
    }

    /// Tokenization is deterministic.
    #[test]
    fn tokenize_deterministic(text in ".{0,120}") {
        prop_assert_eq!(tokenize(&text), tokenize(&text));
    }

    /// A bag-of-words always preserves the multiset of ids.
    #[test]
    fn bow_preserves_counts(ids in proptest::collection::vec(0usize..50, 0..80)) {
        let bow = BagOfWords::from_ids(&ids);
        prop_assert_eq!(bow.total() as usize, ids.len());
        let mut expanded = bow.to_token_ids();
        expanded.sort_unstable();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(expanded, sorted);
        // Entries are strictly increasing in id.
        let entries: Vec<_> = bow.iter().collect();
        for w in entries.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    /// Vocabulary ids stay dense and consistent under observation.
    #[test]
    fn vocab_ids_dense(words in proptest::collection::vec("[a-z]{1,6}", 1..60)) {
        let mut v = Vocabulary::new();
        v.observe(&words);
        prop_assert!(v.len() <= words.len());
        for w in &words {
            let id = v.id_of(w).expect("observed word is present");
            prop_assert!(id < v.len());
            prop_assert_eq!(v.token_of(id), w.as_str());
        }
    }

    /// Pruning never increases the vocabulary and keeps ids dense.
    #[test]
    fn prune_shrinks(words in proptest::collection::vec("[a-c]{1,2}", 1..40),
                     min_docs in 1usize..4) {
        let mut v = Vocabulary::new();
        for w in &words {
            v.observe(std::slice::from_ref(w));
        }
        let before = v.len();
        let removed = v.prune(min_docs, 1.0);
        prop_assert_eq!(v.len() + removed, before);
        for id in 0..v.len() {
            let tok = v.token_of(id).to_owned();
            prop_assert_eq!(v.id_of(&tok), Some(id));
        }
    }
}
