//! A small, deterministic tokenizer for forum post text.

use crate::stopwords::is_stopword;

/// Splits text into lowercase alphanumeric tokens.
///
/// Rules: Unicode-aware lowercasing; any run of alphanumeric
/// characters (plus `_`, `+`, `#` inside programming-language names
/// like `c++`/`c#`) forms a token; everything else separates tokens;
/// purely numeric tokens are kept (version numbers carry topical
/// signal); single-character alphabetic tokens are dropped.
///
/// # Example
///
/// ```
/// use forumcast_text::tokenize;
/// assert_eq!(
///     tokenize("Sorting C++ vectors, in-place!"),
///     vec!["sorting", "c++", "vectors", "in", "place"]
/// );
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for ch in text.chars() {
        let is_word_char = ch.is_alphanumeric() || ch == '_' || ch == '+' || ch == '#';
        if is_word_char {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            push_token(&mut tokens, std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        push_token(&mut tokens, cur);
    }
    tokens
}

fn push_token(tokens: &mut Vec<String>, tok: String) {
    // Drop stray '+'/'#' only tokens and 1-char alphabetic noise.
    let has_alnum = tok.chars().any(|c| c.is_alphanumeric());
    if !has_alnum {
        return;
    }
    if tok.chars().count() == 1 && tok.chars().all(|c| c.is_alphabetic()) {
        return;
    }
    tokens.push(tok);
}

/// Tokenizes and removes English stop words.
///
/// # Example
///
/// ```
/// use forumcast_text::tokenize_filtered;
/// assert_eq!(tokenize_filtered("how do I sort the list"), vec!["sort", "list"]);
/// ```
pub fn tokenize_filtered(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !is_stopword(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_splits_on_punctuation() {
        assert_eq!(tokenize("Hello, World!"), vec!["hello", "world"]);
    }

    #[test]
    fn keeps_language_names_with_symbols() {
        assert_eq!(
            tokenize("C# vs C++ vs F#"),
            vec!["c#", "vs", "c++", "vs", "f#"]
        );
    }

    #[test]
    fn keeps_underscores_and_numbers() {
        assert_eq!(
            tokenize("python_3 v2.7 my_var"),
            vec!["python_3", "v2", "7", "my_var"]
        );
    }

    #[test]
    fn drops_single_letters_but_keeps_single_digits() {
        assert_eq!(tokenize("a b 1 xy"), vec!["1", "xy"]);
    }

    #[test]
    fn drops_symbol_only_runs() {
        assert_eq!(tokenize("++ ## + #"), Vec::<String>::new());
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn unicode_text_tokenizes() {
        assert_eq!(tokenize("Größe café"), vec!["größe", "café"]);
    }

    #[test]
    fn filtered_removes_stopwords() {
        let toks = tokenize_filtered("this is the best answer of all time");
        assert_eq!(toks, vec!["best", "answer", "time"]);
    }
}
