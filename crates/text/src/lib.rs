//! Text processing substrate for `forumcast`.
//!
//! The paper's topic model (LDA, Section II-B) treats each forum post
//! as a document over its natural-language words `x(p)`. This crate
//! provides the pieces between raw post text and the bag-of-words
//! input LDA expects:
//!
//! * [`tokenize`] — lowercasing, punctuation-splitting tokenizer;
//! * [`stopwords`] — a compact English stop-word list;
//! * [`Vocabulary`] — interning of tokens to dense word ids with
//!   frequency-based pruning;
//! * [`BagOfWords`] / [`Corpus`] — sparse document–term counts.
//!
//! # Example
//!
//! ```
//! use forumcast_text::{tokenize, Corpus, Vocabulary};
//!
//! let docs = ["How do I sort a vector?", "Sorting vectors is easy"];
//! let mut vocab = Vocabulary::new();
//! let token_docs: Vec<Vec<String>> = docs.iter().map(|d| tokenize(d)).collect();
//! for doc in &token_docs {
//!     vocab.observe(doc);
//! }
//! let corpus = Corpus::from_token_docs(&token_docs, &vocab);
//! assert_eq!(corpus.num_docs(), 2);
//! ```

pub mod bow;
pub mod stopwords;
pub mod tokenizer;
pub mod vocab;

pub use bow::{BagOfWords, Corpus};
pub use stopwords::is_stopword;
pub use tokenizer::{tokenize, tokenize_filtered};
pub use vocab::Vocabulary;
