//! Token interning and frequency-based vocabulary pruning.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A vocabulary mapping tokens to dense word ids `0 .. len()`.
///
/// Build it by [`observe`](Vocabulary::observe)-ing token documents,
/// optionally [`prune`](Vocabulary::prune)-ing rare/ubiquitous terms,
/// then use [`id_of`](Vocabulary::id_of) to encode documents.
///
/// # Example
///
/// ```
/// use forumcast_text::Vocabulary;
/// let mut v = Vocabulary::new();
/// v.observe(&["rust".to_string(), "rust".to_string(), "go".to_string()]);
/// assert_eq!(v.len(), 2);
/// assert_eq!(v.count_of("rust"), 2);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    ids: HashMap<String, usize>,
    tokens: Vec<String>,
    counts: Vec<usize>,
    /// Number of documents each token appeared in.
    doc_counts: Vec<usize>,
    num_docs: usize,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Number of distinct tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// `true` when the vocabulary has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Number of documents observed so far.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Records one document's tokens, interning new tokens and
    /// updating term and document frequencies.
    pub fn observe<S: AsRef<str>>(&mut self, doc: &[S]) {
        self.num_docs += 1;
        let mut seen_in_doc: Vec<usize> = Vec::new();
        for tok in doc {
            let tok = tok.as_ref();
            let id = match self.ids.get(tok) {
                Some(&id) => id,
                None => {
                    let id = self.tokens.len();
                    self.ids.insert(tok.to_owned(), id);
                    self.tokens.push(tok.to_owned());
                    self.counts.push(0);
                    self.doc_counts.push(0);
                    id
                }
            };
            self.counts[id] += 1;
            if !seen_in_doc.contains(&id) {
                seen_in_doc.push(id);
                self.doc_counts[id] += 1;
            }
        }
    }

    /// Id of `token`, or `None` if unknown (or pruned).
    pub fn id_of(&self, token: &str) -> Option<usize> {
        self.ids.get(token).copied()
    }

    /// The token with id `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id >= len()`.
    pub fn token_of(&self, id: usize) -> &str {
        &self.tokens[id]
    }

    /// Total occurrences of `token` (0 if unknown).
    pub fn count_of(&self, token: &str) -> usize {
        self.id_of(token).map_or(0, |id| self.counts[id])
    }

    /// Removes tokens appearing in fewer than `min_docs` documents or
    /// in more than `max_doc_frac` of all documents, then re-compacts
    /// ids. Returns the number of tokens removed.
    ///
    /// This mirrors the usual Gensim `filter_extremes` preparation the
    /// paper's pipeline relies on.
    pub fn prune(&mut self, min_docs: usize, max_doc_frac: f64) -> usize {
        let max_docs = (max_doc_frac * self.num_docs as f64).floor() as usize;
        let keep: Vec<usize> = (0..self.tokens.len())
            .filter(|&id| self.doc_counts[id] >= min_docs && self.doc_counts[id] <= max_docs)
            .collect();
        let removed = self.tokens.len() - keep.len();
        let mut ids = HashMap::with_capacity(keep.len());
        let mut tokens = Vec::with_capacity(keep.len());
        let mut counts = Vec::with_capacity(keep.len());
        let mut doc_counts = Vec::with_capacity(keep.len());
        for (new_id, &old_id) in keep.iter().enumerate() {
            ids.insert(self.tokens[old_id].clone(), new_id);
            tokens.push(self.tokens[old_id].clone());
            counts.push(self.counts[old_id]);
            doc_counts.push(self.doc_counts[old_id]);
        }
        self.ids = ids;
        self.tokens = tokens;
        self.counts = counts;
        self.doc_counts = doc_counts;
        removed
    }

    /// Iterates over `(token, term_count)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.tokens
            .iter()
            .zip(self.counts.iter())
            .map(|(t, &c)| (t.as_str(), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn observe_interns_and_counts() {
        let mut v = Vocabulary::new();
        v.observe(&doc(&["x", "y", "x"]));
        v.observe(&doc(&["x"]));
        assert_eq!(v.len(), 2);
        assert_eq!(v.count_of("x"), 3);
        assert_eq!(v.count_of("y"), 1);
        assert_eq!(v.count_of("z"), 0);
        assert_eq!(v.num_docs(), 2);
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut v = Vocabulary::new();
        v.observe(&doc(&["a0", "b1", "c2"]));
        assert_eq!(v.id_of("a0"), Some(0));
        assert_eq!(v.id_of("b1"), Some(1));
        assert_eq!(v.token_of(2), "c2");
    }

    #[test]
    fn prune_removes_rare_terms() {
        let mut v = Vocabulary::new();
        v.observe(&doc(&["common", "rare"]));
        v.observe(&doc(&["common"]));
        v.observe(&doc(&["common"]));
        let removed = v.prune(2, 1.0);
        assert_eq!(removed, 1);
        assert_eq!(v.id_of("rare"), None);
        assert_eq!(v.id_of("common"), Some(0));
    }

    #[test]
    fn prune_removes_ubiquitous_terms() {
        let mut v = Vocabulary::new();
        for i in 0..10 {
            if i < 3 {
                v.observe(&doc(&["everywhere", "niche"]));
            } else {
                v.observe(&doc(&["everywhere"]));
            }
        }
        // "everywhere" is in 10/10 docs; "niche" in 3/10; cap at 0.9.
        let removed = v.prune(1, 0.9);
        assert_eq!(removed, 1);
        assert!(v.id_of("everywhere").is_none());
        assert!(v.id_of("niche").is_some());
    }

    #[test]
    fn prune_recompacts_ids() {
        let mut v = Vocabulary::new();
        v.observe(&doc(&["a0", "b1"]));
        v.observe(&doc(&["b1"]));
        v.prune(2, 1.0);
        assert_eq!(v.len(), 1);
        assert_eq!(v.id_of("b1"), Some(0));
        assert_eq!(v.token_of(0), "b1");
    }

    #[test]
    fn doc_frequency_counts_each_doc_once() {
        let mut v = Vocabulary::new();
        v.observe(&doc(&["dup", "dup", "dup"]));
        // One doc → doc_count 1; prune(min_docs=2) removes it.
        let removed = v.prune(2, 1.0);
        assert_eq!(removed, 1);
    }

    #[test]
    fn serde_roundtrip() {
        let mut v = Vocabulary::new();
        v.observe(&doc(&["x", "y"]));
        let json = serde_json::to_string(&v).unwrap();
        let back: Vocabulary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id_of("y"), Some(1));
        assert_eq!(back.num_docs(), 1);
    }

    #[test]
    fn empty_vocab_properties() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.iter().count(), 0);
    }
}
