//! Sparse bag-of-words documents and corpora.

use serde::{Deserialize, Serialize};

use crate::vocab::Vocabulary;

/// A sparse bag-of-words document: `(word_id, count)` pairs sorted by
/// word id.
///
/// # Example
///
/// ```
/// use forumcast_text::BagOfWords;
/// let bow = BagOfWords::from_ids(&[2, 0, 2, 2]);
/// assert_eq!(bow.count(2), 3);
/// assert_eq!(bow.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BagOfWords {
    entries: Vec<(usize, u32)>,
}

impl BagOfWords {
    /// Builds a bag from raw word ids (any order, duplicates counted).
    pub fn from_ids(ids: &[usize]) -> Self {
        let mut sorted = ids.to_vec();
        sorted.sort_unstable();
        let mut entries: Vec<(usize, u32)> = Vec::new();
        for id in sorted {
            match entries.last_mut() {
                Some((last, c)) if *last == id => *c += 1,
                _ => entries.push((id, 1)),
            }
        }
        BagOfWords { entries }
    }

    /// Encodes a token document against a vocabulary; unknown tokens
    /// are skipped.
    pub fn encode<S: AsRef<str>>(doc: &[S], vocab: &Vocabulary) -> Self {
        let ids: Vec<usize> = doc.iter().filter_map(|t| vocab.id_of(t.as_ref())).collect();
        BagOfWords::from_ids(&ids)
    }

    /// Count of `word_id` in this document.
    pub fn count(&self, word_id: usize) -> u32 {
        self.entries
            .binary_search_by_key(&word_id, |&(id, _)| id)
            .map(|i| self.entries[i].1)
            .unwrap_or(0)
    }

    /// Total token count (document length).
    pub fn total(&self) -> u32 {
        self.entries.iter().map(|&(_, c)| c).sum()
    }

    /// Number of distinct words.
    pub fn num_distinct(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the document is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(word_id, count)` in increasing word-id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.entries.iter().copied()
    }

    /// Expands back to a flat list of word ids (each repeated by its
    /// count) — the token-level view collapsed Gibbs sampling needs.
    pub fn to_token_ids(&self) -> Vec<usize> {
        let mut ids = Vec::with_capacity(self.total() as usize);
        for (id, c) in self.iter() {
            ids.extend(std::iter::repeat_n(id, c as usize));
        }
        ids
    }
}

/// A collection of bag-of-words documents over one vocabulary size.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Corpus {
    docs: Vec<BagOfWords>,
    num_words: usize,
}

impl Corpus {
    /// Builds a corpus by encoding token documents with `vocab`.
    pub fn from_token_docs<S: AsRef<str>>(docs: &[Vec<S>], vocab: &Vocabulary) -> Self {
        Corpus {
            docs: docs.iter().map(|d| BagOfWords::encode(d, vocab)).collect(),
            num_words: vocab.len(),
        }
    }

    /// Builds a corpus from pre-encoded documents. `num_words` must
    /// exceed every word id used.
    ///
    /// # Panics
    ///
    /// Panics when a document references a word id `>= num_words`.
    pub fn from_bows(docs: Vec<BagOfWords>, num_words: usize) -> Self {
        for d in &docs {
            if let Some((max_id, _)) = d.iter().last() {
                assert!(
                    max_id < num_words,
                    "word id {max_id} out of range (num_words = {num_words})"
                );
            }
        }
        Corpus { docs, num_words }
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Vocabulary size this corpus is encoded against.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// The `i`-th document.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    pub fn doc(&self, i: usize) -> &BagOfWords {
        &self.docs[i]
    }

    /// Iterates over documents.
    pub fn iter(&self) -> impl Iterator<Item = &BagOfWords> {
        self.docs.iter()
    }

    /// Total tokens across all documents.
    pub fn total_tokens(&self) -> u64 {
        self.docs.iter().map(|d| d.total() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ids_aggregates_and_sorts() {
        let bow = BagOfWords::from_ids(&[5, 1, 5, 1, 5]);
        let entries: Vec<_> = bow.iter().collect();
        assert_eq!(entries, vec![(1, 2), (5, 3)]);
    }

    #[test]
    fn count_and_total() {
        let bow = BagOfWords::from_ids(&[0, 0, 3]);
        assert_eq!(bow.count(0), 2);
        assert_eq!(bow.count(3), 1);
        assert_eq!(bow.count(9), 0);
        assert_eq!(bow.total(), 3);
        assert_eq!(bow.num_distinct(), 2);
    }

    #[test]
    fn to_token_ids_roundtrips() {
        let ids = vec![7, 2, 2, 9, 7, 7];
        let bow = BagOfWords::from_ids(&ids);
        let mut expanded = bow.to_token_ids();
        expanded.sort_unstable();
        let mut sorted = ids;
        sorted.sort_unstable();
        assert_eq!(expanded, sorted);
    }

    #[test]
    fn encode_skips_unknown_tokens() {
        let mut v = Vocabulary::new();
        v.observe(&["known".to_string()]);
        let bow = BagOfWords::encode(&["known", "unknown", "known"], &v);
        assert_eq!(bow.total(), 2);
        assert_eq!(bow.count(0), 2);
    }

    #[test]
    fn empty_bow() {
        let bow = BagOfWords::from_ids(&[]);
        assert!(bow.is_empty());
        assert_eq!(bow.total(), 0);
        assert!(bow.to_token_ids().is_empty());
    }

    #[test]
    fn corpus_from_token_docs() {
        let mut v = Vocabulary::new();
        let d1 = vec!["x".to_string(), "y".to_string()];
        let d2 = vec!["y".to_string()];
        v.observe(&d1);
        v.observe(&d2);
        let c = Corpus::from_token_docs(&[d1, d2], &v);
        assert_eq!(c.num_docs(), 2);
        assert_eq!(c.num_words(), 2);
        assert_eq!(c.total_tokens(), 3);
        assert_eq!(c.doc(1).count(v.id_of("y").unwrap()), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn corpus_from_bows_validates_ids() {
        Corpus::from_bows(vec![BagOfWords::from_ids(&[3])], 3);
    }

    #[test]
    fn corpus_serde_roundtrip() {
        let c = Corpus::from_bows(vec![BagOfWords::from_ids(&[0, 1])], 2);
        let json = serde_json::to_string(&c).unwrap();
        let back: Corpus = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
