//! A compact English stop-word list tuned for forum text.

/// Stop words removed before topic modeling. The list is intentionally
/// small: LDA tolerates residual function words, and over-aggressive
/// filtering hurts short posts.
pub const STOPWORDS: &[&str] = &[
    "a", "about", "after", "all", "also", "am", "an", "and", "any", "are", "as", "at", "be",
    "because", "been", "before", "being", "but", "by", "can", "cannot", "could", "did", "do",
    "does", "doing", "down", "each", "few", "for", "from", "further", "get", "got", "had", "has",
    "have", "having", "he", "her", "here", "hers", "him", "his", "how", "i", "if", "in", "into",
    "is", "it", "its", "just", "like", "me", "more", "most", "my", "no", "nor", "not", "now", "of",
    "off", "on", "once", "only", "or", "other", "our", "out", "over", "own", "same", "she",
    "should", "so", "some", "such", "than", "that", "the", "their", "them", "then", "there",
    "these", "they", "this", "those", "through", "to", "too", "under", "until", "up", "use",
    "using", "very", "want", "was", "we", "were", "what", "when", "where", "which", "while", "who",
    "why", "will", "with", "would", "you", "your",
];

/// Returns `true` when `token` (already lowercase) is a stop word.
///
/// # Example
///
/// ```
/// use forumcast_text::is_stopword;
/// assert!(is_stopword("the"));
/// assert!(!is_stopword("python"));
/// ```
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_and_unique() {
        // binary_search correctness depends on this.
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["the", "and", "is", "of", "to"] {
            assert!(is_stopword(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_are_not_stopwords() {
        for w in ["python", "sort", "vector", "error", "thread"] {
            assert!(!is_stopword(w), "{w} should not be a stop word");
        }
    }

    #[test]
    fn lookup_is_case_sensitive_lowercase_contract() {
        // Callers must lowercase first (the tokenizer does).
        assert!(!is_stopword("The"));
    }
}
