//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary accepts an optional scale argument:
//!
//! ```text
//! cargo run -p forumcast-bench --release --bin table1 [quick|standard|paper] [--json]
//! ```
//!
//! * `quick` — small synthetic dataset, seconds;
//! * `standard` (default) — medium dataset, one repeat of 5-fold CV;
//! * `paper` — medium dataset with the paper's 5 × 5-fold protocol.
//!
//! `--json` additionally dumps the machine-readable report to stdout.
//! `--resume <path>` checkpoints completed CV folds to `<path>` (plus
//! per-sub-run suffixes for the sweep figures) and skips them when the
//! run is restarted with the same path; `--snapshot-every <N>` sets
//! the epoch cadence of the nested sub-fold (mid-training) snapshots
//! (`<path>.fold<job>.train.ckpt`, 0 disables). `--ckpt-format
//! binary|json` picks the checkpoint encoding (framed binary store
//! by default). `--faults <spec>` arms the
//! deterministic fault injector (same grammar as `FORUMCAST_FAULTS`).
//! `--trace <path>` writes a Chrome trace-event JSON file of pipeline
//! spans (`FORUMCAST_TRACE` supplies a default path), `--metrics`
//! prints the per-span timing summary, and `--bench-json <path>`
//! writes the machine-readable bench report (versioned
//! `forumcast-bench` schema, diffable with `forumcast bench
//! compare`); binaries call [`finish`] last to flush all three.
//!
//! All binary output goes through [`status!`] — one locked
//! whole-line write per call — so lines from instrumented parallel
//! work never interleave mid-line.

use std::io::Write as _;
use std::path::PathBuf;

use forumcast_eval::{CkptFormat, CvOptions, EvalConfig};
use forumcast_resilience::FaultPlan;

/// Command-line options shared by the regeneration binaries.
#[derive(Debug, Clone)]
pub struct BinOptions {
    /// Resolved evaluation configuration.
    pub config: EvalConfig,
    /// Dump the serialized report after the human-readable table.
    pub json: bool,
    /// The scale name that was selected.
    pub scale: String,
    /// Checkpoint file for resumable experiments (`--resume <path>`).
    pub resume: Option<PathBuf>,
    /// Sub-fold snapshot cadence (`--snapshot-every N`): with
    /// `--resume`, every N training epochs the in-flight fold
    /// persists its full trainer state so a mid-fold crash resumes
    /// without recomputing the fold from its start (0 disables).
    pub snapshot_every: usize,
    /// Checkpoint encoding (`--ckpt-format binary|json`): the framed,
    /// CRC-checksummed binary store (default) or the legacy JSON.
    pub ckpt_format: CkptFormat,
    /// Chrome trace-event JSON output path (`--trace <path>`, else
    /// the `FORUMCAST_TRACE` env var).
    pub trace: Option<PathBuf>,
    /// Print the per-span timing summary after the run (`--metrics`).
    pub metrics: bool,
    /// Machine-readable bench report output path
    /// (`--bench-json <path>`, `forumcast-bench` schema).
    pub bench_json: Option<PathBuf>,
}

/// Writes one fully formatted status line to stdout in a single
/// locked write. Use through the [`status!`] macro; routing every
/// line here keeps output from instrumented parallel sections from
/// interleaving mid-line.
pub fn status(args: std::fmt::Arguments<'_>) {
    let mut line = args.to_string();
    line.push('\n');
    let stdout = std::io::stdout();
    let mut lock = stdout.lock();
    lock.write_all(line.as_bytes()).expect("write status line");
}

impl BinOptions {
    /// The resilience options the experiment drivers consume,
    /// assembled from the `--snapshot-every` and `--ckpt-format`
    /// flags (the checkpoint path is threaded separately, as each
    /// driver derives per-sub-run files from it).
    pub fn cv_options(&self) -> CvOptions {
        CvOptions::default()
            .with_snapshot_every(self.snapshot_every)
            .with_format(self.ckpt_format)
    }
}

/// `println!`-compatible status output for the regeneration binaries:
/// formats the line, then hands it to [`status`] as one write.
#[macro_export]
macro_rules! status {
    () => { $crate::status(format_args!("")) };
    ($($arg:tt)*) => { $crate::status(format_args!($($arg)*)) };
}

/// Parses `std::env::args` into [`BinOptions`]. Unknown arguments
/// abort with a usage message.
pub fn parse_args() -> BinOptions {
    let mut config = EvalConfig::standard();
    let mut scale = "standard".to_string();
    let mut json = false;
    let mut folds: Option<usize> = None;
    let mut repeats: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut resume: Option<PathBuf> = None;
    let mut snapshot_every: Option<usize> = None;
    let mut ckpt_format = CkptFormat::default();
    let mut faults: Option<FaultPlan> = None;
    let mut trace: Option<PathBuf> = None;
    let mut metrics = false;
    let mut bench_json: Option<PathBuf> = None;
    let mut pending: Option<&str> = None;
    for arg in std::env::args().skip(1) {
        if let Some(key) = pending.take() {
            match key {
                "resume" => {
                    resume = Some(PathBuf::from(&arg));
                    continue;
                }
                "trace" => {
                    trace = Some(PathBuf::from(&arg));
                    continue;
                }
                "bench-json" => {
                    bench_json = Some(PathBuf::from(&arg));
                    continue;
                }
                "faults" => {
                    faults = Some(FaultPlan::parse(&arg).unwrap_or_else(|e| {
                        eprintln!("invalid value `{arg}` for --faults: {e}");
                        std::process::exit(2);
                    }));
                    continue;
                }
                "ckpt-format" => {
                    ckpt_format = CkptFormat::parse(&arg).unwrap_or_else(|e| {
                        eprintln!("invalid value for --ckpt-format: {e}");
                        std::process::exit(2);
                    });
                    continue;
                }
                _ => {}
            }
            let value: usize = arg.parse().unwrap_or_else(|_| {
                eprintln!("invalid value `{arg}` for --{key}");
                std::process::exit(2);
            });
            match key {
                "folds" => folds = Some(value),
                "threads" => threads = Some(value),
                "snapshot-every" => snapshot_every = Some(value),
                _ => repeats = Some(value),
            }
            continue;
        }
        match arg.as_str() {
            "--folds" => {
                pending = Some("folds");
                continue;
            }
            "--repeats" => {
                pending = Some("repeats");
                continue;
            }
            "--threads" => {
                pending = Some("threads");
                continue;
            }
            "--resume" => {
                pending = Some("resume");
                continue;
            }
            "--snapshot-every" => {
                pending = Some("snapshot-every");
                continue;
            }
            "--ckpt-format" => {
                pending = Some("ckpt-format");
                continue;
            }
            "--faults" => {
                pending = Some("faults");
                continue;
            }
            "--trace" => {
                pending = Some("trace");
                continue;
            }
            "--bench-json" => {
                pending = Some("bench-json");
                continue;
            }
            "--metrics" => metrics = true,
            "quick" => {
                config = EvalConfig::quick();
                scale = "quick".into();
            }
            "standard" => {
                config = EvalConfig::standard();
                scale = "standard".into();
            }
            "paper" => {
                config = EvalConfig::paper();
                scale = "paper".into();
            }
            "--json" => json = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: <bin> [quick|standard|paper] [--json] [--folds N] [--repeats N] \
                     [--threads N] [--resume PATH] [--snapshot-every N] \
                     [--ckpt-format binary|json] [--faults SPEC] \
                     [--trace PATH] [--metrics] [--bench-json PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(key) = pending {
        eprintln!("missing value for --{key}");
        std::process::exit(2);
    }
    if let Some(f) = folds {
        config.folds = f.max(2);
    }
    if let Some(r) = repeats {
        config.repeats = r.max(1);
    }
    if let Some(t) = threads {
        // 0 = auto (FORUMCAST_THREADS env var, else machine
        // parallelism) — the same convention as EvalConfig::threads.
        config.threads = t;
    }
    // --faults wins over FORUMCAST_FAULTS; either arms the injector
    // for the whole process.
    let plan = match faults {
        Some(plan) => Some(plan),
        None => FaultPlan::from_env().unwrap_or_else(|e| {
            eprintln!("invalid {}: {e}", forumcast_resilience::FAULTS_ENV);
            std::process::exit(2);
        }),
    };
    if let Some(plan) = plan {
        if !plan.is_empty() {
            plan.arm_for_process();
        }
    }
    // --trace wins over FORUMCAST_TRACE; either (or --metrics) arms
    // the span collector for the whole process.
    let trace = trace.or_else(|| {
        std::env::var(forumcast_obs::TRACE_ENV)
            .ok()
            .map(PathBuf::from)
    });
    if trace.is_some() || metrics || bench_json.is_some() {
        forumcast_obs::arm_for_process();
    }
    BinOptions {
        config,
        json,
        scale,
        resume,
        snapshot_every: snapshot_every.unwrap_or(CvOptions::default().snapshot_every),
        ckpt_format,
        trace,
        metrics,
        bench_json,
    }
}

/// Opens the experiment's root span when tracing is armed. Drop the
/// guard (or let it fall out of scope) before calling [`finish`] so
/// the root span's duration lands in the drained log.
#[must_use = "the root span measures the scope holding the guard"]
pub fn root_span(experiment: &str) -> forumcast_obs::SpanGuard {
    forumcast_obs::span(experiment)
}

/// Flushes observability output: writes the Chrome trace file when
/// `--trace`/`FORUMCAST_TRACE` was given, the bench report when
/// `--bench-json` was, and prints the per-span summary when
/// `--metrics` was. A no-op when none were requested.
pub fn finish(opts: &BinOptions) {
    if opts.trace.is_none() && !opts.metrics && opts.bench_json.is_none() {
        return;
    }
    let Some(log) = forumcast_obs::drain() else {
        return;
    };
    if let Some(path) = &opts.trace {
        match std::fs::write(path, log.to_chrome_json()) {
            Ok(()) => status!("trace written to {}", path.display()),
            Err(e) => {
                eprintln!("cannot write trace to `{}`: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &opts.bench_json {
        match std::fs::write(path, log.to_bench_json()) {
            Ok(()) => status!("bench report written to {}", path.display()),
            Err(e) => {
                eprintln!("cannot write bench report to `{}`: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    if opts.metrics {
        status!("{}", log.summary().render());
    }
}

/// Prints the standard run header.
pub fn header(experiment: &str, opts: &BinOptions) {
    status!("=== forumcast :: {experiment} (scale: {}) ===", opts.scale);
    status!(
        "dataset: {} users, {} questions, K = {}",
        opts.config.synth.num_users,
        opts.config.synth.num_questions,
        opts.config.extractor.lda.num_topics
    );
    status!();
}

/// Serializes a report as JSON when `--json` was passed.
pub fn maybe_json<T: serde::Serialize>(opts: &BinOptions, report: &T) {
    if opts.json {
        status!("\n--- json ---");
        status!(
            "{}",
            serde_json::to_string_pretty(report).expect("report serializes")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_standard_scale() {
        // parse_args reads process args; here we just check defaults
        // used by the binaries compile-time contract.
        let opts = BinOptions {
            config: EvalConfig::standard(),
            json: false,
            scale: "standard".into(),
            resume: None,
            snapshot_every: CvOptions::default().snapshot_every,
            ckpt_format: CkptFormat::default(),
            trace: None,
            metrics: false,
            bench_json: None,
        };
        assert_eq!(opts.config.repeats, 1);
        assert!(!opts.json);
        assert!(opts.snapshot_every > 0, "sub-fold snapshots default on");
    }
}
