//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary accepts an optional scale argument:
//!
//! ```text
//! cargo run -p forumcast-bench --release --bin table1 [quick|standard|paper] [--json]
//! ```
//!
//! * `quick` — small synthetic dataset, seconds;
//! * `standard` (default) — medium dataset, one repeat of 5-fold CV;
//! * `paper` — medium dataset with the paper's 5 × 5-fold protocol.
//!
//! `--json` additionally dumps the machine-readable report to stdout.
//! `--resume <path>` checkpoints completed CV folds to `<path>` (plus
//! per-sub-run suffixes for the sweep figures) and skips them when the
//! run is restarted with the same path. `--faults <spec>` arms the
//! deterministic fault injector (same grammar as `FORUMCAST_FAULTS`).

use std::path::PathBuf;

use forumcast_eval::EvalConfig;
use forumcast_resilience::FaultPlan;

/// Command-line options shared by the regeneration binaries.
#[derive(Debug, Clone)]
pub struct BinOptions {
    /// Resolved evaluation configuration.
    pub config: EvalConfig,
    /// Dump the serialized report after the human-readable table.
    pub json: bool,
    /// The scale name that was selected.
    pub scale: String,
    /// Checkpoint file for resumable experiments (`--resume <path>`).
    pub resume: Option<PathBuf>,
}

/// Parses `std::env::args` into [`BinOptions`]. Unknown arguments
/// abort with a usage message.
pub fn parse_args() -> BinOptions {
    let mut config = EvalConfig::standard();
    let mut scale = "standard".to_string();
    let mut json = false;
    let mut folds: Option<usize> = None;
    let mut repeats: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut resume: Option<PathBuf> = None;
    let mut faults: Option<FaultPlan> = None;
    let mut pending: Option<&str> = None;
    for arg in std::env::args().skip(1) {
        if let Some(key) = pending.take() {
            match key {
                "resume" => {
                    resume = Some(PathBuf::from(&arg));
                    continue;
                }
                "faults" => {
                    faults = Some(FaultPlan::parse(&arg).unwrap_or_else(|e| {
                        eprintln!("invalid value `{arg}` for --faults: {e}");
                        std::process::exit(2);
                    }));
                    continue;
                }
                _ => {}
            }
            let value: usize = arg.parse().unwrap_or_else(|_| {
                eprintln!("invalid value `{arg}` for --{key}");
                std::process::exit(2);
            });
            match key {
                "folds" => folds = Some(value),
                "threads" => threads = Some(value),
                _ => repeats = Some(value),
            }
            continue;
        }
        match arg.as_str() {
            "--folds" => {
                pending = Some("folds");
                continue;
            }
            "--repeats" => {
                pending = Some("repeats");
                continue;
            }
            "--threads" => {
                pending = Some("threads");
                continue;
            }
            "--resume" => {
                pending = Some("resume");
                continue;
            }
            "--faults" => {
                pending = Some("faults");
                continue;
            }
            "quick" => {
                config = EvalConfig::quick();
                scale = "quick".into();
            }
            "standard" => {
                config = EvalConfig::standard();
                scale = "standard".into();
            }
            "paper" => {
                config = EvalConfig::paper();
                scale = "paper".into();
            }
            "--json" => json = true,
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: <bin> [quick|standard|paper] [--json] [--folds N] [--repeats N] \
                     [--threads N] [--resume PATH] [--faults SPEC]"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(key) = pending {
        eprintln!("missing value for --{key}");
        std::process::exit(2);
    }
    if let Some(f) = folds {
        config.folds = f.max(2);
    }
    if let Some(r) = repeats {
        config.repeats = r.max(1);
    }
    if let Some(t) = threads {
        // 0 = auto (FORUMCAST_THREADS env var, else machine
        // parallelism) — the same convention as EvalConfig::threads.
        config.threads = t;
    }
    // --faults wins over FORUMCAST_FAULTS; either arms the injector
    // for the whole process.
    let plan = match faults {
        Some(plan) => Some(plan),
        None => FaultPlan::from_env().unwrap_or_else(|e| {
            eprintln!("invalid {}: {e}", forumcast_resilience::FAULTS_ENV);
            std::process::exit(2);
        }),
    };
    if let Some(plan) = plan {
        if !plan.is_empty() {
            plan.arm_for_process();
        }
    }
    BinOptions {
        config,
        json,
        scale,
        resume,
    }
}

/// Prints the standard run header.
pub fn header(experiment: &str, opts: &BinOptions) {
    println!("=== forumcast :: {experiment} (scale: {}) ===", opts.scale);
    println!(
        "dataset: {} users, {} questions, K = {}",
        opts.config.synth.num_users,
        opts.config.synth.num_questions,
        opts.config.extractor.lda.num_topics
    );
    println!();
}

/// Serializes a report as JSON when `--json` was passed.
pub fn maybe_json<T: serde::Serialize>(opts: &BinOptions, report: &T) {
    if opts.json {
        println!("\n--- json ---");
        println!(
            "{}",
            serde_json::to_string_pretty(report).expect("report serializes")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_are_standard_scale() {
        // parse_args reads process args; here we just check defaults
        // used by the binaries compile-time contract.
        let opts = BinOptions {
            config: EvalConfig::standard(),
            json: false,
            scale: "standard".into(),
            resume: None,
        };
        assert_eq!(opts.config.repeats, 1);
        assert!(!opts.json);
    }
}
