//! Regenerates **Figure 4**: CDFs of selected features (panels a–f),
//! printed as CSV series suitable for replotting.

use forumcast_bench::{finish, header, maybe_json, parse_args, root_span, status};
use forumcast_eval::experiments::fig4;

fn main() {
    let opts = parse_args();
    let root = root_span("fig4");
    header("Figure 4 — feature CDFs", &opts);
    let (dataset, _) = opts.config.synth.generate().preprocess();
    let report = fig4::run(&dataset, &opts.config.extractor, 50, 2000);
    status!("{report}");

    status!("\nCSV series (label,value,fraction):");
    let dump = |series: &fig4::CdfSeries| {
        for (v, f) in &series.points {
            status!("{},{v:.6},{f:.3}", series.label);
        }
    };
    dump(&report.answers_provided);
    for s in report
        .response_time_by_activity
        .iter()
        .chain(&report.votes_by_activity)
        .chain(&report.topic_similarities)
        .chain(&report.question_lengths)
        .chain(&report.centralities)
    {
        dump(s);
    }
    maybe_json(&opts, &report);
    drop(root);
    finish(&opts);
}
