//! Regenerates **Figure 5**: percent change of each task metric as
//! the number of LDA topics `K` varies (paper: virtually no effect on
//! `r̂`, small on `â`, larger on `v̂`; default K = 8).

use forumcast_bench::{finish, header, maybe_json, parse_args, root_span, status};
use forumcast_eval::experiments::fig5;

fn main() {
    let opts = parse_args();
    let root = root_span("fig5");
    header("Figure 5 — topic-count sensitivity", &opts);
    let (ks, reference): (Vec<usize>, usize) = if opts.scale == "quick" {
        (vec![2, 4, 8], 4)
    } else {
        (vec![4, 8, 12, 15, 20], 8)
    };
    let report = fig5::run_with(
        &opts.config,
        &ks,
        reference,
        opts.resume.as_deref(),
        &opts.cv_options(),
    )
    .unwrap_or_else(|e| {
        eprintln!("fig5 failed: {e}");
        std::process::exit(1);
    });
    status!("{report}");
    // Shape check: r̂ should move least across K.
    let spread = |f: &dyn Fn(&fig5::Fig5Point) -> f64| -> f64 {
        let vals: Vec<f64> = report.points.iter().map(f).collect();
        vals.iter().cloned().fold(f64::MIN, f64::max)
            - vals.iter().cloned().fold(f64::MAX, f64::min)
    };
    let spread_r = spread(&|p: &fig5::Fig5Point| p.pct_change.2);
    let spread_v = spread(&|p: &fig5::Fig5Point| p.pct_change.1);
    status!("shape check: |Δr| spread {spread_r:.2}% vs |Δv| spread {spread_v:.2}% (paper: r least sensitive)");
    maybe_json(&opts, &report);
    drop(root);
    finish(&opts);
}
