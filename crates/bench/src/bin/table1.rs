//! Regenerates **Table I**: AUC/RMSE of the three baselines vs. our
//! three models over stratified cross-validation.
//!
//! Paper reference values (Stack Overflow, 20K threads):
//! `a`: 0.699 → 0.860 (+23.0%); `v`: 1.554 → 1.213 (+21.9%);
//! `r`: 34.247 → 26.353 (+22.8%).

use forumcast_bench::{finish, header, maybe_json, parse_args, root_span, status};
use forumcast_eval::experiments::table1;

fn main() {
    let opts = parse_args();
    let root = root_span("table1");
    header("Table I — prediction performance vs. baselines", &opts);
    let report = table1::run_with(&opts.config, opts.resume.as_deref(), &opts.cv_options())
        .unwrap_or_else(|e| {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        });
    status!("{report}");
    status!(
        "paper shape check: all three improvements positive? {}",
        if report.rows.iter().all(|r| r.improvement_pct > 0.0) {
            "YES"
        } else {
            "NO"
        }
    );
    maybe_json(&opts, &report);
    drop(root);
    finish(&opts);
}
