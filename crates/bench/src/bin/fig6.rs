//! Regenerates **Figure 6**: leave-one-feature-out importance for the
//! vote (`v̂`) and timing (`r̂`) tasks. The paper's headline: removing
//! `r_u` costs the timing task ~48% RMSE; removing `v_q` costs the
//! vote task ~8.6%; user features matter for timing, question features
//! for votes; social features matter for both.

use forumcast_bench::{finish, header, maybe_json, parse_args, root_span, status};
use forumcast_eval::experiments::fig6;

fn main() {
    let opts = parse_args();
    let root = root_span("fig6");
    header("Figure 6 — leave-one-feature-out importance", &opts);
    let (dataset, _) = opts.config.synth.generate().preprocess();
    let data = forumcast_eval::ExperimentData::build(&dataset, &opts.config);
    let report = fig6::run_on_with(
        &data,
        &opts.config,
        opts.resume.as_deref(),
        &opts.cv_options(),
    )
    .unwrap_or_else(|e| {
        eprintln!("fig6 failed: {e}");
        std::process::exit(1);
    });
    status!("{report}");
    status!("top-5 for timing (r̂):");
    for (f, pct) in report.ranked(true).into_iter().take(5) {
        status!("  {:<8} {:+.2}%", f.symbol(), pct);
    }
    status!("top-5 for votes (v̂):");
    for (f, pct) in report.ranked(false).into_iter().take(5) {
        status!("  {:<8} {:+.2}%", f.symbol(), pct);
    }
    maybe_json(&opts, &report);
    drop(root);
    finish(&opts);
}
