//! Ablation bench: measures the design choices DESIGN.md calls out,
//! one line per ablation.
//!
//! * timing-noise model of the generator (log-normal vs. pure point
//!   process);
//! * the timing predictor's prediction formula (paper expectation vs.
//!   rare-event conditional vs. exact first-event) and isotonic
//!   calibration;
//! * constant vs. learned decay `ω` (the paper evaluated both);
//! * signed-log feature compression for our models;
//! * the Poisson baseline's feature scaling (raw, per the paper, vs.
//!   z-scored — stronger than the paper's).

use forumcast_bench::{finish, header, parse_args, root_span, status};
use forumcast_core::{DecayMode, PredictionMode, TimingConfig};
use forumcast_eval::experiments::run_cv;
use forumcast_eval::fold::mean_std;
use forumcast_eval::ExperimentData;

fn main() {
    let opts = parse_args();
    let root = root_span("ablations");
    header("Ablations — design-choice deltas", &opts);
    let base_cfg = opts.config.clone();
    let (dataset, _) = base_cfg.synth.generate().preprocess();
    let data = ExperimentData::build(&dataset, &base_cfg);

    let run = |label: &str, cfg: &forumcast_eval::EvalConfig| {
        let outcomes = run_cv(&data, cfg, None, false);
        let auc = mean_std(&outcomes.iter().map(|o| o.auc).collect::<Vec<_>>()).0;
        let rv = mean_std(&outcomes.iter().map(|o| o.rmse_votes).collect::<Vec<_>>()).0;
        let rt = mean_std(&outcomes.iter().map(|o| o.rmse_time).collect::<Vec<_>>()).0;
        status!("{label:<34} AUC {auc:.3}  RMSE(v) {rv:.3}  RMSE(r) {rt:.3}");
    };

    run("full model (defaults)", &base_cfg);

    let mut cfg = base_cfg.clone();
    cfg.train.signed_log = false;
    run("- signed-log compression", &cfg);

    let mut cfg = base_cfg.clone();
    cfg.train.timing.calibrate = false;
    run("- isotonic calibration (timing)", &cfg);

    let mut cfg = base_cfg.clone();
    cfg.train.timing.prediction = PredictionMode::Conditional;
    run("timing: rare-event conditional", &cfg);

    let mut cfg = base_cfg.clone();
    cfg.train.timing = TimingConfig {
        decay: DecayMode::Constant(0.05),
        prediction: PredictionMode::PaperExpectation,
        ..base_cfg.train.timing.clone()
    };
    run("timing: const ω + paper formula", &cfg);

    let mut cfg = base_cfg.clone();
    cfg.train.timing.max_survival_weight = f64::INFINITY;
    run("timing: unclamped survival wts", &cfg);

    status!();
    status!("(generator ablation) timing noise = pure point process (paper's own model family):");
    let mut synth_pp = base_cfg.clone();
    synth_pp.synth.timing_noise = forumcast_synth::config::TimingNoise::PointProcess;
    let (ds_pp, _) = synth_pp.synth.generate().preprocess();
    let data_pp = ExperimentData::build(&ds_pp, &synth_pp);
    let outcomes = run_cv(&data_pp, &synth_pp, None, true);
    let rt = mean_std(&outcomes.iter().map(|o| o.rmse_time).collect::<Vec<_>>()).0;
    let rt_b = mean_std(
        &outcomes
            .iter()
            .map(|o| o.rmse_time_baseline)
            .collect::<Vec<_>>(),
    )
    .0;
    status!(
        "point-process noise: ours RMSE(r) {rt:.3} vs poisson {rt_b:.3} — with CV≈1 \
         delay noise, no regressor separates from the mean (see EXPERIMENTS.md)"
    );
    drop(root);
    finish(&opts);
}
