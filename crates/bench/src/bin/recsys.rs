//! Demonstrates the **Section V** question-recommendation system:
//! trains the three predictors, then routes a stream of new questions
//! through the LP of Equation (2), sweeping the quality/timing
//! tradeoff λ and showing the load constraints in action.

use forumcast_bench::{finish, header, parse_args, root_span, status};
use forumcast_core::{ResponsePredictor, TrainingSet};
use forumcast_data::UserId;
use forumcast_eval::ExperimentData;
use forumcast_recsys::{Candidate, QuestionRouter, RouterConfig};

fn main() {
    let opts = parse_args();
    let root = root_span("recsys");
    header("Section V — question routing demo", &opts);
    let cfg = &opts.config;
    let (dataset, _) = cfg.synth.generate().preprocess();
    let data = ExperimentData::build(&dataset, cfg);

    // Train on the earlier 80% of target questions.
    let cut = (data.num_targets as f64 * 0.8) as usize;
    let mut ts = TrainingSet::new(data.dim);
    let mut pos_by_target = vec![Vec::new(); data.num_targets];
    for p in &data.positives {
        pos_by_target[p.target].push(p);
    }
    let mut neg_by_target = vec![Vec::new(); data.num_targets];
    for n in &data.negatives {
        neg_by_target[n.target].push(n);
    }
    for t in 0..cut {
        for p in &pos_by_target[t] {
            ts.push_answer(p.x.clone(), true);
            ts.push_vote(p.x.clone(), p.votes);
        }
        for n in &neg_by_target[t] {
            ts.push_answer(n.x.clone(), false);
        }
        if !pos_by_target[t].is_empty() {
            ts.push_timing_thread(
                pos_by_target[t]
                    .iter()
                    .map(|p| (p.x.clone(), p.response_time))
                    .collect(),
                neg_by_target[t].iter().map(|n| n.x.clone()).collect(),
                data.windows[t],
                data.num_users,
            );
        }
    }
    status!("training joint predictor on {cut} threads …");
    let model = ResponsePredictor::train(&ts, &cfg.train);

    // Route the remaining questions for several λ settings.
    for &lambda in &[0.0, 0.5, 2.0] {
        let mut router = QuestionRouter::new(RouterConfig {
            epsilon: 0.4,
            default_capacity: 1.0,
            load_window: 24.0,
        });
        let mut routed = 0usize;
        let mut infeasible = 0usize;
        let mut sum_votes = 0.0;
        let mut sum_time = 0.0;
        let mut now = 0.0;
        for t in cut..data.num_targets {
            now += 0.5; // questions arrive every half hour
            let candidates: Vec<Candidate> = pos_by_target[t]
                .iter()
                .map(|p| (p.user, &p.x))
                .chain(neg_by_target[t].iter().map(|n| (n.user, &n.x)))
                .map(|(user, x)| {
                    let (a, v, r) = model.predict(x, data.windows[t]);
                    Candidate {
                        user,
                        answer_prob: a,
                        votes: v,
                        response_time: r,
                    }
                })
                .collect();
            match router.recommend(now, lambda, &candidates) {
                Some(rec) => {
                    routed += 1;
                    if let Some(top) = rec.ranking().first().copied() {
                        let c = candidates.iter().find(|c| c.user == top).expect("ranked");
                        sum_votes += c.votes;
                        sum_time += c.response_time;
                        router.record_answer(now, top);
                    }
                }
                None => infeasible += 1,
            }
        }
        let n = routed.max(1) as f64;
        status!(
            "λ = {lambda:>3.1}: routed {routed} questions ({infeasible} infeasible under load caps); \
             top pick averages: v̂ = {:.2}, r̂ = {:.2} h",
            sum_votes / n,
            sum_time / n
        );
    }
    status!();
    status!("shape check: larger λ should lower the average r̂ of the top pick");

    // Load-constraint illustration on one question.
    let mut router = QuestionRouter::new(RouterConfig::default());
    let demo: Vec<Candidate> = (0..3)
        .map(|i| Candidate {
            user: UserId(i),
            answer_prob: 0.9,
            votes: 3.0 - i as f64,
            response_time: 1.0 + i as f64,
        })
        .collect();
    let first = router.recommend(0.0, 0.0, &demo).expect("feasible");
    status!(
        "\nload demo: first recommendation ranks {:?}",
        first.ranking()
    );
    router.record_answer(0.1, first.ranking()[0]);
    let second = router.recommend(0.2, 0.0, &demo).expect("feasible");
    status!(
        "after u{} answers (cap 1/24h), next ranks {:?}",
        first.ranking()[0].0,
        second.ranking()
    );
    drop(root);
    finish(&opts);
}
