//! Runs the simulated **A/B test** of the Section-V recommender —
//! the paper's proposed future-work evaluation ("comparing the net
//! votes and response times observed in a group with the system in
//! use to one with it not", Section VI) — across a sweep of λ.

use forumcast_abtest::{run, AbTestConfig};
use forumcast_bench::{finish, header, parse_args, root_span, status};

fn main() {
    let opts = parse_args();
    let root = root_span("abtest");
    header("Section VI — simulated A/B test of the recommender", &opts);
    let base = if opts.scale == "quick" {
        AbTestConfig::quick()
    } else {
        AbTestConfig::standard()
    };
    for &lambda in &[0.0, 0.5, 2.0] {
        let report = run(&base.clone().with_lambda(lambda));
        status!("{report}");
    }
    status!("shape check: higher λ should reduce the treatment arm's mean delay;");
    status!("λ = 0 should maximize its mean votes.");
    drop(root);
    finish(&opts);
}
