//! Regenerates **Figure 7**: RMSE with one feature *group* excluded,
//! as the history window grows (`F(q) = D_{25−i} … D_{25}`,
//! evaluation on days 25–30).

use forumcast_bench::{finish, header, maybe_json, parse_args, root_span, status};
use forumcast_eval::experiments::fig7;

fn main() {
    let opts = parse_args();
    let root = root_span("fig7");
    header("Figure 7 — feature groups × history length", &opts);
    let windows: Vec<usize> = if opts.scale == "quick" {
        vec![10, 24]
    } else {
        vec![5, 10, 15, 20, 24]
    };
    let report = fig7::run_with(
        &opts.config,
        &windows,
        25,
        opts.resume.as_deref(),
        &opts.cv_options(),
    )
    .unwrap_or_else(|e| {
        eprintln!("fig7 failed: {e}");
        std::process::exit(1);
    });
    status!("{report}");
    for &w in &windows {
        status!(
            "most important at {w}d: votes → {:?}, timing → {:?}",
            report.most_important(w, false),
            report.most_important(w, true)
        );
    }
    maybe_json(&opts, &report);
    drop(root);
    finish(&opts);
}
