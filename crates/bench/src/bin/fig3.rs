//! Regenerates **Figure 3**: net votes vs. response time for every
//! answered `(u, q)` pair — the paper finds *no correlation*.

use forumcast_bench::{finish, header, maybe_json, parse_args, root_span, status};
use forumcast_eval::experiments::fig3;

fn main() {
    let opts = parse_args();
    let root = root_span("fig3");
    header("Figure 3 — votes vs. response time", &opts);
    let (dataset, _) = opts.config.synth.generate().preprocess();
    let report = fig3::run(&dataset, 1000);
    status!("{report}");
    status!(
        "scatter sample (hours, votes) — first 20 of {}:",
        report.scatter.len()
    );
    for (r, v) in report.scatter.iter().take(20) {
        status!("  {r:>10.3} {v:>6.1}");
    }
    maybe_json(&opts, &report);
    drop(root);
    finish(&opts);
}
