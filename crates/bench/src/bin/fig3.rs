//! Regenerates **Figure 3**: net votes vs. response time for every
//! answered `(u, q)` pair — the paper finds *no correlation*.

use forumcast_bench::{header, maybe_json, parse_args};
use forumcast_eval::experiments::fig3;

fn main() {
    let opts = parse_args();
    header("Figure 3 — votes vs. response time", &opts);
    let (dataset, _) = opts.config.synth.generate().preprocess();
    let report = fig3::run(&dataset, 1000);
    println!("{report}");
    println!(
        "scatter sample (hours, votes) — first 20 of {}:",
        report.scatter.len()
    );
    for (r, v) in report.scatter.iter().take(20) {
        println!("  {r:>10.3} {v:>6.1}");
    }
    maybe_json(&opts, &report);
}
