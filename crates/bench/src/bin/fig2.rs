//! Regenerates **Figure 2**: the structure of the two SLN graphs
//! (`G_QA` and `G_D`) over the full dataset — average degrees (paper:
//! 2.6 and 3.7), disconnectedness, and the degree distribution behind
//! the visualization.

use forumcast_bench::{finish, header, parse_args, root_span, status};
use forumcast_graph::{dense_graph, qa_graph, GraphStats};

fn main() {
    let opts = parse_args();
    let root = root_span("fig2");
    header("Figure 2 — SLN graph structure", &opts);
    if opts.resume.is_some() {
        status!("note: --resume ignored — figure 2 is single-pass graph statistics");
    }
    let (dataset, report) = opts.config.synth.generate().preprocess();
    status!("preprocessing: {report}");
    status!("dataset: {}", dataset.stats());
    status!();

    let qa = qa_graph(dataset.num_users(), dataset.threads());
    let dense = dense_graph(dataset.num_users(), dataset.threads());
    for (name, g) in [("G_QA", &qa), ("G_D", &dense)] {
        let s = GraphStats::compute(g);
        status!("{name}:");
        status!("  nodes = {}, edges = {}", s.num_nodes, s.num_edges);
        status!(
            "  average degree = {:.2} (paper: 2.6 QA / 3.7 D), variance = {:.2}, max = {}",
            s.average_degree,
            s.degree_variance,
            s.max_degree
        );
        status!(
            "  components = {} (largest {}, isolated {}) → disconnected: {}",
            s.num_components,
            s.largest_component,
            s.num_isolated,
            s.is_disconnected()
        );
        // Degree histogram (log-spaced buckets) — the data behind the
        // ring-layout visualization.
        let mut buckets = [0usize; 8];
        for u in 0..s.num_nodes as u32 {
            let d = g.degree(u);
            let b = if d == 0 {
                0
            } else {
                (d.ilog2() as usize + 1).min(7)
            };
            buckets[b] += 1;
        }
        status!("  degree histogram [0, 1, 2-3, 4-7, 8-15, 16-31, 32-63, 64+]:");
        status!("    {buckets:?}");
        status!();
    }
    status!(
        "shape check: avg degree G_D > G_QA? {}",
        if dense.average_degree() > qa.average_degree() {
            "YES"
        } else {
            "NO"
        }
    );
    drop(root);
    finish(&opts);
}
