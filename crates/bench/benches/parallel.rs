//! Criterion bench: 1-thread vs N-thread runs of the evaluation hot
//! paths behind the `forumcast-par` scoped-thread layer — exact
//! betweenness on a forum-scale graph and `(u, q)` feature-vector
//! extraction. On a ≥4-core machine the N-thread variants should run
//! ≥2× faster than the 1-thread baselines; outputs are
//! bitwise-identical either way (asserted by the workspace tests).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use forumcast_eval::{EvalConfig, ExperimentData};
use forumcast_graph::{betweenness_with_threads, closeness_with_threads, qa_graph, Graph};
use forumcast_synth::SynthConfig;

/// A connected synthetic graph of about 2K nodes: ring + chords, the
/// same shape as the determinism tests but bench-sized.
fn dense_ring(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(2 * n);
    for i in 0..n as u32 {
        edges.push((i, (i + 1) % n as u32));
        if i % 3 == 0 {
            edges.push((i, (i * 7 + 5) % n as u32));
        }
    }
    Graph::from_edges(n, &edges)
}

fn thread_counts() -> Vec<usize> {
    let auto = forumcast_par::configured_threads();
    if auto > 1 {
        vec![1, auto]
    } else {
        vec![1]
    }
}

fn bench_parallel_graph(c: &mut Criterion) {
    let g = dense_ring(2000);
    let ds = SynthConfig::small().generate();
    let (ds, _) = ds.preprocess();
    let qa = qa_graph(ds.num_users(), ds.threads());

    let mut group = c.benchmark_group("parallel/graph");
    group.sample_size(10);
    for &t in &thread_counts() {
        group.bench_with_input(BenchmarkId::new("betweenness_ring2k", t), &t, |b, &t| {
            b.iter(|| betweenness_with_threads(&g, t))
        });
        group.bench_with_input(BenchmarkId::new("betweenness_qa", t), &t, |b, &t| {
            b.iter(|| betweenness_with_threads(&qa, t))
        });
        group.bench_with_input(BenchmarkId::new("closeness_ring2k", t), &t, |b, &t| {
            b.iter(|| closeness_with_threads(&g, t))
        });
    }
    group.finish();
}

fn bench_parallel_features(c: &mut Criterion) {
    let cfg = EvalConfig::quick();
    let (ds, _) = cfg.synth.generate().preprocess();

    let mut group = c.benchmark_group("parallel/features");
    group.sample_size(10);
    for &t in &thread_counts() {
        group.bench_with_input(BenchmarkId::new("experiment_build", t), &t, |b, &t| {
            let mut cfg = cfg.clone();
            cfg.threads = t;
            b.iter(|| ExperimentData::build(&ds, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_graph, bench_parallel_features);
criterion_main!(benches);
