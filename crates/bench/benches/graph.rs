//! Criterion bench: SLN graph construction and centrality
//! algorithms (exact vs. pivot-sampled Brandes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use forumcast_graph::{
    betweenness, betweenness_sampled, bfs_distances, closeness, dense_graph, qa_graph, BfsScratch,
    GraphStats,
};
use forumcast_synth::SynthConfig;

fn bench_graph(c: &mut Criterion) {
    let ds = SynthConfig::medium().generate();
    let (ds, _) = ds.preprocess();
    let mut group = c.benchmark_group("graph");
    group.sample_size(10);

    group.bench_function("build_qa", |b| {
        b.iter(|| qa_graph(ds.num_users(), ds.threads()))
    });
    group.bench_function("build_dense", |b| {
        b.iter(|| dense_graph(ds.num_users(), ds.threads()))
    });

    let g = qa_graph(ds.num_users(), ds.threads());
    group.bench_function("closeness", |b| b.iter(|| closeness(&g)));
    group.bench_function("betweenness_exact", |b| b.iter(|| betweenness(&g)));
    for &pivots in &[64usize, 256] {
        group.bench_with_input(
            BenchmarkId::new("betweenness_sampled", pivots),
            &pivots,
            |b, &p| b.iter(|| betweenness_sampled(&g, p, 7)),
        );
    }
    group.bench_function("stats", |b| b.iter(|| GraphStats::compute(&g)));

    // Scratch reuse vs per-call allocation: the one-shot bfs_distances
    // allocates fresh buffers per source; the pooled scratch is what
    // the centrality kernels run on.
    let sources: Vec<u32> = (0..g.num_nodes() as u32).step_by(97).collect();
    group.bench_function("bfs_alloc_per_source", |b| {
        b.iter(|| {
            for &s in &sources {
                let d = bfs_distances(&g, s);
                criterion::black_box(d);
            }
        })
    });
    group.bench_function("bfs_scratch_reuse", |b| {
        let mut scratch = BfsScratch::new();
        b.iter(|| {
            for &s in &sources {
                scratch.run(&g, s);
                criterion::black_box(scratch.visited().len());
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
