//! Criterion bench: SLN graph construction and centrality
//! algorithms (exact vs. pivot-sampled Brandes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use forumcast_graph::{
    betweenness, betweenness_sampled, closeness, dense_graph, qa_graph, GraphStats,
};
use forumcast_synth::SynthConfig;

fn bench_graph(c: &mut Criterion) {
    let ds = SynthConfig::medium().generate();
    let (ds, _) = ds.preprocess();
    let mut group = c.benchmark_group("graph");
    group.sample_size(10);

    group.bench_function("build_qa", |b| {
        b.iter(|| qa_graph(ds.num_users(), ds.threads()))
    });
    group.bench_function("build_dense", |b| {
        b.iter(|| dense_graph(ds.num_users(), ds.threads()))
    });

    let g = qa_graph(ds.num_users(), ds.threads());
    group.bench_function("closeness", |b| b.iter(|| closeness(&g)));
    group.bench_function("betweenness_exact", |b| b.iter(|| betweenness(&g)));
    for &pivots in &[64usize, 256] {
        group.bench_with_input(
            BenchmarkId::new("betweenness_sampled", pivots),
            &pivots,
            |b, &p| b.iter(|| betweenness_sampled(&g, p, 7)),
        );
    }
    group.bench_function("stats", |b| b.iter(|| GraphStats::compute(&g)));
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
