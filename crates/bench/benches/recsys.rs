//! Criterion bench: the routing LP — greedy exact solver vs. the
//! general simplex — and the stateful router.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use forumcast_data::UserId;
use forumcast_recsys::{
    maximize, solve_routing, Candidate, QuestionRouter, RouterConfig, RoutingProblem,
};

fn random_problem(n: usize, seed: u64) -> RoutingProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    RoutingProblem::new(
        (0..n).map(|_| rng.gen_range(-2.0..5.0)).collect(),
        (0..n).map(|_| rng.gen_range(0.05..0.8)).collect(),
    )
}

fn bench_recsys(c: &mut Criterion) {
    let mut group = c.benchmark_group("recsys");
    for &n in &[10usize, 100, 1000] {
        let p = random_problem(n, n as u64);
        group.bench_with_input(BenchmarkId::new("greedy", n), &p, |b, p| {
            b.iter(|| solve_routing(p))
        });
    }
    // Simplex only at small sizes (dense tableau).
    for &n in &[10usize, 50] {
        let p = random_problem(n, n as u64);
        let mut a = vec![vec![1.0; n], vec![-1.0; n]];
        let mut b_vec = vec![1.0, -1.0];
        for i in 0..n {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            a.push(row);
            b_vec.push(p.capacities[i]);
        }
        group.bench_with_input(BenchmarkId::new("simplex", n), &n, |bch, _| {
            bch.iter(|| maximize(&p.scores, &a, &b_vec))
        });
    }

    let candidates: Vec<Candidate> = (0..500)
        .map(|i| Candidate {
            user: UserId(i),
            answer_prob: 0.3 + (i % 7) as f64 / 10.0,
            votes: (i % 11) as f64 - 3.0,
            response_time: 0.5 + (i % 5) as f64,
        })
        .collect();
    group.bench_function("router_recommend_500", |b| {
        let mut router = QuestionRouter::new(RouterConfig::default());
        b.iter(|| router.recommend(1.0, 0.5, &candidates))
    });
    group.finish();
}

criterion_group!(benches, bench_recsys);
criterion_main!(benches);
