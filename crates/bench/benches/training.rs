//! Criterion bench: training epochs of the three predictors and the
//! point-process likelihood evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use forumcast_core::{
    AnswerConfig, AnswerPredictor, ThreadObservation, TimingConfig, TimingPredictor, VoteConfig,
    VotePredictor,
};
use forumcast_ml::{Activation, Adam, LayerSpec, Mlp, Trainer};

fn synthetic_samples(n: usize, dim: usize) -> (Vec<Vec<f64>>, Vec<bool>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(1);
    let xs: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let labels: Vec<bool> = xs.iter().map(|x| x[0] > 0.0).collect();
    let votes: Vec<f64> = xs.iter().map(|x| 3.0 * x[1] + x[2]).collect();
    (xs, labels, votes)
}

fn timing_threads(n: usize, dim: usize) -> Vec<ThreadObservation> {
    let mut rng = StdRng::seed_from_u64(2);
    (0..n)
        .map(|_| {
            let x: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let delay = (1.0 + x[0]).abs() * 5.0 + 0.5;
            ThreadObservation {
                answers: vec![(x, delay)],
                non_answerers: vec![
                    (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                    (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect(),
                ],
                window: 100.0,
                population: 500,
            }
        })
        .collect()
}

fn bench_training(c: &mut Criterion) {
    let dim = 34; // 18 + 2K at the paper's K = 8
    let (xs, labels, votes) = synthetic_samples(500, dim);
    let threads = timing_threads(200, dim);
    let mut group = c.benchmark_group("training");
    group.sample_size(10);

    group.bench_function("answer_logistic_10_epochs", |b| {
        let cfg = AnswerConfig {
            epochs: 10,
            ..AnswerConfig::default()
        };
        b.iter(|| AnswerPredictor::train(&xs, &labels, &cfg));
    });

    group.bench_function("votes_mlp_10_epochs", |b| {
        let cfg = VoteConfig {
            epochs: 10,
            ..VoteConfig::default()
        };
        b.iter(|| VotePredictor::train(&xs, &votes, &cfg));
    });

    group.bench_function("timing_pp_5_epochs", |b| {
        let cfg = TimingConfig {
            epochs: 5,
            ..TimingConfig::fast()
        };
        b.iter(|| TimingPredictor::train(&threads, &cfg));
    });

    // Batch-parallel Trainer kernels: batches span several CHUNK_SIZE
    // chunks so the fixed-order reduction engages; 1-vs-2 workers
    // quantifies the fan-out on this machine (results are bitwise
    // identical either way — only wall time may differ).
    for workers in [1usize, 2] {
        group.bench_function(&format!("mlp_batch256_{workers}_threads"), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let mut mlp = Mlp::new(
                    &[
                        LayerSpec::new(dim, 16, Activation::Tanh),
                        LayerSpec::new(16, 1, Activation::Identity),
                    ],
                    &mut rng,
                );
                let mut trainer = Trainer::new(Adam::new(0.01), 256).with_threads(workers);
                for _ in 0..5 {
                    trainer.epoch(&mut mlp, &xs, &votes, &mut rng);
                }
                mlp.params()[0]
            });
        });
    }

    let model = TimingPredictor::train(
        &threads,
        &TimingConfig {
            epochs: 3,
            ..TimingConfig::fast()
        },
    );
    group.bench_function("timing_log_likelihood", |b| {
        b.iter(|| model.log_likelihood(&threads))
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
