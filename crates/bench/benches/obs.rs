//! Criterion bench: overhead of the observability probes.
//!
//! The disarmed collector is the case that matters — every span,
//! counter, and metric probe sits on a pipeline hot path and must
//! cost no more than an atomic load when no `--trace`/`--metrics`
//! run is collecting. The armed variants quantify what a collecting
//! run pays, and an instrumented LDA sweep compares the end-to-end
//! cost on a real workload both ways.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use forumcast_synth::SynthConfig;
use forumcast_text::{tokenize_filtered, Corpus, Vocabulary};
use forumcast_topics::{LdaConfig, LdaModel};

fn bench_probe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/probes");

    // Disarmed: the production default. Each probe should reduce to
    // one relaxed-ish atomic load and an immediate return.
    group.bench_function("span_disarmed", |b| {
        b.iter(|| {
            let _s = forumcast_obs::span("bench.noop");
        })
    });
    group.bench_function("counter_disarmed", |b| {
        b.iter(|| forumcast_obs::counter_add("bench.noop", 1))
    });
    group.bench_function("metric_disarmed", |b| {
        b.iter(|| forumcast_obs::metric("bench.noop", 0, 1.0))
    });

    // Armed: what a collecting run pays per probe. Drain between
    // measurements so the event log cannot grow without bound.
    let guard = forumcast_obs::arm();
    group.bench_function("span_armed", |b| {
        b.iter(|| {
            let _s = forumcast_obs::span("bench.noop");
        });
        forumcast_obs::drain();
    });
    group.bench_function("counter_armed", |b| {
        b.iter(|| forumcast_obs::counter_add("bench.noop", 1));
        forumcast_obs::drain();
    });
    drop(guard);
    group.finish();
}

/// Reference reimplementation of the pre-sharding record path: every
/// armed probe funnels through one process-wide mutex, and the
/// per-`(path, unit)` sequence number is assigned eagerly under that
/// lock via a HashMap keyed by a clone of the path. Kept inline here
/// (the production collector no longer has this path) so the
/// contended-emit bench always compares the shipped sharded design
/// against the design it replaced with the same per-probe work:
/// label formatting, two clock reads per span, and the locked
/// seq-map + event push.
struct MutexCollector {
    start: Instant,
    state: Mutex<MutexState>,
}

#[derive(Default)]
struct MutexState {
    #[allow(clippy::type_complexity)]
    events: Vec<(String, u64, u64, u64, u64)>,
    seq: HashMap<(String, u64), u64>,
    counters: HashMap<String, u64>,
}

impl MutexCollector {
    fn new() -> Self {
        MutexCollector {
            start: Instant::now(),
            state: Mutex::new(MutexState::default()),
        }
    }

    fn task_span(&self, name: &str, unit: u64) {
        let path = format!("{name}#{unit}");
        let at = Instant::now();
        let dur_ns = at.elapsed().as_nanos() as u64;
        let ts_ns = at.saturating_duration_since(self.start).as_nanos() as u64;
        let mut s = self.state.lock().unwrap();
        let slot = s.seq.entry((path.clone(), unit)).or_insert(0);
        let seq = *slot;
        *slot += 1;
        s.events.push((path, unit, seq, ts_ns, dur_ns));
    }

    fn counter_add(&self, name: &str, delta: u64) {
        let mut s = self.state.lock().unwrap();
        match s.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                s.counters.insert(name.to_string(), delta);
            }
        }
    }

    fn drain(&self) -> usize {
        // The pre-sharding drain also sorted into canonical
        // (path, unit, seq) order — keep that cost in the reference so
        // the per-iteration work matches the real collector's drain.
        let mut s = self.state.lock().unwrap();
        let mut events = std::mem::take(&mut s.events);
        let counter_map = std::mem::take(&mut s.counters);
        s.seq.clear();
        drop(s);
        events.sort_by(|a, b| (a.0.as_str(), a.1, a.2).cmp(&(b.0.as_str(), b.1, b.2)));
        let mut counters: Vec<(String, u64)> = counter_map.into_iter().collect();
        counters.sort();
        events.len() + counters.len()
    }
}

fn bench_contended_emit(c: &mut Criterion) {
    // Armed emit under multi-thread contention: `global_mutex` is the
    // [`MutexCollector`] reference (the pre-sharding design),
    // `sharded` is the real collector, where an armed emit takes only
    // the emitting thread's own uncontended shard lock. One iteration
    // spawns the worker threads, emits EMITS span+counter pairs per
    // thread, and drains — both variants push the same probe volume
    // and reclaim memory at the same point.
    const EMITS: usize = 4_000;

    let mut group = c.benchmark_group("obs/contended_emit");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("global_mutex", threads),
            &threads,
            |b, &t| {
                let collector = MutexCollector::new();
                b.iter(|| {
                    std::thread::scope(|s| {
                        for unit in 0..t as u64 {
                            let collector = &collector;
                            s.spawn(move || {
                                for _ in 0..EMITS {
                                    collector.task_span("bench.contended", unit);
                                    collector.counter_add("bench.contended.hits", 1);
                                }
                            });
                        }
                    });
                    collector.drain()
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("sharded", threads), &threads, |b, &t| {
            let guard = forumcast_obs::arm();
            b.iter(|| {
                std::thread::scope(|s| {
                    for unit in 0..t as u64 {
                        s.spawn(move || {
                            let _shard = forumcast_obs::worker_shard();
                            for _ in 0..EMITS {
                                let _s = forumcast_obs::task_span("bench.contended", unit);
                                forumcast_obs::counter_add("bench.contended.hits", 1);
                            }
                        });
                    }
                });
                forumcast_obs::drain()
            });
            drop(guard);
        });
    }
    group.finish();
}

fn bench_instrumented_workload(c: &mut Criterion) {
    // A real instrumented hot path: LDA training fires the sweep
    // counter once per Gibbs sweep. Disarmed vs armed shows the
    // end-to-end overhead on actual work.
    let ds = SynthConfig::small().generate();
    let docs: Vec<Vec<String>> = ds
        .threads()
        .iter()
        .flat_map(|t| t.posts().map(|p| tokenize_filtered(&p.body.text)))
        .collect();
    let mut vocab = Vocabulary::new();
    for d in &docs {
        vocab.observe(d);
    }
    vocab.prune(2, 0.6);
    let corpus = Corpus::from_token_docs(&docs, &vocab);
    let cfg = LdaConfig::new(5).with_iterations(20);

    let mut group = c.benchmark_group("obs/lda_train");
    group.sample_size(10);
    group.bench_function("disarmed", |b| b.iter(|| LdaModel::train(&corpus, &cfg)));
    group.bench_with_input(BenchmarkId::new("armed", "trace"), &(), |b, ()| {
        let _guard = forumcast_obs::arm();
        b.iter(|| LdaModel::train(&corpus, &cfg));
        forumcast_obs::drain();
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_probe_overhead,
    bench_contended_emit,
    bench_instrumented_workload
);
criterion_main!(benches);
