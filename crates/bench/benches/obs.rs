//! Criterion bench: overhead of the observability probes.
//!
//! The disarmed collector is the case that matters — every span,
//! counter, and metric probe sits on a pipeline hot path and must
//! cost no more than an atomic load when no `--trace`/`--metrics`
//! run is collecting. The armed variants quantify what a collecting
//! run pays, and an instrumented LDA sweep compares the end-to-end
//! cost on a real workload both ways.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use forumcast_synth::SynthConfig;
use forumcast_text::{tokenize_filtered, Corpus, Vocabulary};
use forumcast_topics::{LdaConfig, LdaModel};

fn bench_probe_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/probes");

    // Disarmed: the production default. Each probe should reduce to
    // one relaxed-ish atomic load and an immediate return.
    group.bench_function("span_disarmed", |b| {
        b.iter(|| {
            let _s = forumcast_obs::span("bench.noop");
        })
    });
    group.bench_function("counter_disarmed", |b| {
        b.iter(|| forumcast_obs::counter_add("bench.noop", 1))
    });
    group.bench_function("metric_disarmed", |b| {
        b.iter(|| forumcast_obs::metric("bench.noop", 0, 1.0))
    });

    // Armed: what a collecting run pays per probe. Drain between
    // measurements so the event log cannot grow without bound.
    let guard = forumcast_obs::arm();
    group.bench_function("span_armed", |b| {
        b.iter(|| {
            let _s = forumcast_obs::span("bench.noop");
        });
        forumcast_obs::drain();
    });
    group.bench_function("counter_armed", |b| {
        b.iter(|| forumcast_obs::counter_add("bench.noop", 1));
        forumcast_obs::drain();
    });
    drop(guard);
    group.finish();
}

fn bench_instrumented_workload(c: &mut Criterion) {
    // A real instrumented hot path: LDA training fires the sweep
    // counter once per Gibbs sweep. Disarmed vs armed shows the
    // end-to-end overhead on actual work.
    let ds = SynthConfig::small().generate();
    let docs: Vec<Vec<String>> = ds
        .threads()
        .iter()
        .flat_map(|t| t.posts().map(|p| tokenize_filtered(&p.body.text)))
        .collect();
    let mut vocab = Vocabulary::new();
    for d in &docs {
        vocab.observe(d);
    }
    vocab.prune(2, 0.6);
    let corpus = Corpus::from_token_docs(&docs, &vocab);
    let cfg = LdaConfig::new(5).with_iterations(20);

    let mut group = c.benchmark_group("obs/lda_train");
    group.sample_size(10);
    group.bench_function("disarmed", |b| b.iter(|| LdaModel::train(&corpus, &cfg)));
    group.bench_with_input(BenchmarkId::new("armed", "trace"), &(), |b, ()| {
        let _guard = forumcast_obs::arm();
        b.iter(|| LdaModel::train(&corpus, &cfg));
        forumcast_obs::drain();
    });
    group.finish();
}

criterion_group!(benches, bench_probe_overhead, bench_instrumented_workload);
criterion_main!(benches);
