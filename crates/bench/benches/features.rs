//! Criterion bench: fitting the feature extractor and assembling
//! `x_{u,q}` vectors.

use criterion::{criterion_group, criterion_main, Criterion};

use forumcast_data::UserId;
use forumcast_features::{ExtractorConfig, FeatureExtractor};
use forumcast_synth::SynthConfig;

fn bench_features(c: &mut Criterion) {
    let (ds, _) = SynthConfig::small().generate().preprocess();
    let history = &ds.threads()[..ds.num_questions() - 20];
    let mut group = c.benchmark_group("features");
    group.sample_size(10);

    group.bench_function("fit_extractor_small", |b| {
        b.iter(|| FeatureExtractor::fit(history, ds.num_users(), &ExtractorConfig::fast()))
    });

    let extractor = FeatureExtractor::fit(history, ds.num_users(), &ExtractorConfig::fast());
    let target = &ds.threads()[ds.num_questions() - 10];
    group.bench_function("question_topics", |b| {
        b.iter(|| extractor.question_topics(target))
    });
    let d_q = extractor.question_topics(target);
    group.bench_function("feature_vector", |b| {
        let mut u = 0u32;
        b.iter(|| {
            u = (u + 1) % ds.num_users();
            extractor.features(UserId(u), target, &d_q)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
