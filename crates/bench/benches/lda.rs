//! Criterion bench: collapsed-Gibbs LDA throughput (training and
//! fold-in inference) on synthetic forum text.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use forumcast_synth::SynthConfig;
use forumcast_text::{tokenize_filtered, Corpus, Vocabulary};
use forumcast_topics::{LdaConfig, LdaModel, LdaSampler};

fn corpus_from_synth(num_questions: usize) -> Corpus {
    let cfg = SynthConfig {
        num_questions,
        ..SynthConfig::small()
    };
    let ds = cfg.generate();
    let docs: Vec<Vec<String>> = ds
        .threads()
        .iter()
        .flat_map(|t| t.posts().map(|p| tokenize_filtered(&p.body.text)))
        .collect();
    let mut vocab = Vocabulary::new();
    for d in &docs {
        vocab.observe(d);
    }
    vocab.prune(2, 0.6);
    Corpus::from_token_docs(&docs, &vocab)
}

fn bench_lda(c: &mut Criterion) {
    let mut group = c.benchmark_group("lda");
    group.sample_size(10);
    for &(sampler, tag) in &[(LdaSampler::Dense, "dense"), (LdaSampler::Sparse, "sparse")] {
        for &n in &[100usize, 300] {
            let corpus = corpus_from_synth(n);
            group.bench_with_input(
                BenchmarkId::new(format!("train_k8_20sweeps_{tag}"), n),
                &corpus,
                |b, corpus| {
                    let cfg = LdaConfig::new(8).with_iterations(20).with_sampler(sampler);
                    b.iter(|| LdaModel::train(corpus, &cfg));
                },
            );
        }
        let corpus = corpus_from_synth(300);
        let model = LdaModel::train(
            &corpus,
            &LdaConfig::new(8).with_iterations(30).with_sampler(sampler),
        );
        group.bench_function(&format!("infer_one_doc_{tag}"), |b| {
            let doc = corpus.doc(0).clone();
            b.iter(|| model.infer(&doc, 7));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lda);
criterion_main!(benches);
