//! WAL corruption sweep: the log's "no silent garbage" contract.
//!
//! Exhaustive part: for a representative multi-segment log, *every*
//! single-byte truncation of every segment must heal — after
//! [`Wal::repair`] the directory scans clean and every surviving
//! entry carries exactly the bytes that were appended. Sampled
//! single-bit flips must additionally be *detected*: a flip is never
//! absorbed silently; it either tears the tail (valid-prefix
//! truncation) or quarantines the segment.
//!
//! Property part: the same holds for random log sizes under random
//! truncation points and bit flips, and a healed log always accepts
//! appends again from the recovery's reported resume point.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use forumcast_wal::{scan_dir, FsyncPolicy, Wal, WalConfig, WalRecovery};

const FP: &str = "sweep-fp";

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("forumcast-walsweep-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sweep_cfg() -> WalConfig {
    let mut cfg = WalConfig::new(FP);
    // Small segments so a ~24-event log spans several files and the
    // sweep exercises quarantine of a middle segment, not just tails.
    cfg.segment_bytes = 160;
    cfg.fsync = FsyncPolicy::OnRotate;
    cfg
}

/// The canonical payload for event `id` — recomputable at check time
/// so a mutated byte anywhere shows up as an inequality.
fn payload_for(id: u64) -> Vec<u8> {
    format!("event-{id}-{}", "x".repeat((id % 7) as usize)).into_bytes()
}

/// Builds an `n`-event log and returns its segment images
/// (file name, bytes) in index order.
fn build_images(tag: &str, n: u64) -> Vec<(String, Vec<u8>)> {
    let dir = tmp_dir(tag);
    let (mut wal, _) = Wal::open(&dir, sweep_cfg()).expect("open fresh log");
    for id in 0..n {
        wal.append(id, &payload_for(id)).expect("append");
    }
    wal.finish().expect("final sync");
    let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("read log dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    paths.sort();
    let images = paths
        .iter()
        .map(|p| {
            (
                p.file_name().unwrap().to_str().unwrap().to_string(),
                fs::read(p).expect("read segment"),
            )
        })
        .collect();
    fs::remove_dir_all(&dir).ok();
    images
}

/// Materializes the log into `scratch` with segment `seg` mutated.
fn write_mutated(
    images: &[(String, Vec<u8>)],
    scratch: &Path,
    seg: usize,
    mutate: impl Fn(&mut Vec<u8>),
) {
    let _ = fs::remove_dir_all(scratch);
    fs::create_dir_all(scratch).expect("create scratch");
    for (i, (name, bytes)) in images.iter().enumerate() {
        let mut b = bytes.clone();
        if i == seg {
            mutate(&mut b);
        }
        fs::write(scratch.join(name), &b).expect("write segment");
    }
}

/// Repairs the directory and asserts the heal is honest: the healed
/// log scans damage-free and every surviving entry is byte-identical
/// to what was appended. Returns the recovery for detection checks.
fn repair_and_check(dir: &Path, n: u64, what: &str) -> WalRecovery {
    let recovery = Wal::repair(dir).unwrap_or_else(|e| panic!("{what}: repair failed: {e}"));
    let segs = scan_dir(dir).unwrap_or_else(|e| panic!("{what}: scan failed: {e}"));
    let mut seen = 0u64;
    for seg in &segs {
        assert!(
            seg.damage.is_none(),
            "{what}: damage survived repair: {:?}",
            seg.damage
        );
        for entry in &seg.entries {
            let id = entry
                .id
                .unwrap_or_else(|| panic!("{what}: surviving frame lost its id"));
            assert!(id < n, "{what}: surviving id {id} was never written");
            assert_eq!(
                entry.payload,
                payload_for(id),
                "{what}: payload bytes mutated in place"
            );
            seen += 1;
        }
    }
    assert_eq!(
        seen, recovery.events,
        "{what}: recovery event count disagrees with a fresh scan"
    );
    recovery
}

#[test]
fn every_single_byte_truncation_heals_to_a_valid_prefix() {
    const N: u64 = 24;
    let images = build_images("trunc", N);
    assert!(images.len() >= 3, "sweep needs a multi-segment log");
    let scratch = tmp_dir("trunc-scratch");
    for seg in 0..images.len() {
        for cut in 0..images[seg].1.len() {
            write_mutated(&images, &scratch, seg, |b| b.truncate(cut));
            repair_and_check(&scratch, N, &format!("segment {seg} truncated at {cut}"));
        }
    }
    fs::remove_dir_all(&scratch).ok();
}

#[test]
fn sampled_bit_flips_are_torn_or_quarantined_never_absorbed() {
    const N: u64 = 24;
    let images = build_images("flip", N);
    let scratch = tmp_dir("flip-scratch");
    for seg in 0..images.len() {
        // Every 7th bit: dense enough to cross magic, header, CRCs,
        // length varints, and payloads in every segment.
        for flip in (0..images[seg].1.len() * 8).step_by(7) {
            write_mutated(&images, &scratch, seg, |b| b[flip / 8] ^= 1 << (flip % 8));
            let what = format!("segment {seg} flip bit {flip}");
            let recovery = repair_and_check(&scratch, N, &what);
            assert!(
                recovery.torn + recovery.quarantined >= 1,
                "{what}: a flipped bit was absorbed silently"
            );
        }
    }
    fs::remove_dir_all(&scratch).ok();
}

#[test]
fn a_healed_log_accepts_appends_from_the_resume_point() {
    const N: u64 = 24;
    let images = build_images("resume", N);
    let scratch = tmp_dir("resume-scratch");
    // Tear the tail of the *last* segment mid-frame.
    let last = images.len() - 1;
    let cut = images[last].1.len() - 3;
    write_mutated(&images, &scratch, last, |b| b.truncate(cut));

    let (mut wal, recovery) = Wal::open(&scratch, sweep_cfg()).expect("open heals the tear");
    assert_eq!(recovery.torn, 1);
    assert!(recovery.next_missing_id < N);
    for id in recovery.next_missing_id..N {
        wal.append(id, &payload_for(id)).expect("resumed append");
    }
    wal.finish().expect("final sync");
    let recovery = repair_and_check(&scratch, N, "after resumed appends");
    assert_eq!(recovery.next_missing_id, N, "every id restored");
    fs::remove_dir_all(&scratch).ok();
}

proptest! {
    #[test]
    fn random_truncations_heal(
        n in 1u64..40,
        seg_seed in 0usize..usize::MAX,
        cut_seed in 0usize..usize::MAX,
    ) {
        let images = build_images("prop-trunc", n);
        let scratch = tmp_dir("prop-trunc-scratch");
        let seg = seg_seed % images.len();
        let cut = cut_seed % images[seg].1.len().max(1);
        write_mutated(&images, &scratch, seg, |b| b.truncate(cut));
        repair_and_check(&scratch, n, &format!("n={n} segment {seg} truncated at {cut}"));
        fs::remove_dir_all(&scratch).ok();
    }

    #[test]
    fn random_bit_flips_are_detected(
        n in 1u64..40,
        seg_seed in 0usize..usize::MAX,
        flip_seed in 0usize..usize::MAX,
    ) {
        let images = build_images("prop-flip", n);
        let scratch = tmp_dir("prop-flip-scratch");
        let seg = seg_seed % images.len();
        let flip = flip_seed % (images[seg].1.len() * 8);
        write_mutated(&images, &scratch, seg, |b| b[flip / 8] ^= 1 << (flip % 8));
        let what = format!("n={n} segment {seg} flip bit {flip}");
        let recovery = repair_and_check(&scratch, n, &what);
        prop_assert!(
            recovery.torn + recovery.quarantined >= 1,
            "{}: a flipped bit was absorbed silently", what
        );
        fs::remove_dir_all(&scratch).ok();
    }
}
