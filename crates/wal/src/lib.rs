//! Append-only, segment-rotated write-ahead log for forum events.
//!
//! The durability substrate under the online serving layer (ROADMAP
//! item 1): producers append CRC-checked frames — each carrying a
//! monotonically increasing event id — to fingerprinted segment
//! files, and consumers replay the log back into a deterministic
//! `ForumState` (see `forumcast-data`). Segments reuse the exact
//! `forumcast-store` container byte layout (`FCSTBIN1` magic, CRC'd
//! header, length-prefixed CRC'd frames), so the store's battle-
//! tested [`scan`] parser is also the WAL's recovery parser.
//!
//! # Layout
//!
//! A log is a directory of `wal-XXXXXXXX.seg` files (zero-padded
//! segment index). Each segment is `header_bytes(fingerprint)`
//! followed by zero or more `frame_bytes(varint(event id) ++ event
//! payload)` appends. When the active segment would exceed
//! [`WalConfig::segment_bytes`], it is synced and a fresh segment is
//! created via tmp + rename + parent-dir fsync (counted
//! `wal.segment.rotated`).
//!
//! # Durability policy
//!
//! [`FsyncPolicy`] picks the append-path fsync cadence: `Always`
//! (sync every append — strongest, slowest), `EveryN(n)` (sync every
//! n appends — bounded loss window), `OnRotate` (sync only at
//! segment boundaries and on [`Wal::finish`] — fastest). Transient
//! sync failures are healed by the bounded deterministic retry from
//! `forumcast-resilience` (counted `ckpt.save.retries`).
//!
//! # Crash recovery
//!
//! [`Wal::open`] (and [`Wal::repair`]) heal a log in place:
//!
//! * stale `*.tmp` rotation leftovers are reclaimed
//!   (`wal.tmp.reclaimed`);
//! * a torn tail — the signature of a mid-append crash — truncates
//!   the segment back to its valid frame prefix (`wal.frame.torn`);
//! * a segment with a mid-file CRC mismatch or unreadable header is
//!   moved aside to the first free `<segment>.corrupt[.N]` slot
//!   (`wal.segment.quarantined`), never silently read;
//! * a fingerprint that does not match the opener's is a typed
//!   error — replaying someone else's log is refused, not healed.
//!
//! Recovery reports the surviving event-id range and the first
//! *missing* id, which is the resume point for an idempotent
//! producer: re-delivering everything from `next_missing_id` onward
//! converges, because the replay layer skips duplicate ids.
//!
//! # Fault sites
//!
//! Appends probe `wal-torn-append` (unit = event id): the frame is
//! cut mid-write, the append errors, and the log refuses further
//! appends until reopened — exactly the contract a kill-storm
//! exercises for real. Delivery-level faults (`wal-dup-deliver`,
//! `wal-reorder`) live in the ingest driver in `forumcast-data`.

use std::collections::BTreeSet;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::time::Instant;

use forumcast_resilience::fault::{self, FaultSite};
use forumcast_store::{frame_bytes, header_bytes, scan, varint, FrameIssue, StoreError};

/// Segment file name prefix (`wal-00000000.seg`, `wal-00000001.seg`, …).
pub const SEGMENT_PREFIX: &str = "wal-";
/// Segment file name suffix.
pub const SEGMENT_SUFFIX: &str = ".seg";
/// Default rotation threshold: segments rotate once they would
/// exceed this many bytes.
pub const DEFAULT_SEGMENT_BYTES: u64 = 64 * 1024;

/// When the append path fsyncs the active segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every append: no completed append is ever lost.
    Always,
    /// Sync every `n` appends: at most `n - 1` trailing appends are
    /// exposed to a crash.
    EveryN(u64),
    /// Sync only at rotation boundaries and on [`Wal::finish`]: the
    /// whole active segment tail is the loss window.
    OnRotate,
}

impl Default for FsyncPolicy {
    fn default() -> Self {
        FsyncPolicy::EveryN(64)
    }
}

impl FsyncPolicy {
    /// Parses a `--fsync` value: `always`, `rotate` (or `on-rotate`),
    /// or a positive integer `n` meaning every-n.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "rotate" | "on-rotate" => Ok(FsyncPolicy::OnRotate),
            other => match other.parse::<u64>() {
                Ok(n) if n >= 1 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!(
                    "unknown fsync policy `{other}` (expected `always`, `rotate`, \
                     or a positive every-n integer)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => f.write_str("always"),
            FsyncPolicy::EveryN(n) => write!(f, "every-{n}"),
            FsyncPolicy::OnRotate => f.write_str("rotate"),
        }
    }
}

/// Configuration for opening (or creating) a log.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Run fingerprint written into every segment header; opening a
    /// log whose segments carry a different fingerprint is refused.
    pub fingerprint: String,
    /// Rotation threshold in bytes.
    pub segment_bytes: u64,
    /// Append-path fsync cadence.
    pub fsync: FsyncPolicy,
}

impl WalConfig {
    /// A config with the default segment size and fsync policy.
    pub fn new(fingerprint: impl Into<String>) -> Self {
        WalConfig {
            fingerprint: fingerprint.into(),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            fsync: FsyncPolicy::default(),
        }
    }
}

/// Everything that can go wrong appending to or recovering a log.
#[derive(Debug)]
pub enum WalError {
    /// Filesystem failure.
    Io {
        /// Offending path.
        path: String,
        /// Underlying error message.
        message: String,
    },
    /// The log on disk belongs to a differently-configured run.
    FingerprintMismatch {
        /// Segment whose header disagreed.
        path: String,
        /// The opener's fingerprint.
        expected: String,
        /// The fingerprint found on disk.
        found: String,
    },
    /// An injected (or real) torn append: the frame was cut
    /// mid-write. The log refuses further appends; reopen it to
    /// truncate the torn tail and retry.
    TornAppend {
        /// Segment carrying the torn tail.
        path: String,
        /// Event id whose append tore.
        id: u64,
    },
    /// An earlier torn append poisoned this handle; reopen the log.
    Poisoned,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io { path, message } => write!(f, "wal I/O error at {path}: {message}"),
            WalError::FingerprintMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "wal fingerprint mismatch at {path}: opener expects `{expected}` \
                 but the segment carries `{found}`"
            ),
            WalError::TornAppend { path, id } => write!(
                f,
                "torn append of event {id} at {path}; reopen the log to recover"
            ),
            WalError::Poisoned => {
                f.write_str("wal handle poisoned by an earlier torn append; reopen the log")
            }
        }
    }
}

impl std::error::Error for WalError {}

fn io_err(path: &Path, e: io::Error) -> WalError {
    WalError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Path of segment `index` under `dir`.
pub fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("{SEGMENT_PREFIX}{index:08}{SEGMENT_SUFFIX}"))
}

fn segment_index(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

/// All `wal-*.seg` files under `dir`, sorted by segment index.
fn segment_paths(dir: &Path) -> Result<Vec<(u64, PathBuf)>, WalError> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let path = entry.path();
        if let Some(index) = segment_index(&path) {
            out.push((index, path));
        }
    }
    out.sort();
    Ok(out)
}

/// Serializes one WAL entry into frame-payload bytes: the event id as
/// a varint, then the opaque event payload.
pub fn encode_entry(id: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(payload.len() + 10);
    varint::write_u64(&mut buf, id);
    buf.extend_from_slice(payload);
    buf
}

/// Splits a frame payload back into `(event id, event payload)`.
/// `None` when the id varint is malformed — the replay layer counts
/// such frames as poison instead of aborting.
pub fn decode_entry(frame: &[u8]) -> Option<(u64, &[u8])> {
    let (id, used) = varint::read_u64(frame).ok()?;
    Some((id, &frame[used..]))
}

/// One parsed WAL frame: the event id (if its varint parsed) and the
/// event payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// Event id, `None` when the frame payload is malformed.
    pub id: Option<u64>,
    /// Event payload (for a malformed id, the whole frame payload).
    pub payload: Vec<u8>,
}

fn entry_of(frame: &[u8]) -> WalEntry {
    match decode_entry(frame) {
        Some((id, payload)) => WalEntry {
            id: Some(id),
            payload: payload.to_vec(),
        },
        None => WalEntry {
            id: None,
            payload: frame.to_vec(),
        },
    }
}

/// One segment as seen by the *pure* [`scan_dir`]: valid-prefix
/// entries plus a description of any damage. Nothing on disk is
/// modified.
#[derive(Debug, Clone)]
pub struct WalSegment {
    /// Segment file path.
    pub path: PathBuf,
    /// Header fingerprint, `None` when the header is unreadable.
    pub fingerprint: Option<String>,
    /// Frames of the valid prefix.
    pub entries: Vec<WalEntry>,
    /// Human-readable damage description, `None` when clean.
    pub damage: Option<String>,
    /// True when the damage is a recoverable torn tail (repair
    /// truncates); false damage means quarantine.
    pub torn: bool,
}

/// Reads every segment without mutating anything — the basis of the
/// `wal inspect`/`wal verify`/`wal replay` CLI verbs. Torn or
/// CRC-damaged segments surface their valid prefix plus a damage
/// description; header-level damage yields an empty entry list.
///
/// # Errors
///
/// Returns [`WalError::Io`] when the directory or a segment cannot
/// be read at all.
pub fn scan_dir(dir: &Path) -> Result<Vec<WalSegment>, WalError> {
    let mut out = Vec::new();
    for (_, path) in segment_paths(dir)? {
        let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
        match scan(&bytes, &path) {
            Ok(report) => {
                let (damage, torn) = match &report.issue {
                    None => (None, false),
                    Some(FrameIssue::Torn { offset }) => {
                        (Some(format!("torn tail at byte {offset}")), true)
                    }
                    Some(FrameIssue::CrcMismatch { frame, offset }) => (
                        Some(format!("CRC mismatch in frame {frame} at byte {offset}")),
                        false,
                    ),
                };
                out.push(WalSegment {
                    path,
                    fingerprint: Some(report.fingerprint),
                    entries: report.frames.iter().map(|f| entry_of(f)).collect(),
                    damage,
                    torn,
                });
            }
            Err(e) => out.push(WalSegment {
                path,
                fingerprint: None,
                entries: Vec::new(),
                damage: Some(e.to_string()),
                torn: false,
            }),
        }
    }
    Ok(out)
}

/// What [`Wal::open`] / [`Wal::repair`] found and healed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WalRecovery {
    /// Segments surviving recovery.
    pub segments: usize,
    /// Frames surviving across all live segments.
    pub events: u64,
    /// Segments whose torn tail was truncated to the valid prefix.
    pub torn: usize,
    /// Segments quarantined for CRC/header damage.
    pub quarantined: usize,
    /// Stale `.tmp` rotation leftovers removed.
    pub tmp_reclaimed: usize,
    /// Largest surviving event id.
    pub max_id: Option<u64>,
    /// First event id *not* present in the log — the resume point
    /// for an idempotent producer.
    pub next_missing_id: u64,
}

impl std::fmt::Display for WalRecovery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} segment(s), {} event(s), next missing id {}",
            self.segments, self.events, self.next_missing_id
        )?;
        if self.torn > 0 {
            write!(f, "; truncated {} torn tail(s)", self.torn)?;
        }
        if self.quarantined > 0 {
            write!(f, "; quarantined {} segment(s)", self.quarantined)?;
        }
        if self.tmp_reclaimed > 0 {
            write!(f, "; reclaimed {} tmp file(s)", self.tmp_reclaimed)?;
        }
        Ok(())
    }
}

struct LiveSegment {
    index: u64,
    path: PathBuf,
    len: u64,
}

/// The mutating recovery pass shared by [`Wal::open`] and
/// [`Wal::repair`].
fn recover_dir(
    dir: &Path,
    expected_fingerprint: Option<&str>,
) -> Result<(Vec<LiveSegment>, WalRecovery), WalError> {
    fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let mut recovery = WalRecovery::default();

    // Reclaim rotation leftovers first: a crash between tmp write and
    // rename leaves `<segment>.tmp`, which must never shadow a later
    // segment of the same index.
    let entries = fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let path = entry.path();
        let is_tmp = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with(SEGMENT_PREFIX) && n.ends_with(".tmp"));
        if is_tmp {
            fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            forumcast_obs::counter_add("wal.tmp.reclaimed", 1);
            recovery.tmp_reclaimed += 1;
        }
    }

    let mut live = Vec::new();
    let mut ids = BTreeSet::new();
    for (index, path) in segment_paths(dir)? {
        let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
        let report = match scan(&bytes, &path) {
            Ok(report) => report,
            Err(StoreError::Io { path: p, source }) => {
                return Err(WalError::Io {
                    path: p.display().to_string(),
                    message: source.to_string(),
                })
            }
            Err(_) => {
                // Header-level damage: the segment cannot be trusted
                // at all. Move it aside (first free `.corrupt[.N]`
                // slot) and keep going — later segments may be fine.
                forumcast_store::quarantine(&path);
                forumcast_obs::counter_add("wal.segment.quarantined", 1);
                recovery.quarantined += 1;
                continue;
            }
        };
        if let Some(expected) = expected_fingerprint {
            if report.fingerprint != expected {
                return Err(WalError::FingerprintMismatch {
                    path: path.display().to_string(),
                    expected: expected.to_string(),
                    found: report.fingerprint,
                });
            }
        }
        let len = match &report.issue {
            Some(FrameIssue::Torn { .. }) => {
                // Mid-append crash: cut the torn tail, keep the
                // valid prefix.
                let file = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| io_err(&path, e))?;
                file.set_len(report.valid_end as u64)
                    .map_err(|e| io_err(&path, e))?;
                file.sync_data().map_err(|e| io_err(&path, e))?;
                forumcast_obs::counter_add("wal.frame.torn", 1);
                recovery.torn += 1;
                report.valid_end as u64
            }
            Some(FrameIssue::CrcMismatch { .. }) => {
                // Bit rot inside the segment: quarantine the whole
                // file — a prefix that passed CRC is *recoverable*,
                // but trusting it silently would hide the damage, so
                // the operator gets the evidence instead.
                forumcast_store::quarantine(&path);
                forumcast_obs::counter_add("wal.segment.quarantined", 1);
                recovery.quarantined += 1;
                continue;
            }
            None => report.file_len as u64,
        };
        for frame in &report.frames {
            if let Some((id, _)) = decode_entry(frame) {
                ids.insert(id);
            }
        }
        recovery.events += report.frames.len() as u64;
        live.push(LiveSegment { index, path, len });
    }

    recovery.segments = live.len();
    recovery.max_id = ids.iter().next_back().copied();
    let mut next_missing = 0u64;
    for id in &ids {
        match (*id).cmp(&next_missing) {
            std::cmp::Ordering::Greater => break,
            std::cmp::Ordering::Equal => next_missing += 1,
            std::cmp::Ordering::Less => {}
        }
    }
    recovery.next_missing_id = next_missing;
    Ok((live, recovery))
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Creates segment `index` durably: header into `<path>.tmp`, fsync,
/// rename, parent-dir fsync — then reopens it for appending.
fn create_segment(dir: &Path, index: u64, fingerprint: &str) -> Result<(PathBuf, File), WalError> {
    let path = segment_path(dir, index);
    let mut tmp = path.clone().into_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let header = header_bytes(fingerprint);
    forumcast_resilience::save_with_retry(|_| {
        let mut file = File::create(&tmp)?;
        file.write_all(&header)?;
        file.sync_all()?;
        fs::rename(&tmp, &path)?;
        sync_dir(dir)
    })
    .map_err(|e| io_err(&path, e))?;
    let file = OpenOptions::new()
        .append(true)
        .open(&path)
        .map_err(|e| io_err(&path, e))?;
    Ok((path, file))
}

/// An open, appendable write-ahead log.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    cfg: WalConfig,
    file: File,
    seg_path: PathBuf,
    seg_index: u64,
    seg_len: u64,
    seg_frames: u64,
    unsynced: u64,
    syncs: u64,
    poisoned: bool,
}

impl Wal {
    /// Opens (creating if needed) the log under `dir`, running crash
    /// recovery first: tmp reclaim, torn-tail truncation, segment
    /// quarantine. Appending resumes into the last live segment (or
    /// a fresh one when it is already at the rotation threshold).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on filesystem failure;
    /// [`WalError::FingerprintMismatch`] when the log on disk belongs
    /// to a different run configuration.
    pub fn open(dir: &Path, cfg: WalConfig) -> Result<(Self, WalRecovery), WalError> {
        let (live, recovery) = recover_dir(dir, Some(&cfg.fingerprint))?;
        let (seg_index, seg_path, seg_len, seg_frames, file) = match live.last() {
            Some(seg) if seg.len < cfg.segment_bytes => {
                let file = OpenOptions::new()
                    .append(true)
                    .open(&seg.path)
                    .map_err(|e| io_err(&seg.path, e))?;
                // Frame count of the resumed segment is not tracked
                // per segment by recovery; it only gates "rotate
                // before first frame", and a resumed segment always
                // has its header, so treating it as non-empty is
                // correct.
                (seg.index, seg.path.clone(), seg.len, 1, file)
            }
            Some(seg) => {
                let index = seg.index + 1;
                let (path, file) = create_segment(dir, index, &cfg.fingerprint)?;
                let len = header_bytes(&cfg.fingerprint).len() as u64;
                (index, path, len, 0, file)
            }
            None => {
                let (path, file) = create_segment(dir, 0, &cfg.fingerprint)?;
                let len = header_bytes(&cfg.fingerprint).len() as u64;
                (0, path, len, 0, file)
            }
        };
        Ok((
            Wal {
                dir: dir.to_path_buf(),
                cfg,
                file,
                seg_path,
                seg_index,
                seg_len,
                seg_frames,
                unsynced: 0,
                syncs: 0,
                poisoned: false,
            },
            recovery,
        ))
    }

    /// Runs crash recovery without opening for appends and without
    /// needing the fingerprint — the `wal repair` verb.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on filesystem failure.
    pub fn repair(dir: &Path) -> Result<WalRecovery, WalError> {
        recover_dir(dir, None).map(|(_, recovery)| recovery)
    }

    /// The segment currently receiving appends.
    pub fn active_segment(&self) -> &Path {
        &self.seg_path
    }

    /// Appends one event frame. Ids are chosen by the caller and
    /// expected to be monotonically increasing; duplicates and
    /// bounded reorderings are legal (the replay layer heals them)
    /// so delivery-fault injection can write them deliberately.
    ///
    /// Probes the `wal-torn-append` fault site at unit = `id`: the
    /// frame is cut mid-write, the error names the segment, and the
    /// handle refuses further appends until the log is reopened
    /// (recovery truncates the torn tail).
    ///
    /// # Errors
    ///
    /// [`WalError::Io`], [`WalError::TornAppend`], or
    /// [`WalError::Poisoned`].
    pub fn append(&mut self, id: u64, payload: &[u8]) -> Result<(), WalError> {
        if self.poisoned {
            return Err(WalError::Poisoned);
        }
        let started = Instant::now();
        let frame = frame_bytes(&encode_entry(id, payload));
        if self.seg_frames > 0 && self.seg_len + frame.len() as u64 > self.cfg.segment_bytes {
            self.rotate()?;
        }
        if fault::fires(FaultSite::WalTornAppend, id) {
            // Half a frame, durably on disk: exactly what a power cut
            // mid-append leaves behind.
            let cut = (frame.len() / 2).max(1);
            self.file
                .write_all(&frame[..cut])
                .map_err(|e| io_err(&self.seg_path, e))?;
            let _ = self.file.sync_data();
            self.poisoned = true;
            return Err(WalError::TornAppend {
                path: self.seg_path.display().to_string(),
                id,
            });
        }
        self.file
            .write_all(&frame)
            .map_err(|e| io_err(&self.seg_path, e))?;
        self.seg_len += frame.len() as u64;
        self.seg_frames += 1;
        self.unsynced += 1;
        match self.cfg.fsync {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) => {
                if self.unsynced >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::OnRotate => {}
        }
        forumcast_obs::counter_add("wal.appends", 1);
        forumcast_obs::observe("wal.append_ms", started.elapsed().as_millis() as u64);
        Ok(())
    }

    /// Syncs the active segment to disk, healing transient fsync
    /// failures with the bounded deterministic retry (counted
    /// `ckpt.save.retries`). Probes the `fsync-fail` fault site at
    /// unit = sync ordinal.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] once the bounded retry is exhausted.
    pub fn sync(&mut self) -> Result<(), WalError> {
        let unit = self.syncs;
        self.syncs += 1;
        let file = &self.file;
        forumcast_resilience::save_with_retry(|_| {
            fault::io_point(FaultSite::FsyncFail, unit)?;
            file.sync_data()
        })
        .map_err(|e| io_err(&self.seg_path, e))?;
        self.unsynced = 0;
        Ok(())
    }

    fn rotate(&mut self) -> Result<(), WalError> {
        // The rotated-away segment is fully durable before the new
        // one exists, whatever the fsync policy.
        self.sync()?;
        let index = self.seg_index + 1;
        let (path, file) = create_segment(&self.dir, index, &self.cfg.fingerprint)?;
        self.seg_index = index;
        self.seg_path = path;
        self.seg_len = header_bytes(&self.cfg.fingerprint).len() as u64;
        self.seg_frames = 0;
        self.file = file;
        forumcast_obs::counter_add("wal.segment.rotated", 1);
        Ok(())
    }

    /// Final sync; call before dropping when the tail matters under
    /// `EveryN`/`OnRotate` policies.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] once the bounded retry is exhausted.
    pub fn finish(mut self) -> Result<(), WalError> {
        self.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forumcast_resilience::FaultPlan;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("forumcast-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(fp: &str) -> WalConfig {
        WalConfig::new(fp)
    }

    fn append_n(wal: &mut Wal, from: u64, n: u64) {
        for id in from..from + n {
            wal.append(id, format!("event-{id}").as_bytes()).unwrap();
        }
    }

    fn all_ids(dir: &Path) -> Vec<u64> {
        scan_dir(dir)
            .unwrap()
            .iter()
            .flat_map(|s| s.entries.iter().filter_map(|e| e.id))
            .collect()
    }

    #[test]
    fn append_reopen_replay_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let (mut wal, rec) = Wal::open(&dir, cfg("fp")).unwrap();
        assert_eq!(rec, WalRecovery::default());
        append_n(&mut wal, 0, 5);
        wal.finish().unwrap();

        let (mut wal, rec) = Wal::open(&dir, cfg("fp")).unwrap();
        assert_eq!(rec.events, 5);
        assert_eq!(rec.max_id, Some(4));
        assert_eq!(rec.next_missing_id, 5);
        append_n(&mut wal, 5, 3);
        wal.finish().unwrap();

        assert_eq!(all_ids(&dir), (0..8).collect::<Vec<_>>());
        let segs = scan_dir(&dir).unwrap();
        assert!(segs.iter().all(|s| s.damage.is_none()));
        assert_eq!(
            segs[0].entries[3].payload,
            b"event-3".to_vec(),
            "payload bytes roundtrip"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_rotate_at_the_size_threshold() {
        let dir = tmp_dir("rotate");
        let mut c = cfg("fp");
        c.segment_bytes = 256;
        let (mut wal, _) = Wal::open(&dir, c).unwrap();
        append_n(&mut wal, 0, 40);
        wal.finish().unwrap();
        let segs = scan_dir(&dir).unwrap();
        assert!(segs.len() > 1, "40 appends at 256B/segment must rotate");
        for seg in &segs {
            assert!(seg.damage.is_none());
            assert_eq!(seg.fingerprint.as_deref(), Some("fp"));
            let len = fs::metadata(&seg.path).unwrap().len();
            assert!(len <= 256 + 64, "segment {len}B far exceeds the threshold");
        }
        assert_eq!(all_ids(&dir), (0..40).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp_dir("torn");
        let (mut wal, _) = Wal::open(&dir, cfg("fp")).unwrap();
        append_n(&mut wal, 0, 4);
        wal.finish().unwrap();
        // Simulate a mid-append crash: half a frame at the tail.
        let seg = segment_path(&dir, 0);
        let mut bytes = fs::read(&seg).unwrap();
        let torn_frame = frame_bytes(&encode_entry(4, b"event-4"));
        bytes.extend_from_slice(&torn_frame[..torn_frame.len() / 2]);
        fs::write(&seg, &bytes).unwrap();

        let (_, rec) = Wal::open(&dir, cfg("fp")).unwrap();
        assert_eq!(rec.torn, 1);
        assert_eq!(rec.events, 4);
        assert_eq!(rec.next_missing_id, 4);
        let segs = scan_dir(&dir).unwrap();
        assert!(segs[0].damage.is_none(), "recovery truncated the tear");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crc_damage_quarantines_the_segment_without_clobbering() {
        let dir = tmp_dir("quarantine");
        let mut c = cfg("fp");
        c.segment_bytes = 256;
        let (mut wal, _) = Wal::open(&dir, c.clone()).unwrap();
        append_n(&mut wal, 0, 40);
        wal.finish().unwrap();
        let segs: Vec<PathBuf> = scan_dir(&dir)
            .unwrap()
            .iter()
            .map(|s| s.path.clone())
            .collect();
        assert!(segs.len() >= 2);

        // Flip a payload bit mid-segment (not the tail) in segment 0.
        let victim = &segs[0];
        let mut bytes = fs::read(victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        fs::write(victim, &bytes).unwrap();
        let (_, rec) = Wal::open(&dir, c.clone()).unwrap();
        assert_eq!(rec.quarantined, 1);
        let corpse = PathBuf::from(format!("{}.corrupt", victim.display()));
        assert!(corpse.exists(), "damaged segment moved aside");
        assert!(!victim.exists());

        // Later segments survive; the missing ids show up as the gap.
        assert!(rec.events > 0);
        assert_eq!(rec.next_missing_id, 0, "segment 0's ids are gone");

        // A second quarantine of a recreated segment 0 must land in
        // the next free slot, preserving the first corpse.
        fs::write(victim, b"not a segment at all").unwrap();
        let (_, rec) = Wal::open(&dir, c).unwrap();
        assert_eq!(rec.quarantined, 1);
        assert!(corpse.exists());
        assert!(PathBuf::from(format!("{}.corrupt.1", victim.display())).exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tmp_rotation_leftovers_are_reclaimed() {
        let dir = tmp_dir("tmp");
        fs::create_dir_all(&dir).unwrap();
        let stale = dir.join("wal-00000007.seg.tmp");
        fs::write(&stale, b"half a header").unwrap();
        let (_, rec) = Wal::open(&dir, cfg("fp")).unwrap();
        assert_eq!(rec.tmp_reclaimed, 1);
        assert!(!stale.exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let dir = tmp_dir("fp-mismatch");
        let (mut wal, _) = Wal::open(&dir, cfg("run A")).unwrap();
        append_n(&mut wal, 0, 2);
        wal.finish().unwrap();
        let err = Wal::open(&dir, cfg("run B")).unwrap_err();
        assert!(matches!(err, WalError::FingerprintMismatch { .. }), "{err}");
        assert!(err.to_string().contains("run A"));
        assert!(err.to_string().contains("run B"));
        // Repair does not need the fingerprint.
        let rec = Wal::repair(&dir).unwrap();
        assert_eq!(rec.events, 2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_append_fault_poisons_and_reopen_heals() {
        let dir = tmp_dir("torn-fault");
        let (mut wal, _) = Wal::open(&dir, cfg("fp")).unwrap();
        append_n(&mut wal, 0, 3);
        {
            let _guard = FaultPlan::parse("wal-torn-append:3").unwrap().arm();
            let err = wal.append(3, b"event-3").unwrap_err();
            assert!(matches!(err, WalError::TornAppend { id: 3, .. }), "{err}");
            let err = wal.append(4, b"event-4").unwrap_err();
            assert!(matches!(err, WalError::Poisoned), "{err}");
        }
        drop(wal);
        // Reopen: the torn tail is truncated and the append retries.
        let (mut wal, rec) = Wal::open(&dir, cfg("fp")).unwrap();
        assert_eq!(rec.torn, 1);
        assert_eq!(rec.next_missing_id, 3);
        append_n(&mut wal, 3, 2);
        wal.finish().unwrap();
        assert_eq!(all_ids(&dir), vec![0, 1, 2, 3, 4]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_fsync_failure_heals_with_counted_retries() {
        let dir = tmp_dir("fsync-retry");
        let mut c = cfg("fp");
        c.fsync = FsyncPolicy::Always;
        let (mut wal, _) = Wal::open(&dir, c).unwrap();
        {
            // Two shots at sync ordinal 0: attempts 0 and 1 fail,
            // attempt 2 succeeds — the append never sees the error.
            let _guard = FaultPlan::parse("fsync-fail:0x2").unwrap().arm();
            let obs = forumcast_obs::arm();
            wal.append(0, b"event-0").unwrap();
            let log = forumcast_obs::drain().expect("collector armed");
            drop(obs);
            let retries = log
                .counters
                .iter()
                .find(|(n, _)| n == "ckpt.save.retries")
                .map(|(_, v)| *v)
                .unwrap_or(0);
            assert_eq!(retries, 2);
        }
        wal.finish().unwrap();
        assert_eq!(all_ids(&dir), vec![0]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policies_parse_and_render() {
        assert_eq!(FsyncPolicy::parse("always").unwrap(), FsyncPolicy::Always);
        assert_eq!(FsyncPolicy::parse("rotate").unwrap(), FsyncPolicy::OnRotate);
        assert_eq!(
            FsyncPolicy::parse("on-rotate").unwrap(),
            FsyncPolicy::OnRotate
        );
        assert_eq!(FsyncPolicy::parse("8").unwrap(), FsyncPolicy::EveryN(8));
        assert!(FsyncPolicy::parse("0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::Always.to_string(), "always");
        assert_eq!(FsyncPolicy::EveryN(8).to_string(), "every-8");
        assert_eq!(FsyncPolicy::OnRotate.to_string(), "rotate");
    }

    #[test]
    fn append_telemetry_reaches_the_collector() {
        let dir = tmp_dir("telemetry");
        let (mut wal, _) = Wal::open(&dir, cfg("fp")).unwrap();
        let guard = forumcast_obs::arm();
        append_n(&mut wal, 0, 3);
        let log = forumcast_obs::drain().expect("collector armed");
        drop(guard);
        let appends = log
            .counters
            .iter()
            .find(|(n, _)| n == "wal.appends")
            .map(|(_, v)| *v)
            .unwrap_or(0);
        assert!(appends >= 3);
        assert!(
            log.hists.iter().any(|(n, _)| n == "wal.append_ms"),
            "append latency must land in the histogram stream"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_reports_gaps_via_next_missing_id() {
        let dir = tmp_dir("gaps");
        let (mut wal, _) = Wal::open(&dir, cfg("fp")).unwrap();
        // Deliberate gap: 0, 1, then 5 (ids 2–4 never arrived).
        wal.append(0, b"a").unwrap();
        wal.append(1, b"b").unwrap();
        wal.append(5, b"f").unwrap();
        wal.finish().unwrap();
        let (_, rec) = Wal::open(&dir, cfg("fp")).unwrap();
        assert_eq!(rec.max_id, Some(5));
        assert_eq!(rec.next_missing_id, 2);
        fs::remove_dir_all(&dir).ok();
    }
}
