//! The specialized exact solver for the Section-V routing LP.

use serde::{Deserialize, Serialize};

/// One instance of the routing LP (Equation (2) of the paper):
/// maximize `Σ score_u · p_u` over probability vectors `p` with
/// per-user box constraints `0 ≤ p_u ≤ capacity_u` and `Σ p_u = 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingProblem {
    /// Objective coefficients `v̂_u − λ_{q′} · r̂_u` per eligible user.
    pub scores: Vec<f64>,
    /// Remaining capacity `c_u − Σ recent answers`, clamped to `≥ 0`.
    pub capacities: Vec<f64>,
}

impl RoutingProblem {
    /// Creates a problem; negative capacities are clamped to zero
    /// (a user who exceeded their cap simply gets no probability).
    ///
    /// # Panics
    ///
    /// Panics when the two vectors differ in length.
    pub fn new(scores: Vec<f64>, capacities: Vec<f64>) -> Self {
        assert_eq!(
            scores.len(),
            capacities.len(),
            "scores/capacities length mismatch"
        );
        let capacities = capacities.into_iter().map(|c| c.max(0.0)).collect();
        RoutingProblem { scores, capacities }
    }

    /// `true` when `Σ capacities ≥ 1`, i.e. a distribution exists.
    pub fn is_feasible(&self) -> bool {
        self.capacities.iter().sum::<f64>() >= 1.0 - 1e-12
    }
}

/// Solves the routing LP exactly in `O(n log n)`: since the objective
/// is linear and the feasible set is a box intersected with the
/// probability simplex, an optimal solution greedily saturates users
/// in decreasing score order. Returns `None` when infeasible
/// (total capacity < 1).
///
/// # Example
///
/// ```
/// use forumcast_recsys::{solve_routing, RoutingProblem};
/// let p = RoutingProblem::new(vec![3.0, 1.0, 2.0], vec![0.4, 1.0, 1.0]);
/// let x = solve_routing(&p).unwrap();
/// assert_eq!(x, vec![0.4, 0.0, 0.6]); // best user capped, runner-up fills
/// ```
pub fn solve_routing(problem: &RoutingProblem) -> Option<Vec<f64>> {
    if !problem.is_feasible() {
        return None;
    }
    let n = problem.scores.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| problem.scores[b].total_cmp(&problem.scores[a]));
    let mut p = vec![0.0; n];
    let mut remaining = 1.0;
    for &i in &order {
        if remaining <= 1e-15 {
            break;
        }
        let take = problem.capacities[i].min(remaining);
        p[i] = take;
        remaining -= take;
    }
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::maximize;

    #[test]
    fn unconstrained_puts_all_mass_on_best() {
        let p = RoutingProblem::new(vec![1.0, 5.0, 3.0], vec![1.0, 1.0, 1.0]);
        assert_eq!(solve_routing(&p).unwrap(), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn capped_best_spills_to_next() {
        let p = RoutingProblem::new(vec![5.0, 3.0, 1.0], vec![0.25, 0.5, 1.0]);
        assert_eq!(solve_routing(&p).unwrap(), vec![0.25, 0.5, 0.25]);
    }

    #[test]
    fn infeasible_when_capacity_below_one() {
        let p = RoutingProblem::new(vec![1.0, 1.0], vec![0.3, 0.3]);
        assert!(solve_routing(&p).is_none());
        assert!(!p.is_feasible());
    }

    #[test]
    fn negative_capacities_are_clamped() {
        let p = RoutingProblem::new(vec![2.0, 1.0], vec![-5.0, 1.0]);
        assert_eq!(p.capacities, vec![0.0, 1.0]);
        assert_eq!(solve_routing(&p).unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn solution_is_a_distribution() {
        let p = RoutingProblem::new(
            vec![0.3, -1.2, 2.4, 0.0, 1.1],
            vec![0.2, 0.4, 0.1, 0.9, 0.3],
        );
        let x = solve_routing(&p).unwrap();
        assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for (xi, ci) in x.iter().zip(&p.capacities) {
            assert!(*xi >= 0.0 && xi <= ci);
        }
    }

    /// The greedy solution must match the general simplex solver on
    /// random instances (equality written as two inequalities, box
    /// upper bounds as rows).
    #[test]
    fn greedy_matches_simplex_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(33);
        for trial in 0..30 {
            let n = rng.gen_range(2..7);
            let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..5.0)).collect();
            let caps: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
            let problem = RoutingProblem::new(scores.clone(), caps.clone());
            let greedy = solve_routing(&problem);

            // Simplex formulation.
            let mut a = vec![vec![1.0; n], vec![-1.0; n]];
            let mut b = vec![1.0, -1.0];
            for i in 0..n {
                let mut row = vec![0.0; n];
                row[i] = 1.0;
                a.push(row);
                b.push(problem.capacities[i]);
            }
            let lp = maximize(&scores, &a, &b);
            match (greedy, lp) {
                (Some(g), Ok(sol)) => {
                    let gv: f64 = g.iter().zip(&scores).map(|(p, s)| p * s).sum();
                    assert!(
                        (gv - sol.objective).abs() < 1e-6,
                        "trial {trial}: greedy {gv} vs simplex {}",
                        sol.objective
                    );
                }
                (None, Err(_)) => {} // both infeasible
                (g, l) => panic!("trial {trial}: greedy {g:?} vs simplex {l:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        RoutingProblem::new(vec![1.0], vec![]);
    }
}
