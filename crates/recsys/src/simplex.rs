//! A dense two-phase simplex solver for small linear programs.
//!
//! Solves `maximize cᵀx subject to Ax ≤ b, x ≥ 0` (inequalities with
//! possibly negative `b`, handled by phase-1 artificial variables).
//! Equality constraints are expressed as two opposing inequalities by
//! callers. Intended for the routing LPs of Section V — a few hundred
//! variables — not as a production LP workhorse.

use std::error::Error;
use std::fmt;

/// Errors from [`maximize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
    /// Inconsistent matrix dimensions.
    DimensionMismatch,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::DimensionMismatch => write!(f, "constraint dimensions disagree"),
        }
    }
}

impl Error for LpError {}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal variable assignment.
    pub x: Vec<f64>,
    /// Optimal objective value `cᵀx`.
    pub objective: f64,
}

const EPS: f64 = 1e-9;

/// Maximizes `cᵀx` subject to `Ax ≤ b`, `x ≥ 0` via two-phase
/// simplex with Bland's rule (no cycling).
///
/// # Errors
///
/// * [`LpError::DimensionMismatch`] when a row of `a` does not match
///   `c.len()` or `b.len() != a.len()`;
/// * [`LpError::Infeasible`] / [`LpError::Unbounded`] as diagnosed.
///
/// # Example
///
/// ```
/// use forumcast_recsys::simplex::maximize;
/// // max x + y s.t. x + y <= 1, x <= 0.6.
/// let sol = maximize(&[1.0, 1.0], &[vec![1.0, 1.0], vec![1.0, 0.0]], &[1.0, 0.6])?;
/// assert!((sol.objective - 1.0).abs() < 1e-9);
/// # Ok::<(), forumcast_recsys::LpError>(())
/// ```
pub fn maximize(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> Result<LpSolution, LpError> {
    let n = c.len();
    let m = a.len();
    if b.len() != m || a.iter().any(|row| row.len() != n) {
        return Err(LpError::DimensionMismatch);
    }

    // Tableau layout: columns = [x (n) | slacks (m) | artificials (k) | rhs].
    // Rows with negative b are flipped so rhs >= 0, turning their
    // slack coefficient to -1 and requiring an artificial variable.
    let mut needs_artificial = Vec::new();
    for (i, &bi) in b.iter().enumerate() {
        if bi < 0.0 {
            needs_artificial.push(i);
        }
    }
    let k = needs_artificial.len();
    let cols = n + m + k + 1;
    let mut t = vec![vec![0.0; cols]; m];
    let mut basis = vec![0usize; m];
    let mut art_idx = 0;
    for i in 0..m {
        let flip = b[i] < 0.0;
        let sign = if flip { -1.0 } else { 1.0 };
        for j in 0..n {
            t[i][j] = sign * a[i][j];
        }
        t[i][n + i] = sign; // slack
        t[i][cols - 1] = sign * b[i];
        if flip {
            let aj = n + m + art_idx;
            t[i][aj] = 1.0;
            basis[i] = aj;
            art_idx += 1;
        } else {
            basis[i] = n + i;
        }
    }

    // Phase 1: minimize sum of artificials (maximize negative sum).
    if k > 0 {
        let mut obj = vec![0.0; cols];
        for v in obj.iter_mut().skip(n + m).take(k) {
            *v = -1.0;
        }
        // Price out basic artificials.
        let mut z = vec![0.0; cols];
        let mut zv = 0.0;
        for i in 0..m {
            if basis[i] >= n + m {
                for j in 0..cols {
                    z[j] += t[i][j];
                }
                zv += t[i][cols - 1];
            }
        }
        let mut reduced: Vec<f64> = (0..cols - 1).map(|j| obj[j] + z[j]).collect();
        let _ = zv;
        run_simplex(&mut t, &mut basis, &mut reduced, n + m + k)?;
        // Check feasibility: all artificials must be zero.
        for i in 0..m {
            if basis[i] >= n + m && t[i][cols - 1] > EPS {
                return Err(LpError::Infeasible);
            }
        }
        // Drive any remaining basic artificials out (degenerate, value 0).
        for i in 0..m {
            if basis[i] >= n + m {
                if let Some(j) = (0..n + m).find(|&j| t[i][j].abs() > EPS) {
                    pivot(&mut t, &mut basis, i, j);
                }
            }
        }
    }

    // Phase 2: maximize c over x columns (artificial columns frozen).
    let mut reduced = vec![0.0; n + m + k];
    for (j, r) in reduced.iter_mut().enumerate().take(n) {
        *r = c[j];
    }
    // Price out the current basis.
    for i in 0..m {
        let bj = basis[i];
        let cb = if bj < n { c[bj] } else { 0.0 };
        if cb != 0.0 {
            for j in 0..n + m + k {
                reduced[j] -= cb * t[i][j];
            }
        }
    }
    // Forbid re-entering artificials.
    for r in reduced.iter_mut().skip(n + m) {
        *r = f64::NEG_INFINITY;
    }
    run_simplex(&mut t, &mut basis, &mut reduced, n + m + k)?;

    let mut x = vec![0.0; n];
    for i in 0..m {
        if basis[i] < n {
            x[basis[i]] = t[i][cols - 1];
        }
    }
    let objective = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
    Ok(LpSolution { x, objective })
}

/// Standard primal simplex iterations with Bland's rule on `reduced`
/// costs; mutates the tableau/basis until optimal.
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    reduced: &mut [f64],
    num_cols: usize,
) -> Result<(), LpError> {
    let m = t.len();
    let rhs = t[0].len() - 1;
    for _iter in 0..10_000 {
        // Bland: smallest index with positive reduced cost.
        let Some(enter) = (0..num_cols).find(|&j| reduced[j] > EPS) else {
            return Ok(());
        };
        // Ratio test.
        let mut leave: Option<usize> = None;
        let mut best = f64::INFINITY;
        for i in 0..m {
            if t[i][enter] > EPS {
                let ratio = t[i][rhs] / t[i][enter];
                if ratio < best - EPS
                    || (ratio < best + EPS && leave.is_none_or(|l| basis[i] < basis[l]))
                {
                    best = ratio;
                    leave = Some(i);
                }
            }
        }
        let Some(leave) = leave else {
            return Err(LpError::Unbounded);
        };
        let factor = reduced[enter];
        pivot_with_reduced(t, basis, reduced, leave, enter, factor);
    }
    // Bland's rule cannot cycle; hitting the cap means a bug or a
    // pathological input far beyond this solver's intended size.
    Err(LpError::Unbounded)
}

/// Pivot on (row, col), also updating the reduced-cost row.
fn pivot_with_reduced(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    reduced: &mut [f64],
    row: usize,
    col: usize,
    factor: f64,
) {
    pivot(t, basis, row, col);
    for j in 0..reduced.len() {
        if reduced[j].is_finite() {
            reduced[j] -= factor * t[row][j];
        }
    }
}

/// Gaussian pivot on (row, col).
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let p = t[row][col];
    debug_assert!(p.abs() > EPS, "pivot on ~zero element");
    for v in &mut t[row] {
        *v /= p;
    }
    for i in 0..t.len() {
        if i != row && t[i][col].abs() > EPS {
            let f = t[i][col];
            for j in 0..t[i].len() {
                t[i][j] -= f * t[row][j];
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }

    #[test]
    fn textbook_two_variable_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 → 36 at (2, 6).
        let sol = maximize(
            &[3.0, 5.0],
            &[vec![1.0, 0.0], vec![0.0, 2.0], vec![3.0, 2.0]],
            &[4.0, 12.0, 18.0],
        )
        .unwrap();
        assert_close(sol.objective, 36.0);
        assert_close(sol.x[0], 2.0);
        assert_close(sol.x[1], 6.0);
    }

    #[test]
    fn equality_via_opposing_inequalities() {
        // max 2x + y s.t. x + y = 1 (as <= and >=), x <= 0.7 → x=0.7, y=0.3.
        let sol = maximize(
            &[2.0, 1.0],
            &[vec![1.0, 1.0], vec![-1.0, -1.0], vec![1.0, 0.0]],
            &[1.0, -1.0, 0.7],
        )
        .unwrap();
        assert_close(sol.objective, 1.7);
        assert_close(sol.x[0], 0.7);
    }

    #[test]
    fn detects_unbounded() {
        // max x with no constraints binding it above.
        let err = maximize(&[1.0, 0.0], &[vec![0.0, 1.0]], &[1.0]).unwrap_err();
        assert_eq!(err, LpError::Unbounded);
    }

    #[test]
    fn detects_infeasible() {
        // x >= 2 (i.e., -x <= -2) and x <= 1.
        let err = maximize(&[1.0], &[vec![-1.0], vec![1.0]], &[-2.0, 1.0]).unwrap_err();
        assert_eq!(err, LpError::Infeasible);
    }

    #[test]
    fn dimension_mismatch_detected() {
        assert_eq!(
            maximize(&[1.0], &[vec![1.0, 2.0]], &[1.0]).unwrap_err(),
            LpError::DimensionMismatch
        );
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Redundant constraints inducing degeneracy.
        let sol = maximize(
            &[1.0, 1.0],
            &[
                vec![1.0, 0.0],
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
            ],
            &[1.0, 1.0, 1.0, 1.0],
        )
        .unwrap();
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn negative_objective_coefficients() {
        // max -x - y s.t. x + y >= 0.5 → objective -0.5.
        let sol = maximize(&[-1.0, -1.0], &[vec![-1.0, -1.0]], &[-0.5]).unwrap();
        assert_close(sol.objective, -0.5);
    }

    #[test]
    fn lp_error_display() {
        assert_eq!(
            LpError::Infeasible.to_string(),
            "linear program is infeasible"
        );
    }
}
