//! Stateful question router with sliding-window load constraints.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use forumcast_data::{Hours, UserId};

use crate::routing::{solve_routing, RoutingProblem};

/// Router configuration (the knobs of Section V).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterConfig {
    /// Eligibility threshold ε on `â_{u,q′}` — "controls the tradeoff
    /// between conforming to answerer behavior … and the number of
    /// choices available".
    pub epsilon: f64,
    /// Default per-user answer cap `c_u` over the load window.
    pub default_capacity: f64,
    /// Load-window length `I` in hours.
    pub load_window: Hours,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            epsilon: 0.5,
            default_capacity: 1.0,
            load_window: 24.0,
        }
    }
}

/// One candidate answerer with the three model predictions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The user.
    pub user: UserId,
    /// `â_{u,q′}` — predicted answer probability.
    pub answer_prob: f64,
    /// `v̂_{u,q′}` — predicted net votes.
    pub votes: f64,
    /// `r̂_{u,q′}` — predicted response time (hours).
    pub response_time: f64,
}

/// A solved recommendation: eligible users with their routing
/// probabilities `p^{q′}_u`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    users: Vec<UserId>,
    probabilities: Vec<f64>,
    objective: f64,
}

impl Recommendation {
    /// Eligible users, aligned with [`probabilities`](Self::probabilities).
    pub fn users(&self) -> &[UserId] {
        &self.users
    }

    /// Routing probabilities (a distribution over [`users`](Self::users)).
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Objective value `Σ (v̂ − λ r̂) p` achieved.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Users ranked by probability (descending), dropping zero-mass
    /// users — "a ranking of potential responders that can be drawn
    /// from several times until an answer is recorded".
    pub fn ranking(&self) -> Vec<UserId> {
        let mut idx: Vec<usize> = (0..self.users.len())
            .filter(|&i| self.probabilities[i] > 1e-12)
            .collect();
        idx.sort_by(|&a, &b| self.probabilities[b].total_cmp(&self.probabilities[a]));
        idx.into_iter().map(|i| self.users[i]).collect()
    }

    /// Draws one user according to the routing distribution.
    pub fn draw<R: rand_like::UniformSource>(&self, rng: &mut R) -> Option<UserId> {
        if self.users.is_empty() {
            return None;
        }
        let mut u = rng.uniform();
        for (i, &p) in self.probabilities.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                return Some(self.users[i]);
            }
        }
        self.ranking().first().copied()
    }
}

/// Minimal uniform-sampling abstraction so this crate does not force
/// a `rand` version on downstream users (C-STABLE): any `FnMut` source
/// of `U(0,1)` values works, and `rand::Rng` adapters are one line.
pub mod rand_like {
    /// A source of uniform `[0, 1)` samples.
    pub trait UniformSource {
        /// Returns the next uniform sample.
        fn uniform(&mut self) -> f64;
    }

    impl<F: FnMut() -> f64> UniformSource for F {
        fn uniform(&mut self) -> f64 {
            self()
        }
    }
}

/// Routes newly posted questions to predicted answerers, enforcing
/// per-user load caps over a sliding window.
#[derive(Debug, Clone)]
pub struct QuestionRouter {
    config: RouterConfig,
    /// Per-user capacity overrides (`c_u` "may also be user
    /// specified").
    capacity_overrides: HashMap<UserId, f64>,
    /// Recorded answer events `(time, user)` within the load window.
    recent: Vec<(Hours, UserId)>,
}

impl QuestionRouter {
    /// Creates a router.
    pub fn new(config: RouterConfig) -> Self {
        QuestionRouter {
            config,
            capacity_overrides: HashMap::new(),
            recent: Vec::new(),
        }
    }

    /// Sets a per-user capacity override `c_u`.
    pub fn set_capacity(&mut self, user: UserId, capacity: f64) {
        self.capacity_overrides.insert(user, capacity.max(0.0));
    }

    /// Records that `user` answered a recommended question at `time`,
    /// consuming load (the `z_{u,q}` bookkeeping of Equation (2)).
    pub fn record_answer(&mut self, time: Hours, user: UserId) {
        self.recent.push((time, user));
    }

    /// Current load of `user`: answers recorded within the window
    /// ending at `now`.
    pub fn load(&self, now: Hours, user: UserId) -> f64 {
        let from = now - self.config.load_window;
        self.recent
            .iter()
            .filter(|&&(t, u)| u == user && t > from && t <= now)
            .count() as f64
    }

    /// Recommends answerers for a new question at time `now` with
    /// quality/timing tradeoff `lambda` (`λ_{q′}`, "might be set by
    /// the question asker"). Returns `None` when no eligible user has
    /// spare capacity (infeasible LP).
    pub fn recommend(
        &mut self,
        now: Hours,
        lambda: f64,
        candidates: &[Candidate],
    ) -> Option<Recommendation> {
        // Drop stale load records.
        let from = now - self.config.load_window;
        self.recent.retain(|&(t, _)| t > from);

        let eligible: Vec<&Candidate> = candidates
            .iter()
            .filter(|c| c.answer_prob >= self.config.epsilon)
            .collect();
        if eligible.is_empty() {
            return None;
        }
        let scores: Vec<f64> = eligible
            .iter()
            .map(|c| c.votes - lambda * c.response_time)
            .collect();
        let capacities: Vec<f64> = eligible
            .iter()
            .map(|c| {
                let cap = self
                    .capacity_overrides
                    .get(&c.user)
                    .copied()
                    .unwrap_or(self.config.default_capacity);
                cap - self.load(now, c.user)
            })
            .collect();
        let problem = RoutingProblem::new(scores.clone(), capacities);
        let p = solve_routing(&problem)?;
        let objective = p.iter().zip(&scores).map(|(pi, si)| pi * si).sum();
        Some(Recommendation {
            users: eligible.iter().map(|c| c.user).collect(),
            probabilities: p,
            objective,
        })
    }

    /// The router configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<Candidate> {
        vec![
            Candidate {
                user: UserId(0),
                answer_prob: 0.9,
                votes: 4.0,
                response_time: 2.0,
            },
            Candidate {
                user: UserId(1),
                answer_prob: 0.7,
                votes: 2.0,
                response_time: 0.5,
            },
            Candidate {
                user: UserId(2),
                answer_prob: 0.2,
                votes: 9.0,
                response_time: 0.1,
            },
        ]
    }

    #[test]
    fn epsilon_filters_unlikely_answerers() {
        let mut router = QuestionRouter::new(RouterConfig::default());
        let rec = router.recommend(0.0, 0.0, &candidates()).unwrap();
        // u2 excluded despite the best score.
        assert!(!rec.users().contains(&UserId(2)));
    }

    #[test]
    fn lambda_trades_quality_for_speed() {
        let mut router = QuestionRouter::new(RouterConfig::default());
        // λ = 0: u0 wins on votes (4 vs 2).
        let rec = router.recommend(0.0, 0.0, &candidates()).unwrap();
        assert_eq!(rec.ranking()[0], UserId(0));
        // λ = 2: u0 scores 0, u1 scores 1 → u1 wins.
        let rec = router.recommend(0.0, 2.0, &candidates()).unwrap();
        assert_eq!(rec.ranking()[0], UserId(1));
    }

    #[test]
    fn load_consumes_capacity() {
        let mut router = QuestionRouter::new(RouterConfig::default());
        router.record_answer(1.0, UserId(0));
        // u0's capacity (1.0) is used up; all mass goes to u1.
        let rec = router.recommend(2.0, 0.0, &candidates()).unwrap();
        let i0 = rec.users().iter().position(|&u| u == UserId(0)).unwrap();
        assert_eq!(rec.probabilities()[i0], 0.0);
        assert_eq!(rec.ranking()[0], UserId(1));
    }

    #[test]
    fn load_expires_outside_window() {
        let mut router = QuestionRouter::new(RouterConfig::default());
        router.record_answer(1.0, UserId(0));
        assert_eq!(router.load(2.0, UserId(0)), 1.0);
        // 30h later the 24h window has passed.
        assert_eq!(router.load(31.0, UserId(0)), 0.0);
        let rec = router.recommend(31.0, 0.0, &candidates()).unwrap();
        assert_eq!(rec.ranking()[0], UserId(0));
    }

    #[test]
    fn infeasible_when_everyone_is_loaded() {
        let mut router = QuestionRouter::new(RouterConfig::default());
        router.record_answer(1.0, UserId(0));
        router.record_answer(1.0, UserId(1));
        assert!(router.recommend(2.0, 0.0, &candidates()).is_none());
    }

    #[test]
    fn no_eligible_candidates_is_none() {
        let mut router = QuestionRouter::new(RouterConfig {
            epsilon: 0.99,
            ..RouterConfig::default()
        });
        assert!(router.recommend(0.0, 0.0, &candidates()).is_none());
    }

    #[test]
    fn capacity_override_splits_probability() {
        let mut router = QuestionRouter::new(RouterConfig::default());
        router.set_capacity(UserId(0), 0.6);
        let rec = router.recommend(0.0, 0.0, &candidates()).unwrap();
        let i0 = rec.users().iter().position(|&u| u == UserId(0)).unwrap();
        let i1 = rec.users().iter().position(|&u| u == UserId(1)).unwrap();
        assert!((rec.probabilities()[i0] - 0.6).abs() < 1e-12);
        assert!((rec.probabilities()[i1] - 0.4).abs() < 1e-12);
        assert!((rec.objective() - (0.6 * 4.0 + 0.4 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn draw_respects_distribution() {
        let mut router = QuestionRouter::new(RouterConfig::default());
        router.set_capacity(UserId(0), 0.5);
        let rec = router.recommend(0.0, 0.0, &candidates()).unwrap();
        // Deterministic "rng" sequence.
        let mut seq = [0.25f64, 0.75].iter().cycle().copied();
        let mut src = move || seq.next().unwrap();
        let first = rec.draw(&mut src).unwrap();
        let second = rec.draw(&mut src).unwrap();
        assert_ne!(first, second, "different quantiles hit different users");
    }

    #[test]
    fn empty_recommendation_draw_is_none() {
        let rec = Recommendation {
            users: vec![],
            probabilities: vec![],
            objective: 0.0,
        };
        let mut src = || 0.5;
        assert!(rec.draw(&mut src).is_none());
    }
}
