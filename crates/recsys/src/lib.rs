//! Question recommendation for `forumcast` — the paper's Section V.
//!
//! Given the three predictions `â_{u,q′}`, `v̂_{u,q′}`, `r̂_{u,q′}`
//! for a newly posted question `q′`, the paper recommends answerers by
//! solving, over the eligible set `U_{q′} = {u : â ≥ ε}`:
//!
//! ```text
//! maximize   Σ_u (v̂_u − λ_{q′} · r̂_u) · p_u
//! subject to 0 ≤ p_u ≤ c_u − recent load,   Σ_u p_u = 1
//! ```
//!
//! a linear program whose solution is a probability distribution over
//! answerers (rankable and drawable, Section V).
//!
//! This crate provides:
//!
//! * [`simplex`] — a general dense two-phase simplex solver (the
//!   substrate an LP needs; used to cross-check the fast path);
//! * [`routing`] — the specialized exact greedy solver for the
//!   paper's box-plus-simplex structure;
//! * [`router`] — a stateful [`QuestionRouter`] that tracks per-user
//!   load over a sliding window and produces ranked recommendations.
//!
//! # Example
//!
//! ```
//! use forumcast_recsys::{RouterConfig, QuestionRouter, Candidate};
//! use forumcast_data::UserId;
//!
//! let mut router = QuestionRouter::new(RouterConfig::default());
//! let recs = router
//!     .recommend(
//!         0.0, // current time (hours)
//!         1.0, // λ_q′: weight of timing vs quality
//!         &[
//!             Candidate { user: UserId(0), answer_prob: 0.9, votes: 3.0, response_time: 2.0 },
//!             Candidate { user: UserId(1), answer_prob: 0.8, votes: 1.0, response_time: 0.5 },
//!             Candidate { user: UserId(2), answer_prob: 0.1, votes: 9.0, response_time: 0.1 },
//!         ],
//!     )
//!     .expect("feasible");
//! // u2 is filtered out by ε; u0 wins on v̂ − λ·r̂ = 1.0 vs 0.5.
//! assert_eq!(recs.ranking()[0], UserId(0));
//! ```

pub mod router;
pub mod routing;
pub mod simplex;

pub use router::{Candidate, QuestionRouter, Recommendation, RouterConfig};
pub use routing::{solve_routing, RoutingProblem};
pub use simplex::{maximize, LpError, LpSolution};
