//! Property-based tests: the greedy routing solver is exact
//! (cross-checked against the simplex LP) and always feasible.

use proptest::prelude::*;

use forumcast_recsys::{maximize, solve_routing, RoutingProblem};

fn arb_problem() -> impl Strategy<Value = RoutingProblem> {
    (1usize..8).prop_flat_map(|n| {
        (
            proptest::collection::vec(-5.0f64..5.0, n),
            proptest::collection::vec(0.0f64..1.2, n),
        )
            .prop_map(|(scores, caps)| RoutingProblem::new(scores, caps))
    })
}

proptest! {
    /// Greedy solutions are feasible distributions within the box.
    #[test]
    fn greedy_solution_feasible(p in arb_problem()) {
        match solve_routing(&p) {
            Some(x) => {
                prop_assert!((x.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                for (xi, ci) in x.iter().zip(&p.capacities) {
                    prop_assert!(*xi >= -1e-12 && xi <= &(ci + 1e-12));
                }
            }
            None => prop_assert!(!p.is_feasible()),
        }
    }

    /// The greedy objective matches the general simplex solver.
    #[test]
    fn greedy_matches_simplex(p in arb_problem()) {
        let n = p.scores.len();
        let mut a = vec![vec![1.0; n], vec![-1.0; n]];
        let mut b = vec![1.0, -1.0];
        for i in 0..n {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            a.push(row);
            b.push(p.capacities[i]);
        }
        let lp = maximize(&p.scores, &a, &b);
        match (solve_routing(&p), lp) {
            (Some(x), Ok(sol)) => {
                let val: f64 = x.iter().zip(&p.scores).map(|(xi, si)| xi * si).sum();
                prop_assert!(
                    (val - sol.objective).abs() < 1e-6,
                    "greedy {val} vs simplex {}",
                    sol.objective
                );
            }
            (None, Err(_)) => {}
            (g, l) => prop_assert!(false, "disagree: greedy {g:?} vs simplex {l:?}"),
        }
    }

    /// Raising one user's score never lowers that user's probability
    /// (monotonicity of the allocation).
    #[test]
    fn allocation_monotone_in_score(p in arb_problem(), idx in 0usize..8, bump in 0.1f64..3.0) {
        let n = p.scores.len();
        let idx = idx % n;
        if let Some(before) = solve_routing(&p) {
            let mut scores = p.scores.clone();
            scores[idx] += bump + 10.0; // make it strictly the best
            let p2 = RoutingProblem::new(scores, p.capacities.clone());
            let after = solve_routing(&p2).expect("same capacities stay feasible");
            prop_assert!(after[idx] >= before[idx] - 1e-12);
        }
    }

    /// The simplex solver on box-only LPs saturates positive scores.
    #[test]
    fn simplex_box_only(scores in proptest::collection::vec(-3.0f64..3.0, 1..5)) {
        let n = scores.len();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..n {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            a.push(row);
            b.push(1.0);
        }
        let sol = maximize(&scores, &a, &b).expect("feasible");
        let expected: f64 = scores.iter().filter(|s| **s > 0.0).sum();
        prop_assert!((sol.objective - expected).abs() < 1e-7);
    }
}
