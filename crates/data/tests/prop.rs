//! Property-based tests for the data model and preprocessing.

use proptest::prelude::*;

use forumcast_data::io::{PostRecord, ThreadRecord};
use forumcast_data::{import_records_lenient, io, Dataset, Post, PostBody, Thread, UserId};

fn arb_thread(id: u32, num_users: u32) -> impl Strategy<Value = Thread> {
    (
        0..num_users,
        0.0f64..700.0,
        -5i32..20,
        proptest::collection::vec((0..num_users, 0.0f64..20.0, -6i32..30), 0..5),
    )
        .prop_map(move |(asker, t_q, v_q, answers)| {
            let question = Post::new(UserId(asker), t_q, v_q, PostBody::words("q text"));
            let answers = answers
                .into_iter()
                .map(|(u, dt, v)| Post::new(UserId(u), t_q + dt, v, PostBody::words("a")))
                .collect();
            Thread::new(id, question, answers)
        })
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec(any::<()>(), 1..12).prop_flat_map(|v| {
        let n = v.len() as u32;
        let threads: Vec<_> = (0..n).map(|i| arb_thread(i, 8)).collect();
        threads.prop_map(|ts| Dataset::new(8, ts).expect("valid by construction"))
    })
}

proptest! {
    /// Preprocessing is idempotent and never grows the dataset.
    #[test]
    fn preprocess_idempotent(ds in arb_dataset()) {
        let (once, _) = ds.clone().preprocess();
        let (twice, second_report) = once.clone().preprocess();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(second_report.duplicate_answers, 0);
        prop_assert_eq!(second_report.zero_delay_answers, 0);
        prop_assert!(once.num_questions() <= ds.num_questions());
        prop_assert!(once.num_answers() <= ds.num_answers());
    }

    /// After preprocessing, every answer pair is unique and strictly
    /// delayed.
    #[test]
    fn preprocessed_pairs_are_clean(ds in arb_dataset()) {
        let (clean, _) = ds.preprocess();
        let pairs = clean.answered_pairs();
        let mut seen = std::collections::HashSet::new();
        for p in &pairs {
            prop_assert!(p.response_time > 0.0);
            prop_assert!(seen.insert((p.user.0, p.question.0)), "duplicate pair");
        }
    }

    /// Native JSON round-trips exactly.
    #[test]
    fn json_roundtrip(ds in arb_dataset()) {
        let json = io::to_json(&ds).expect("serializes");
        let back = io::from_json(&json).expect("parses");
        prop_assert_eq!(back, ds);
    }

    /// Answered pairs agree with per-thread queries.
    #[test]
    fn pairs_match_thread_queries(ds in arb_dataset()) {
        for p in ds.answered_pairs() {
            let t = ds.thread(p.question).expect("thread exists");
            prop_assert!(t.answered_by(p.user));
            prop_assert_eq!(t.response_time_of(p.user), Some(p.response_time));
        }
    }

    /// Horizon bounds every timestamp.
    #[test]
    fn horizon_is_max(ds in arb_dataset()) {
        let h = ds.horizon();
        for t in ds.threads() {
            for p in t.posts() {
                prop_assert!(p.timestamp <= h + 1e-12);
            }
        }
    }
}

/// Adversarial crawl posts: NaN/infinite/negative/huge timestamps,
/// empty user keys and bodies.
fn arb_post_record() -> impl Strategy<Value = PostRecord> {
    (0u8..8, 0.0f64..5_000.0, 0u8..4, 0u8..4, -5i32..10).prop_map(
        |(esel, base, usel, bsel, score)| {
            let creation_epoch_s = match esel {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => -base - 1.0,
                4 => 1e308,
                _ => base,
            };
            let user = match usel {
                0 => "",
                1 => " \t",
                2 => "alice",
                _ => "bob",
            };
            let body_html = match bsel {
                0 => "",
                1 => "   ",
                2 => "plain words",
                _ => "with <code>code</code>",
            };
            PostRecord {
                user: user.to_string(),
                creation_epoch_s,
                score,
                body_html: body_html.to_string(),
            }
        },
    )
}

/// Adversarial crawls: small question-id range so duplicates are
/// common, 0–2 answers per record.
fn arb_records() -> impl Strategy<Value = Vec<ThreadRecord>> {
    proptest::collection::vec(
        (
            0u32..6,
            arb_post_record(),
            proptest::collection::vec(arb_post_record(), 0..3),
        ),
        0..10,
    )
    .prop_map(|rs| {
        rs.into_iter()
            .map(|(question_id, question, answers)| ThreadRecord {
                question_id,
                question,
                answers,
            })
            .collect()
    })
}

proptest! {
    /// Lenient import is total (never panics) and its quarantine
    /// counts balance: records in = threads kept + quarantined.
    #[test]
    fn lenient_import_is_total_and_counts_balance(records in arb_records()) {
        let (ds, users, report) = import_records_lenient(&records);
        prop_assert_eq!(report.records_in, records.len());
        prop_assert_eq!(report.threads_kept, ds.num_questions());
        prop_assert_eq!(
            report.records_in,
            report.threads_kept + report.quarantined_total()
        );
        prop_assert_eq!(users.len() as u32, ds.num_users());
        // The survivors satisfy every dataset invariant.
        prop_assert!(Dataset::new(ds.num_users(), ds.threads().to_vec()).is_ok());
    }

    /// When nothing gets quarantined, lenient and strict import agree
    /// exactly.
    #[test]
    fn lenient_matches_strict_on_clean_input(records in arb_records()) {
        let (ds, users, report) = import_records_lenient(&records);
        if report.quarantined_total() == 0 {
            let (strict, strict_users) =
                io::import_records(&records).expect("lenient found nothing to quarantine");
            prop_assert_eq!(ds, strict);
            prop_assert_eq!(users, strict_users);
        }
    }
}
