//! Replay-equivalence properties: for *any* generated forum event
//! stream, any duplicated and bounded-reordered delivery folds to
//! the same state hash as the in-order delivery — with duplicates
//! counted, nothing poisoned, and nothing lost.

use proptest::prelude::*;

use forumcast_data::{
    events_from_dataset, Dataset, ForumEvent, Ingestor, Post, PostBody, Thread, UserId, MAX_PENDING,
};

/// Builds a valid dataset from compact seeds: `threads` entries of
/// (asker, question votes, answer count seed), with deterministic
/// timestamps and bodies derived from the indices.
fn dataset_from_seeds(num_users: u32, threads: &[(u32, i32, u8)]) -> Dataset {
    let built = threads
        .iter()
        .enumerate()
        .map(|(qi, (asker, votes, answers))| {
            let t0 = qi as f64 * 3.0 + 0.5;
            let question = Post::new(
                UserId(asker % num_users),
                t0,
                *votes,
                PostBody::words(format!("question {qi}")),
            );
            let answers = (0..(*answers % 4))
                .map(|ai| {
                    Post::new(
                        UserId((asker + ai as u32 + 1) % num_users),
                        t0 + 0.5 + ai as f64,
                        i32::from(*answers) - 2 * i32::from(ai),
                        PostBody::new(format!("answer {qi}/{ai}"), "x()"),
                    )
                })
                .collect();
            Thread::new(qi as u32, question, answers)
        })
        .collect();
    Dataset::new(num_users, built).expect("seeded dataset is valid by construction")
}

fn fold_in_order(events: &[ForumEvent]) -> Ingestor {
    let mut ing = Ingestor::new();
    for (i, ev) in events.iter().enumerate() {
        ing.offer_event(i as u64, ev.clone());
    }
    ing.finish();
    ing
}

fn arb_seeds() -> impl Strategy<Value = Vec<(u32, i32, u8)>> {
    proptest::collection::vec((0u32..64, -5i32..8, 0u8..8), 1..12)
}

proptest! {
    #[test]
    fn duplicated_delivery_replays_to_the_same_hash(
        seeds in arb_seeds(),
        dup_mask in 0u64..u64::MAX,
    ) {
        let ds = dataset_from_seeds(64, &seeds);
        let events = events_from_dataset(&ds);
        let baseline = fold_in_order(&events);

        let mut ing = Ingestor::new();
        let mut dups = 0u64;
        for (i, ev) in events.iter().enumerate() {
            ing.offer_event(i as u64, ev.clone());
            if dup_mask >> (i % 64) & 1 == 1 {
                ing.offer_event(i as u64, ev.clone());
                dups += 1;
            }
        }
        ing.finish();
        prop_assert_eq!(ing.state().hash(), baseline.state().hash());
        prop_assert_eq!(ing.report().dup_skipped, dups);
        prop_assert_eq!(ing.report().applied, baseline.report().applied);
        prop_assert_eq!(ing.report().poison_total(), 0);
    }

    #[test]
    fn bounded_reordered_delivery_replays_to_the_same_hash(
        seeds in arb_seeds(),
        swap_seed in 0u64..u64::MAX,
        window in 1usize..16,
    ) {
        let ds = dataset_from_seeds(64, &seeds);
        let events = events_from_dataset(&ds);
        let baseline = fold_in_order(&events);

        // Deterministic bounded shuffle: repeated in-window swaps
        // driven by a cheap LCG over `swap_seed`. Displacement stays
        // far below MAX_PENDING.
        prop_assert!(window < MAX_PENDING);
        let mut order: Vec<usize> = (0..events.len()).collect();
        let mut rng = swap_seed | 1;
        for i in 0..order.len() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = i + (rng >> 33) as usize % window.min(order.len() - i);
            order.swap(i, j);
        }

        let mut ing = Ingestor::new();
        for idx in order {
            ing.offer_event(idx as u64, events[idx].clone());
        }
        ing.finish();
        prop_assert_eq!(ing.state().hash(), baseline.state().hash());
        prop_assert_eq!(ing.report().applied, baseline.report().applied);
        prop_assert_eq!(ing.report().gaps, 0);
        prop_assert_eq!(ing.report().poison_total(), 0);
    }

    #[test]
    fn duplication_and_reorder_combined_still_converge(
        seeds in arb_seeds(),
        mix_seed in 0u64..u64::MAX,
    ) {
        let ds = dataset_from_seeds(64, &seeds);
        let events = events_from_dataset(&ds);
        let baseline = fold_in_order(&events);

        // Swap adjacent pairs and duplicate every third delivery —
        // the crash-resume + interleaved-producer worst case.
        let mut ing = Ingestor::new();
        let mut i = 0;
        while i < events.len() {
            let swap = i + 1 < events.len() && (mix_seed >> (i % 64)) & 1 == 1;
            let ids: Vec<usize> = if swap { vec![i + 1, i] } else { vec![i] };
            for idx in &ids {
                ing.offer_event(*idx as u64, events[*idx].clone());
                if idx % 3 == 0 {
                    ing.offer_event(*idx as u64, events[*idx].clone());
                }
            }
            i += if swap { 2 } else { 1 };
        }
        ing.finish();
        prop_assert_eq!(ing.state().hash(), baseline.state().hash());
        prop_assert_eq!(ing.report().applied, events.len() as u64);
        prop_assert_eq!(ing.report().poison_total(), 0);
    }

    /// The rebuilt forum is not merely hash-equal: its threads are
    /// structurally equal to the source dataset's. (User *count* can
    /// legitimately differ when high-numbered users never post, so
    /// the check pins thread content, which is always exact.)
    #[test]
    fn replayed_threads_match_the_source_dataset(seeds in arb_seeds()) {
        let ds = dataset_from_seeds(64, &seeds);
        let events = events_from_dataset(&ds);
        let ing = fold_in_order(&events);
        let rebuilt = ing.state().to_dataset();
        prop_assert_eq!(rebuilt.threads(), ds.threads());
    }
}
