//! Descriptive statistics and preprocessing reports (paper §III-A).

use serde::{Deserialize, Serialize};

use crate::Hours;

/// Summary statistics of a dataset, mirroring the counts reported in
/// Section III-A of the paper (20,923 questions, 19,934 answers, 9,947
/// askers, 6,451 answerers, 14,643 distinct users before filtering;
/// answer-matrix density 0.03% after filtering).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Size of the declared user population.
    pub num_users: usize,
    /// Users who asked or answered at least once.
    pub num_active_users: usize,
    /// Users who asked at least one question.
    pub num_askers: usize,
    /// Users who answered at least one question.
    pub num_answerers: usize,
    /// Number of question threads.
    pub num_questions: usize,
    /// Total number of answers.
    pub num_answers: usize,
    /// Fraction of the answerers × questions matrix that is 1, i.e.
    /// the sparsity level of `A = [a_{u,q}]`.
    pub answer_matrix_density: f64,
    /// Timestamp of the last post.
    pub horizon: Hours,
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} questions, {} answers, {} askers, {} answerers, {} active of {} users, \
             density {:.4}%, horizon {:.1} h",
            self.num_questions,
            self.num_answers,
            self.num_askers,
            self.num_answerers,
            self.num_active_users,
            self.num_users,
            self.answer_matrix_density * 100.0,
            self.horizon
        )
    }
}

/// What [`crate::Dataset::preprocess`] removed, mirroring the paper's
/// preprocessing narrative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PreprocessReport {
    /// Questions dropped for having no (remaining) answers.
    pub unanswered_questions: usize,
    /// Extra per-user answers removed (max-vote one kept).
    pub duplicate_answers: usize,
    /// Answers dropped for being posted at the question's timestamp.
    pub zero_delay_answers: usize,
    /// Questions remaining after preprocessing.
    pub questions_kept: usize,
    /// Answers remaining after preprocessing.
    pub answers_kept: usize,
}

impl std::fmt::Display for PreprocessReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kept {} questions / {} answers; removed {} unanswered questions, \
             {} duplicate answers, {} zero-delay answers",
            self.questions_kept,
            self.answers_kept,
            self.unanswered_questions,
            self.duplicate_answers,
            self.zero_delay_answers
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_display_mentions_counts() {
        let s = DatasetStats {
            num_users: 10,
            num_active_users: 8,
            num_askers: 5,
            num_answerers: 6,
            num_questions: 7,
            num_answers: 9,
            answer_matrix_density: 0.0003,
            horizon: 720.0,
        };
        let text = s.to_string();
        assert!(text.contains("7 questions"));
        assert!(text.contains("0.0300%"));
    }

    #[test]
    fn report_display_mentions_removals() {
        let r = PreprocessReport {
            unanswered_questions: 3,
            duplicate_answers: 1,
            zero_delay_answers: 2,
            questions_kept: 4,
            answers_kept: 5,
        };
        let text = r.to_string();
        assert!(text.contains("3 unanswered"));
        assert!(text.contains("kept 4 questions"));
    }

    #[test]
    fn report_default_is_zeroed() {
        let r = PreprocessReport::default();
        assert_eq!(r.unanswered_questions, 0);
        assert_eq!(r.answers_kept, 0);
    }
}
