//! Posts — the atomic unit of forum content — and user identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::Hours;

/// Identifier of a forum user.
///
/// User ids are dense indices `0 .. Dataset::num_users()`, which lets
/// downstream crates index per-user arrays directly.
///
/// # Example
///
/// ```
/// use forumcast_data::UserId;
/// let u = UserId(7);
/// assert_eq!(u.index(), 7);
/// assert_eq!(format!("{u}"), "u7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct UserId(pub u32);

impl UserId {
    /// Returns the id as a `usize` index suitable for array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UserId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl From<u32> for UserId {
    fn from(v: u32) -> Self {
        UserId(v)
    }
}

/// The textual body of a post, split into natural-language words and
/// source code.
///
/// The paper (Section II-B) divides each post `p` into words `x(p)` and
/// code `c(p)`, "using the fact that code on forums is delimited by
/// specific HTML tags". [`PostBody::from_html`] performs that split on
/// `<code>…</code>`-delimited markup; the word and code *lengths in
/// characters* are question features (vii) and (viii).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct PostBody {
    /// Natural-language text `x(p)` of the post.
    pub text: String,
    /// Source code `c(p)` contained in the post.
    pub code: String,
}

impl PostBody {
    /// Creates a body with the given text and code parts.
    ///
    /// # Example
    ///
    /// ```
    /// use forumcast_data::PostBody;
    /// let body = PostBody::new("call sort", "v.sort();");
    /// assert_eq!(body.word_len(), 9);
    /// assert_eq!(body.code_len(), 9);
    /// ```
    pub fn new(text: impl Into<String>, code: impl Into<String>) -> Self {
        PostBody {
            text: text.into(),
            code: code.into(),
        }
    }

    /// Creates a body containing only natural-language words.
    pub fn words(text: impl Into<String>) -> Self {
        PostBody::new(text, "")
    }

    /// Parses an HTML-ish post body, extracting `<code>…</code>` spans
    /// into [`PostBody::code`] and everything else into
    /// [`PostBody::text`].
    ///
    /// The parser is deliberately lenient: an unclosed `<code>` tag
    /// treats the remainder of the input as code, and stray `</code>`
    /// tags are ignored. Other tags are left in place (they count
    /// toward the word length, as they would in a raw API dump).
    ///
    /// # Example
    ///
    /// ```
    /// use forumcast_data::PostBody;
    /// let body = PostBody::from_html("sort it: <code>v.sort()</code> done");
    /// assert_eq!(body.text, "sort it:  done");
    /// assert_eq!(body.code, "v.sort()");
    /// ```
    pub fn from_html(html: &str) -> Self {
        const OPEN: &str = "<code>";
        const CLOSE: &str = "</code>";
        let mut text = String::new();
        let mut code = String::new();
        let mut rest = html;
        loop {
            match rest.find(OPEN) {
                None => {
                    text.push_str(rest);
                    break;
                }
                Some(start) => {
                    text.push_str(&rest[..start]);
                    let after_open = &rest[start + OPEN.len()..];
                    match after_open.find(CLOSE) {
                        None => {
                            code.push_str(after_open);
                            break;
                        }
                        Some(end) => {
                            code.push_str(&after_open[..end]);
                            if !code.is_empty() {
                                code.push(' ');
                            }
                            rest = &after_open[end + CLOSE.len()..];
                        }
                    }
                }
            }
        }
        // Trim the trailing separator introduced between code spans.
        while code.ends_with(' ') {
            code.pop();
        }
        PostBody { text, code }
    }

    /// Length of the word text in characters — question feature (vii),
    /// `x_q = |x(p_{q0})|`.
    pub fn word_len(&self) -> usize {
        self.text.chars().count()
    }

    /// Length of the code in characters — question feature (viii),
    /// `c_q = |c(p_{q0})|`.
    pub fn code_len(&self) -> usize {
        self.code.chars().count()
    }

    /// Returns `true` when both the text and code parts are empty.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty() && self.code.is_empty()
    }
}

/// A single forum post: the question `p_{q,0}` or an answer `p_{q,n}`.
///
/// # Example
///
/// ```
/// use forumcast_data::{Post, PostBody, UserId};
/// let p = Post::new(UserId(3), 12.25, -1, PostBody::words("why"));
/// assert_eq!(p.author, UserId(3));
/// assert_eq!(p.votes, -1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Post {
    /// Creator `u(p)` of the post.
    pub author: UserId,
    /// Timestamp `t(p)` in [`Hours`] since the dataset epoch.
    pub timestamp: Hours,
    /// Net votes `v(p)` received (up-votes minus down-votes).
    pub votes: i32,
    /// Post body, split into words and code.
    pub body: PostBody,
}

impl Post {
    /// Creates a new post.
    pub fn new(author: UserId, timestamp: Hours, votes: i32, body: PostBody) -> Self {
        Post {
            author,
            timestamp,
            votes,
            body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_id_display_and_index() {
        assert_eq!(UserId(42).to_string(), "u42");
        assert_eq!(UserId(42).index(), 42);
        assert_eq!(UserId::from(9u32), UserId(9));
    }

    #[test]
    fn user_id_ordering_matches_numeric() {
        assert!(UserId(1) < UserId(2));
        assert_eq!(UserId::default(), UserId(0));
    }

    #[test]
    fn body_lengths_count_chars_not_bytes() {
        let body = PostBody::new("héllo", "λ=1");
        assert_eq!(body.word_len(), 5);
        assert_eq!(body.code_len(), 3);
    }

    #[test]
    fn from_html_extracts_single_code_span() {
        let body = PostBody::from_html("before <code>let x = 1;</code> after");
        assert_eq!(body.text, "before  after");
        assert_eq!(body.code, "let x = 1;");
    }

    #[test]
    fn from_html_extracts_multiple_code_spans() {
        let body = PostBody::from_html("a<code>x</code>b<code>y</code>c");
        assert_eq!(body.text, "abc");
        assert_eq!(body.code, "x y");
    }

    #[test]
    fn from_html_handles_unclosed_code() {
        let body = PostBody::from_html("text <code>dangling");
        assert_eq!(body.text, "text ");
        assert_eq!(body.code, "dangling");
    }

    #[test]
    fn from_html_no_code() {
        let body = PostBody::from_html("plain words only");
        assert_eq!(body.text, "plain words only");
        assert!(body.code.is_empty());
    }

    #[test]
    fn from_html_empty_input_is_empty_body() {
        let body = PostBody::from_html("");
        assert!(body.is_empty());
    }

    #[test]
    fn from_html_empty_code_span() {
        let body = PostBody::from_html("a<code></code>b");
        assert_eq!(body.text, "ab");
        assert_eq!(body.code, "");
    }

    #[test]
    fn post_roundtrips_through_serde() {
        let p = Post::new(UserId(1), 3.5, 7, PostBody::new("t", "c"));
        let json = serde_json::to_string(&p).unwrap();
        let back: Post = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
