//! Question threads: one question post plus its answers.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::post::{Post, UserId};
use crate::Hours;

/// Identifier of a question / thread.
///
/// Question ids are assigned at dataset creation time and remain stable
/// across preprocessing (filtered datasets keep the original ids), so
/// they can be used as external keys. Within one [`crate::Dataset`] the
/// ids are unique but not necessarily dense.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct QuestionId(pub u32);

impl QuestionId {
    /// Returns the id as a `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for QuestionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for QuestionId {
    fn from(v: u32) -> Self {
        QuestionId(v)
    }
}

/// A question thread `q`: the question post `p_{q,0}` and the answers
/// `p_{q,1}, …` in chronological order.
///
/// # Example
///
/// ```
/// use forumcast_data::{Post, PostBody, Thread, UserId};
/// let t = Thread::new(
///     5,
///     Post::new(UserId(0), 0.0, 1, PostBody::words("q")),
///     vec![Post::new(UserId(1), 2.0, 3, PostBody::words("a"))],
/// );
/// assert_eq!(t.asker(), UserId(0));
/// assert_eq!(t.num_answers(), 1);
/// assert_eq!(t.response_time_of(UserId(1)), Some(2.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Thread {
    /// Stable identifier of the question.
    pub id: QuestionId,
    /// The question post `p_{q,0}`.
    pub question: Post,
    /// Answer posts `p_{q,1}, …`, sorted by timestamp.
    pub answers: Vec<Post>,
}

impl Thread {
    /// Creates a thread, sorting the answers chronologically.
    pub fn new(id: impl Into<QuestionId>, question: Post, mut answers: Vec<Post>) -> Self {
        answers.sort_by(|a, b| a.timestamp.total_cmp(&b.timestamp));
        Thread {
            id: id.into(),
            question,
            answers,
        }
    }

    /// The user `u(p_{q,0})` who asked the question.
    pub fn asker(&self) -> UserId {
        self.question.author
    }

    /// Timestamp `t(p_{q,0})` at which the question was posted.
    pub fn asked_at(&self) -> Hours {
        self.question.timestamp
    }

    /// Number of answers in the thread.
    pub fn num_answers(&self) -> usize {
        self.answers.len()
    }

    /// `true` when the thread received at least one answer.
    pub fn is_answered(&self) -> bool {
        !self.answers.is_empty()
    }

    /// Iterates over every post in the thread, question first.
    ///
    /// This matches the paper's indexing `p_{q,0}, p_{q,1}, …`.
    pub fn posts(&self) -> impl Iterator<Item = &Post> {
        std::iter::once(&self.question).chain(self.answers.iter())
    }

    /// Iterates over the distinct users participating in the thread
    /// (asker and answerers). A user appears once even with multiple
    /// posts.
    pub fn participants(&self) -> Vec<UserId> {
        let mut users: Vec<UserId> = self.posts().map(|p| p.author).collect();
        users.sort_unstable();
        users.dedup();
        users
    }

    /// Returns `u`'s answer to this question, if any. When a user has
    /// posted several answers (possible in raw data, removed by
    /// preprocessing) the one with the highest votes is returned,
    /// matching the paper's Section III-A rule.
    pub fn answer_by(&self, u: UserId) -> Option<&Post> {
        self.answers
            .iter()
            .filter(|p| p.author == u)
            .max_by_key(|p| p.votes)
    }

    /// `true` when user `u` answered this question — target `a_{u,q}`.
    pub fn answered_by(&self, u: UserId) -> bool {
        self.answers.iter().any(|p| p.author == u)
    }

    /// Response time `r_{u,q} = t(p_{q,n}) − t(p_{q,0})` of user `u`,
    /// or `None` if `u` did not answer.
    pub fn response_time_of(&self, u: UserId) -> Option<Hours> {
        self.answer_by(u).map(|p| p.timestamp - self.asked_at())
    }

    /// Timestamp of the last post in the thread (question if there are
    /// no answers).
    pub fn last_activity(&self) -> Hours {
        self.answers
            .last()
            .map(|p| p.timestamp)
            .unwrap_or(self.question.timestamp)
            .max(self.question.timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::post::PostBody;

    fn post(u: u32, t: Hours, v: i32) -> Post {
        Post::new(UserId(u), t, v, PostBody::default())
    }

    fn sample() -> Thread {
        Thread::new(
            1,
            post(0, 10.0, 2),
            vec![post(2, 14.0, 1), post(1, 12.0, 5), post(2, 13.0, 4)],
        )
    }

    #[test]
    fn answers_are_sorted_chronologically() {
        let t = sample();
        let times: Vec<Hours> = t.answers.iter().map(|p| p.timestamp).collect();
        assert_eq!(times, vec![12.0, 13.0, 14.0]);
    }

    #[test]
    fn posts_iterates_question_first() {
        let t = sample();
        let first = t.posts().next().unwrap();
        assert_eq!(first.author, UserId(0));
        assert_eq!(t.posts().count(), 4);
    }

    #[test]
    fn participants_are_unique_and_sorted() {
        let t = sample();
        assert_eq!(t.participants(), vec![UserId(0), UserId(1), UserId(2)]);
    }

    #[test]
    fn answer_by_picks_highest_voted_duplicate() {
        let t = sample();
        let a = t.answer_by(UserId(2)).unwrap();
        assert_eq!(a.votes, 4);
    }

    #[test]
    fn response_time_is_relative_to_question() {
        let t = sample();
        assert_eq!(t.response_time_of(UserId(1)), Some(2.0));
        assert_eq!(t.response_time_of(UserId(9)), None);
    }

    #[test]
    fn answered_by_reflects_membership() {
        let t = sample();
        assert!(t.answered_by(UserId(1)));
        assert!(!t.answered_by(UserId(0)));
    }

    #[test]
    fn unanswered_thread_properties() {
        let t = Thread::new(3, post(4, 5.0, 0), vec![]);
        assert!(!t.is_answered());
        assert_eq!(t.num_answers(), 0);
        assert_eq!(t.last_activity(), 5.0);
        assert_eq!(t.participants(), vec![UserId(4)]);
    }

    #[test]
    fn last_activity_is_final_answer() {
        assert_eq!(sample().last_activity(), 14.0);
    }

    #[test]
    fn question_id_display() {
        assert_eq!(QuestionId(3).to_string(), "q3");
        assert_eq!(QuestionId::from(3u32).index(), 3);
    }
}
