//! Event-sourced forum construction: typed events, idempotent
//! replay, and poison-event quarantine.
//!
//! The WAL (`forumcast-wal`) persists an *event stream*; this module
//! gives the stream its meaning. A [`ForumEvent`] is one atomic
//! change to a forum — a question appears, an answer appears, a post
//! gains or loses votes — and a [`ForumState`] is the fold of a
//! stream of such events, convertible back into a [`Dataset`] for
//! the offline pipeline.
//!
//! # Delivery discipline
//!
//! Real log replay is messy: a producer that crashed mid-append and
//! resumed re-delivers a suffix (duplicates), a quarantined segment
//! leaves an id gap, and a multi-producer log interleaves slightly
//! out of order. The [`Ingestor`] absorbs all of it without ever
//! aborting:
//!
//! * **duplicates** — every event carries a monotonically increasing
//!   id; an id at or below the replay cursor (or already buffered)
//!   is skipped and counted (`ingest.dup_skipped`);
//! * **bounded reorder** — an event arriving ahead of the cursor is
//!   buffered (up to [`MAX_PENDING`]) and applied in id order once
//!   the gap fills (`ingest.reordered`);
//! * **gaps** — ids that never arrive (a quarantined segment) are
//!   skipped over at the end, counted per missing id;
//! * **poison** — an event that cannot be decoded or that the state
//!   rejects (unknown question, answer before its question, …) is
//!   quarantined to a bounded side log with a per-reason tally
//!   ([`PoisonReason`], `ingest.poison`), never applied.
//!
//! Because the fold is a pure function of the *id-ordered* event
//! sequence, replaying the same log — at any thread count, before or
//! after crash healing — yields a bitwise-identical
//! [`ForumState::hash`]. That is the property the kill-storm smoke
//! and the root integration tests pin.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

use forumcast_resilience::fault::{self, FaultSite};
use forumcast_wal::{scan_dir, Wal, WalConfig, WalError, WalRecovery};

use crate::dataset::Dataset;
use crate::post::{Post, PostBody, UserId};
use crate::thread::Thread;
use crate::Hours;

/// One atomic change to a forum. Serialized with the store codec
/// (via [`encode_event`]) into WAL frame payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ForumEvent {
    /// A new question opens a thread.
    NewQuestion {
        /// Stable question id of the new thread.
        question: u32,
        /// Asking user.
        author: u32,
        /// Creation time in [`Hours`].
        timestamp: f64,
        /// Natural-language body text.
        text: String,
        /// Code body text.
        code: String,
    },
    /// A new answer lands in an existing thread.
    NewAnswer {
        /// Thread being answered.
        question: u32,
        /// Answering user.
        author: u32,
        /// Creation time in [`Hours`].
        timestamp: f64,
        /// Natural-language body text.
        text: String,
        /// Code body text.
        code: String,
    },
    /// A post's net votes change by `delta`. Posts are created with
    /// zero votes; votes arrive as separate events.
    NewVote {
        /// Thread containing the post.
        question: u32,
        /// Post index within the thread: `0` is the question,
        /// `n ≥ 1` is the `n`-th answer in arrival order.
        post: u32,
        /// Net vote change (may be negative).
        delta: i32,
    },
}

/// Serializes an event into WAL frame-payload bytes.
pub fn encode_event(event: &ForumEvent) -> Vec<u8> {
    forumcast_store::record_to_bytes(event)
}

/// Deserializes WAL frame-payload bytes back into an event; `None`
/// marks a poison frame (the replay layer tallies it, never aborts).
pub fn decode_event(bytes: &[u8]) -> Option<ForumEvent> {
    forumcast_store::record_from_bytes(bytes, 0).ok()
}

/// Why an event was quarantined instead of applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PoisonReason {
    /// The frame payload (or its id varint) does not decode to a
    /// [`ForumEvent`].
    Undecodable,
    /// A timestamp is NaN or infinite.
    NonFiniteTimestamp,
    /// A timestamp is negative.
    NegativeTimestamp,
    /// A post body with neither text nor code.
    EmptyBody,
    /// A `NewQuestion` for a thread that already exists.
    DuplicateQuestion,
    /// A `NewAnswer`/`NewVote` for a thread that does not exist.
    UnknownQuestion,
    /// An answer timestamped before its question.
    AnswerBeforeQuestion,
    /// A `NewVote` for a post index the thread does not have.
    UnknownPost,
}

impl PoisonReason {
    /// All reasons, in check order.
    pub const ALL: [PoisonReason; 8] = [
        PoisonReason::Undecodable,
        PoisonReason::NonFiniteTimestamp,
        PoisonReason::NegativeTimestamp,
        PoisonReason::EmptyBody,
        PoisonReason::DuplicateQuestion,
        PoisonReason::UnknownQuestion,
        PoisonReason::AnswerBeforeQuestion,
        PoisonReason::UnknownPost,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            PoisonReason::Undecodable => "undecodable",
            PoisonReason::NonFiniteTimestamp => "non-finite timestamp",
            PoisonReason::NegativeTimestamp => "negative timestamp",
            PoisonReason::EmptyBody => "empty body",
            PoisonReason::DuplicateQuestion => "duplicate question",
            PoisonReason::UnknownQuestion => "unknown question",
            PoisonReason::AnswerBeforeQuestion => "answer before question",
            PoisonReason::UnknownPost => "unknown post",
        }
    }

    fn index(self) -> usize {
        PoisonReason::ALL
            .iter()
            .position(|r| *r == self)
            .expect("every reason is in ALL")
    }
}

impl fmt::Display for PoisonReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One quarantined event, kept (up to [`MAX_POISON_KEPT`]) as
/// operator evidence alongside the per-reason tally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoisonRecord {
    /// Event id, `None` when the frame's id varint was malformed.
    pub id: Option<u64>,
    /// Why the event was rejected.
    pub reason: PoisonReason,
}

/// Buffer bound for out-of-order arrivals: an event more than this
/// many ids ahead of the cursor forces the oldest buffered event to
/// apply (skipping the missing ids as gaps).
pub const MAX_PENDING: usize = 1024;

/// How many [`PoisonRecord`]s are kept verbatim; the tally always
/// counts everything.
pub const MAX_POISON_KEPT: usize = 32;

/// Tally of one replay: every event offered is accounted for as
/// applied, duplicate, or poison — `events_in == applied +
/// dup_skipped + poison_total()` always holds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Events offered (valid or not).
    pub events_in: u64,
    /// Events applied to the state.
    pub applied: u64,
    /// Duplicate deliveries skipped.
    pub dup_skipped: u64,
    /// Events that arrived ahead of the cursor and were buffered
    /// (includes the run following an id gap).
    pub reordered: u64,
    /// Missing ids skipped over (one per absent id).
    pub gaps: u64,
    /// Per-reason poison counts, indexed like [`PoisonReason::ALL`].
    pub poison: [u64; PoisonReason::ALL.len()],
}

impl ReplayReport {
    /// Total quarantined events across all reasons.
    pub fn poison_total(&self) -> u64 {
        self.poison.iter().sum()
    }

    /// Nonzero `(reason, count)` pairs in check order.
    pub fn poison_counts(&self) -> impl Iterator<Item = (PoisonReason, u64)> + '_ {
        PoisonReason::ALL
            .iter()
            .zip(self.poison.iter())
            .filter(|(_, n)| **n > 0)
            .map(|(r, n)| (*r, *n))
    }
}

impl fmt::Display for ReplayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "applied {}/{} event(s) ({} duplicate(s) skipped, {} buffered out of order, \
             {} id gap(s), {} poison)",
            self.applied,
            self.events_in,
            self.dup_skipped,
            self.reordered,
            self.gaps,
            self.poison_total()
        )?;
        let mut first = true;
        for (reason, n) in self.poison_counts() {
            f.write_str(if first { "; poison: " } else { ", " })?;
            write!(f, "{reason} ×{n}")?;
            first = false;
        }
        Ok(())
    }
}

/// One thread under construction: the question plus answers in
/// arrival (= id) order. [`ForumEvent::NewVote`] post indices refer
/// to this order.
#[derive(Debug, Clone, PartialEq)]
struct StateThread {
    question: Post,
    answers: Vec<Post>,
}

/// The fold of an id-ordered event stream: a forum. Deterministic by
/// construction — threads live in a `BTreeMap` and answers in
/// arrival order, so [`hash`](ForumState::hash) depends only on the
/// applied event sequence, never on delivery timing or thread count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ForumState {
    threads: BTreeMap<u32, StateThread>,
    max_author: Option<u32>,
}

impl ForumState {
    /// Empty forum.
    pub fn new() -> Self {
        ForumState::default()
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total posts (questions + answers).
    pub fn num_posts(&self) -> usize {
        self.threads.len()
            + self
                .threads
                .values()
                .map(|t| t.answers.len())
                .sum::<usize>()
    }

    /// Question ids with no answer yet, ascending — the serving
    /// layer's candidate set for response-time prediction.
    pub fn open_questions(&self) -> Vec<u32> {
        self.threads
            .iter()
            .filter(|(_, t)| t.answers.is_empty())
            .map(|(q, _)| *q)
            .collect()
    }

    /// Validates and applies one event, or explains the rejection.
    fn apply(&mut self, event: ForumEvent) -> Result<(), PoisonReason> {
        match event {
            ForumEvent::NewQuestion {
                question,
                author,
                timestamp,
                text,
                code,
            } => {
                let body = check_post(timestamp, &text, &code)?;
                if self.threads.contains_key(&question) {
                    return Err(PoisonReason::DuplicateQuestion);
                }
                self.threads.insert(
                    question,
                    StateThread {
                        question: Post::new(UserId(author), timestamp, 0, body),
                        answers: Vec::new(),
                    },
                );
                self.max_author = Some(self.max_author.unwrap_or(0).max(author));
                Ok(())
            }
            ForumEvent::NewAnswer {
                question,
                author,
                timestamp,
                text,
                code,
            } => {
                let body = check_post(timestamp, &text, &code)?;
                let thread = self
                    .threads
                    .get_mut(&question)
                    .ok_or(PoisonReason::UnknownQuestion)?;
                if timestamp < thread.question.timestamp {
                    return Err(PoisonReason::AnswerBeforeQuestion);
                }
                thread
                    .answers
                    .push(Post::new(UserId(author), timestamp, 0, body));
                self.max_author = Some(self.max_author.unwrap_or(0).max(author));
                Ok(())
            }
            ForumEvent::NewVote {
                question,
                post,
                delta,
            } => {
                let thread = self
                    .threads
                    .get_mut(&question)
                    .ok_or(PoisonReason::UnknownQuestion)?;
                let target = if post == 0 {
                    &mut thread.question
                } else {
                    thread
                        .answers
                        .get_mut(post as usize - 1)
                        .ok_or(PoisonReason::UnknownPost)?
                };
                target.votes = target.votes.saturating_add(delta);
                Ok(())
            }
        }
    }

    /// FNV-1a 64 over a canonical byte feed of the whole forum —
    /// the replay-equivalence fingerprint. Two states hash equal iff
    /// every thread, post, timestamp, vote, and body byte matches.
    pub fn hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.feed_u64(self.threads.len() as u64);
        for (qid, thread) in &self.threads {
            h.feed_u64(u64::from(*qid));
            h.feed_post(&thread.question);
            h.feed_u64(thread.answers.len() as u64);
            for answer in &thread.answers {
                h.feed_post(answer);
            }
        }
        h.finish()
    }

    /// Converts the state into a [`Dataset`] for the offline
    /// pipeline. User count is the highest author seen plus one.
    /// Total: the ingestor enforced every dataset invariant at apply
    /// time, so construction cannot fail.
    pub fn to_dataset(&self) -> Dataset {
        let threads = self
            .threads
            .iter()
            .map(|(qid, t)| Thread::new(*qid, t.question.clone(), t.answers.clone()))
            .collect();
        let num_users = self.max_author.map_or(0, |m| m + 1);
        Dataset::new(num_users, threads).expect("ingestor pre-enforced every dataset invariant")
    }
}

fn check_post(timestamp: f64, text: &str, code: &str) -> Result<PostBody, PoisonReason> {
    if !timestamp.is_finite() {
        return Err(PoisonReason::NonFiniteTimestamp);
    }
    if timestamp < 0.0 {
        return Err(PoisonReason::NegativeTimestamp);
    }
    if text.trim().is_empty() && code.trim().is_empty() {
        return Err(PoisonReason::EmptyBody);
    }
    Ok(PostBody::new(text, code))
}

/// FNV-1a 64-bit accumulator over the canonical state feed.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn feed(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn feed_u64(&mut self, v: u64) {
        self.feed(&v.to_le_bytes());
    }

    fn feed_post(&mut self, p: &Post) {
        self.feed_u64(u64::from(p.author.0));
        self.feed_u64(p.timestamp.to_bits());
        self.feed(&p.votes.to_le_bytes());
        self.feed_u64(p.body.text.len() as u64);
        self.feed(p.body.text.as_bytes());
        self.feed_u64(p.body.code.len() as u64);
        self.feed(p.body.code.as_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// One delivery into the [`Ingestor`]: a decoded event with its id,
/// or a poison frame. Produced by [`decode_delivery`] — kept as a
/// standalone value so segment decoding can run on worker threads
/// ahead of the sequential fold.
#[derive(Debug, Clone, PartialEq)]
pub enum Delivery {
    /// A decodable event.
    Event(u64, ForumEvent),
    /// An undecodable frame; the id is `None` when even the id
    /// varint was malformed.
    Poison(Option<u64>),
}

/// Decodes one WAL frame (id as parsed by the WAL, payload bytes)
/// into a [`Delivery`]. Pure.
pub fn decode_delivery(id: Option<u64>, payload: &[u8]) -> Delivery {
    match (id, decode_event(payload)) {
        (Some(id), Some(event)) => Delivery::Event(id, event),
        (id, _) => Delivery::Poison(id),
    }
}

/// The idempotent replay fold. See the module docs for the delivery
/// discipline (duplicates, bounded reorder, gaps, poison).
#[derive(Debug, Default)]
pub struct Ingestor {
    state: ForumState,
    next_id: u64,
    pending: BTreeMap<u64, Result<ForumEvent, PoisonReason>>,
    report: ReplayReport,
    poison_samples: Vec<PoisonRecord>,
}

impl Ingestor {
    /// Fresh ingestor with an empty state and the cursor at id 0.
    pub fn new() -> Self {
        Ingestor::default()
    }

    /// The next id the cursor expects.
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// The state folded so far.
    pub fn state(&self) -> &ForumState {
        &self.state
    }

    /// The running tally.
    pub fn report(&self) -> &ReplayReport {
        &self.report
    }

    /// Quarantined events kept verbatim (bounded by
    /// [`MAX_POISON_KEPT`]).
    pub fn poison_samples(&self) -> &[PoisonRecord] {
        &self.poison_samples
    }

    /// Offers one delivery.
    pub fn offer(&mut self, delivery: Delivery) {
        self.report.events_in += 1;
        match delivery {
            Delivery::Event(id, event) => self.deliver(id, Ok(event)),
            Delivery::Poison(Some(id)) => self.deliver(id, Err(PoisonReason::Undecodable)),
            Delivery::Poison(None) => self.poison(None, PoisonReason::Undecodable),
        }
    }

    /// Offers a decoded event directly (producer-side path).
    pub fn offer_event(&mut self, id: u64, event: ForumEvent) {
        self.offer(Delivery::Event(id, event));
    }

    /// Offers a raw WAL frame (id as the WAL parsed it, payload
    /// bytes), decoding it here.
    pub fn offer_frame(&mut self, id: Option<u64>, payload: &[u8]) {
        self.offer(decode_delivery(id, payload));
    }

    fn deliver(&mut self, id: u64, event: Result<ForumEvent, PoisonReason>) {
        if id < self.next_id || self.pending.contains_key(&id) {
            self.report.dup_skipped += 1;
            forumcast_obs::counter_add("ingest.dup_skipped", 1);
            return;
        }
        if id > self.next_id {
            self.pending.insert(id, event);
            self.report.reordered += 1;
            forumcast_obs::counter_add("ingest.reordered", 1);
            // Bounded buffer: force the oldest pending event through,
            // conceding the ids before it as gaps.
            while self.pending.len() > MAX_PENDING {
                let (forced_id, forced) = self
                    .pending
                    .pop_first()
                    .expect("pending is non-empty past the bound");
                self.skip_to(forced_id);
                self.apply(forced_id, forced);
                self.next_id = forced_id + 1;
                self.drain_pending();
            }
            return;
        }
        self.apply(id, event);
        self.next_id = id + 1;
        self.drain_pending();
    }

    /// Drains all pending events, skipping over ids that never
    /// arrived, and returns the final tally. Call once the stream is
    /// exhausted.
    pub fn finish(&mut self) -> &ReplayReport {
        while let Some((id, event)) = self.pending.pop_first() {
            self.skip_to(id);
            self.apply(id, event);
            self.next_id = id + 1;
        }
        &self.report
    }

    fn drain_pending(&mut self) {
        while let Some(event) = self.pending.remove(&self.next_id) {
            self.apply(self.next_id, event);
            self.next_id += 1;
        }
    }

    fn skip_to(&mut self, id: u64) {
        let missing = id.saturating_sub(self.next_id);
        if missing > 0 {
            self.report.gaps += missing;
            forumcast_obs::counter_add("ingest.gaps", missing);
        }
    }

    fn apply(&mut self, id: u64, event: Result<ForumEvent, PoisonReason>) {
        match event.and_then(|ev| self.state.apply(ev)) {
            Ok(()) => self.report.applied += 1,
            Err(reason) => self.poison(Some(id), reason),
        }
    }

    fn poison(&mut self, id: Option<u64>, reason: PoisonReason) {
        self.report.poison[reason.index()] += 1;
        forumcast_obs::counter_add("ingest.poison", 1);
        if self.poison_samples.len() < MAX_POISON_KEPT {
            self.poison_samples.push(PoisonRecord { id, reason });
        }
    }
}

/// Flattens a [`Dataset`] into its event stream: one `NewQuestion`
/// per thread, one `NewAnswer` per answer, one `NewVote` per post
/// with nonzero votes, globally ordered by (timestamp, kind,
/// question, post index). Replaying the stream in order rebuilds the
/// dataset exactly (see [`ForumState::to_dataset`]).
pub fn events_from_dataset(dataset: &Dataset) -> Vec<ForumEvent> {
    events_from_threads(dataset.threads())
}

/// Flattens a slice of [`Thread`]s into its event stream, ordered by
/// (timestamp, kind, question, post index) — the building block of
/// [`events_from_dataset`], exposed so shard-by-shard producers (the
/// synth streaming generator) can emit per-shard event batches
/// without materializing a full [`Dataset`].
pub fn events_from_threads(threads: &[Thread]) -> Vec<ForumEvent> {
    // Sort key: votes (kind 2) sort after the post they touch (same
    // timestamp, kind 0/1), answers after their question.
    let mut keyed: Vec<(Hours, u8, u32, u32, ForumEvent)> = Vec::new();
    for thread in threads {
        let qid = thread.id.0;
        let q = &thread.question;
        keyed.push((
            q.timestamp,
            0,
            qid,
            0,
            ForumEvent::NewQuestion {
                question: qid,
                author: q.author.0,
                timestamp: q.timestamp,
                text: q.body.text.clone(),
                code: q.body.code.clone(),
            },
        ));
        if q.votes != 0 {
            keyed.push((
                q.timestamp,
                2,
                qid,
                0,
                ForumEvent::NewVote {
                    question: qid,
                    post: 0,
                    delta: q.votes,
                },
            ));
        }
        for (i, a) in thread.answers.iter().enumerate() {
            let post = i as u32 + 1;
            keyed.push((
                a.timestamp,
                1,
                qid,
                post,
                ForumEvent::NewAnswer {
                    question: qid,
                    author: a.author.0,
                    timestamp: a.timestamp,
                    text: a.body.text.clone(),
                    code: a.body.code.clone(),
                },
            ));
            if a.votes != 0 {
                keyed.push((
                    a.timestamp,
                    2,
                    qid,
                    post,
                    ForumEvent::NewVote {
                        question: qid,
                        post,
                        delta: a.votes,
                    },
                ));
            }
        }
    }
    keyed.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
            .then(a.3.cmp(&b.3))
    });
    keyed.into_iter().map(|(_, _, _, _, ev)| ev).collect()
}

/// The result of replaying a WAL directory.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Segments scanned.
    pub segments: usize,
    /// Segments carrying damage a `wal repair` would heal.
    pub damaged: usize,
    /// The folded forum.
    pub state: ForumState,
    /// Delivery tally.
    pub report: ReplayReport,
    /// Quarantined-event evidence (bounded).
    pub poison_samples: Vec<PoisonRecord>,
}

/// Replays a WAL directory into a [`ForumState`]: segments are
/// decoded on up to `threads` worker threads (0 = auto), then folded
/// sequentially in segment/frame order — so the resulting
/// [`ForumState::hash`] is identical at any thread count. Does not
/// modify the log; run [`Wal::repair`] first to heal crash damage.
///
/// # Errors
///
/// [`WalError::Io`] when the directory or a segment cannot be read.
pub fn replay_wal(dir: &Path, threads: usize) -> Result<ReplayOutcome, WalError> {
    let segments = scan_dir(dir)?;
    let max_threads = forumcast_par::resolve_threads(threads);
    let indexed: Vec<(u64, &forumcast_wal::WalSegment)> = segments
        .iter()
        .enumerate()
        .map(|(i, s)| (i as u64, s))
        .collect();
    let decoded: Vec<Vec<Delivery>> =
        forumcast_par::parallel_map(&indexed, max_threads, |(unit, seg)| {
            // Detached span: the decode path is the same whichever worker
            // ran the segment, keeping traces thread-count-invariant.
            let _g = forumcast_obs::task_span("wal.replay.segment", *unit);
            seg.entries
                .iter()
                .map(|e| decode_delivery(e.id, &e.payload))
                .collect()
        });
    let mut ingestor = Ingestor::new();
    let mut total = 0u64;
    for batch in decoded {
        for delivery in batch {
            total += 1;
            ingestor.offer(delivery);
        }
    }
    forumcast_obs::counter_add("wal.replay.events", total);
    ingestor.finish();
    Ok(ReplayOutcome {
        segments: segments.len(),
        damaged: segments.iter().filter(|s| s.damage.is_some()).count(),
        state: ingestor.state,
        report: ingestor.report,
        poison_samples: ingestor.poison_samples,
    })
}

/// The result of [`ingest_events`]: what recovery found, where the
/// producer resumed, and the folded state.
#[derive(Debug)]
pub struct IngestOutcome {
    /// What opening the log healed/found.
    pub recovery: WalRecovery,
    /// First event index actually appended (everything below was
    /// already durable in the log).
    pub resumed_from: u64,
    /// Times the WAL was reopened to heal a torn append mid-run.
    pub reopens: u64,
    /// The folded forum (recovered prefix + newly appended events).
    pub state: ForumState,
    /// Delivery tally (covers recovered and new events).
    pub report: ReplayReport,
}

/// Appends `events` (ids = indices) to the WAL at `dir`, folding them
/// into a [`ForumState`] as it goes. Idempotent: events already
/// durable in the log are replayed, not re-appended, and the producer
/// resumes from the log's first missing id — so re-running after a
/// crash (or a kill-storm) converges to the same state and hash.
///
/// Probes the delivery fault sites: `wal-torn-append` (append tears,
/// the log is reopened/healed in place and the append retried),
/// `wal-dup-deliver` (the event is appended and offered twice), and
/// `wal-reorder` (the event swaps delivery order with its successor).
/// All three are absorbed by the replay discipline and show up only
/// in the tallies.
///
/// # Errors
///
/// [`WalError`] on unrecoverable log failure.
pub fn ingest_events(
    dir: &Path,
    cfg: &WalConfig,
    events: &[ForumEvent],
) -> Result<IngestOutcome, WalError> {
    ingest_event_iter(dir, cfg, events.iter().cloned())
}

/// Streaming form of [`ingest_events`]: consumes any event iterator
/// (ids = stream indices) so producers like the sharded synth
/// generator can feed the log without materializing the full event
/// vector — at 10M posts the producer holds one shard batch at a
/// time, never the whole forum. Events already durable in the log are
/// pulled from the iterator and discarded (never re-appended), so the
/// idempotent-resume contract is identical to the slice form.
///
/// # Errors
///
/// [`WalError`] on unrecoverable log failure.
pub fn ingest_event_iter<I>(
    dir: &Path,
    cfg: &WalConfig,
    events: I,
) -> Result<IngestOutcome, WalError>
where
    I: IntoIterator<Item = ForumEvent>,
{
    let (mut wal, recovery) = Wal::open(dir, cfg.clone())?;
    let mut ingestor = Ingestor::new();
    // Seed the fold with what the log already holds.
    for seg in scan_dir(dir)? {
        for entry in &seg.entries {
            ingestor.offer_frame(entry.id, &entry.payload);
        }
    }
    let mut iter = events.into_iter().peekable();
    // Skip the already-durable prefix; the producer resumes from the
    // log's first missing id (or the stream end, whichever is first).
    let mut i = 0u64;
    while i < recovery.next_missing_id && iter.next().is_some() {
        i += 1;
    }
    let resumed_from = i;
    let mut reopens = 0u64;
    while let Some(event) = iter.next() {
        let id = i;
        if iter.peek().is_some() && fault::fires(FaultSite::WalReorder, id) {
            // Swap delivery order with the successor: the log itself
            // records the swapped order, so replay sees a genuine
            // reorder too.
            let next = iter.next().expect("peeked");
            deliver(
                &mut wal,
                &mut ingestor,
                &mut reopens,
                dir,
                cfg,
                id + 1,
                &next,
            )?;
            deliver(&mut wal, &mut ingestor, &mut reopens, dir, cfg, id, &event)?;
            i += 2;
            continue;
        }
        deliver(&mut wal, &mut ingestor, &mut reopens, dir, cfg, id, &event)?;
        if fault::fires(FaultSite::WalDupDeliver, id) {
            deliver(&mut wal, &mut ingestor, &mut reopens, dir, cfg, id, &event)?;
        }
        i += 1;
    }
    wal.finish()?;
    ingestor.finish();
    Ok(IngestOutcome {
        recovery,
        resumed_from,
        reopens,
        state: ingestor.state,
        report: ingestor.report,
    })
}

/// One append + offer, healing torn appends by reopening the log
/// (recovery truncates the torn tail) and retrying.
fn deliver(
    wal: &mut Wal,
    ingestor: &mut Ingestor,
    reopens: &mut u64,
    dir: &Path,
    cfg: &WalConfig,
    id: u64,
    event: &ForumEvent,
) -> Result<(), WalError> {
    let bytes = encode_event(event);
    let mut attempts = 0;
    loop {
        match wal.append(id, &bytes) {
            Ok(()) => break,
            Err(WalError::TornAppend { .. } | WalError::Poisoned) if attempts < 3 => {
                attempts += 1;
                *reopens += 1;
                let (reopened, _) = Wal::open(dir, cfg.clone())?;
                *wal = reopened;
            }
            Err(e) => return Err(e),
        }
    }
    ingestor.offer_event(id, event.clone());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let t0 = Thread::new(
            0,
            Post::new(UserId(0), 0.5, 3, PostBody::words("how to sort")),
            vec![
                Post::new(UserId(1), 1.5, 5, PostBody::new("use sort", "v.sort();")),
                Post::new(UserId(2), 2.0, 0, PostBody::words("bubble sort")),
            ],
        );
        let t1 = Thread::new(
            1,
            Post::new(UserId(2), 1.0, -1, PostBody::words("why borrowck")),
            vec![Post::new(
                UserId(0),
                9.0,
                2,
                PostBody::words("read the book"),
            )],
        );
        Dataset::new(3, vec![t0, t1]).expect("valid dataset")
    }

    fn in_order(events: &[ForumEvent]) -> Ingestor {
        let mut ing = Ingestor::new();
        for (i, ev) in events.iter().enumerate() {
            ing.offer_event(i as u64, ev.clone());
        }
        ing.finish();
        ing
    }

    #[test]
    fn event_bytes_roundtrip() {
        let ev = ForumEvent::NewAnswer {
            question: 7,
            author: 3,
            timestamp: 12.25,
            text: "body".into(),
            code: "fn x() {}".into(),
        };
        assert_eq!(decode_event(&encode_event(&ev)), Some(ev));
        assert_eq!(decode_event(b"not an event"), None);
    }

    #[test]
    fn dataset_roundtrips_through_its_event_stream() {
        let ds = sample_dataset();
        let events = events_from_dataset(&ds);
        // 5 posts, 4 of them with nonzero votes.
        assert_eq!(events.len(), 9);
        let ing = in_order(&events);
        assert_eq!(ing.report().applied, 9);
        assert_eq!(ing.report().poison_total(), 0);
        let rebuilt = ing.state().to_dataset();
        assert_eq!(rebuilt, ds, "replay must rebuild the dataset exactly");
    }

    #[test]
    fn duplicate_deliveries_are_skipped_and_counted() {
        let events = events_from_dataset(&sample_dataset());
        let baseline = in_order(&events).state().hash();

        let mut ing = Ingestor::new();
        for (i, ev) in events.iter().enumerate() {
            ing.offer_event(i as u64, ev.clone());
            ing.offer_event(i as u64, ev.clone()); // crash-resume re-delivery
        }
        ing.finish();
        assert_eq!(ing.state().hash(), baseline);
        assert_eq!(ing.report().dup_skipped, events.len() as u64);
        assert_eq!(ing.report().applied, events.len() as u64);
    }

    #[test]
    fn bounded_reorder_is_buffered_and_applied_in_id_order() {
        let events = events_from_dataset(&sample_dataset());
        let baseline = in_order(&events).state().hash();

        // Deliver in pairs, each pair swapped.
        let mut ing = Ingestor::new();
        let mut i = 0;
        while i < events.len() {
            if i + 1 < events.len() {
                ing.offer_event(i as u64 + 1, events[i + 1].clone());
            }
            ing.offer_event(i as u64, events[i].clone());
            i += 2;
        }
        ing.finish();
        assert_eq!(ing.state().hash(), baseline);
        assert!(ing.report().reordered > 0);
        assert_eq!(ing.report().gaps, 0);
        assert_eq!(ing.report().poison_total(), 0);
    }

    #[test]
    fn poison_events_are_tallied_never_applied_never_fatal() {
        let mut ing = Ingestor::new();
        ing.offer_event(
            0,
            ForumEvent::NewQuestion {
                question: 0,
                author: 0,
                timestamp: 1.0,
                text: "q".into(),
                code: String::new(),
            },
        );
        // Unknown question, answer before question, duplicate
        // question, bad timestamps, empty body, unknown post,
        // undecodable frame — all absorbed.
        ing.offer_event(
            1,
            ForumEvent::NewAnswer {
                question: 99,
                author: 1,
                timestamp: 2.0,
                text: "a".into(),
                code: String::new(),
            },
        );
        ing.offer_event(
            2,
            ForumEvent::NewAnswer {
                question: 0,
                author: 1,
                timestamp: 0.25,
                text: "too early".into(),
                code: String::new(),
            },
        );
        ing.offer_event(
            3,
            ForumEvent::NewQuestion {
                question: 0,
                author: 2,
                timestamp: 3.0,
                text: "again".into(),
                code: String::new(),
            },
        );
        ing.offer_event(
            4,
            ForumEvent::NewQuestion {
                question: 1,
                author: 2,
                timestamp: f64::NAN,
                text: "nan".into(),
                code: String::new(),
            },
        );
        ing.offer_event(
            5,
            ForumEvent::NewQuestion {
                question: 1,
                author: 2,
                timestamp: -4.0,
                text: "negative".into(),
                code: String::new(),
            },
        );
        ing.offer_event(
            6,
            ForumEvent::NewQuestion {
                question: 1,
                author: 2,
                timestamp: 4.0,
                text: "   ".into(),
                code: String::new(),
            },
        );
        ing.offer_event(
            7,
            ForumEvent::NewVote {
                question: 0,
                post: 5,
                delta: 1,
            },
        );
        ing.offer_frame(Some(8), b"garbage payload");
        ing.offer_frame(None, b"frame with a broken id varint");
        let report = ing.finish().clone();

        assert_eq!(report.events_in, 10);
        assert_eq!(report.applied, 1, "only the first question applies");
        assert_eq!(report.poison_total(), 9);
        assert_eq!(ing.state().num_threads(), 1);
        for reason in PoisonReason::ALL {
            assert!(
                report.poison[PoisonReason::ALL.iter().position(|r| *r == reason).unwrap()] > 0,
                "reason {reason} must be exercised"
            );
        }
        assert_eq!(ing.poison_samples().len(), 9);
        assert!(report.to_string().contains("poison"), "{report}");
    }

    #[test]
    fn gaps_are_skipped_and_counted_at_finish() {
        let events = events_from_dataset(&sample_dataset());
        let mut ing = Ingestor::new();
        // Ids 0 and 1 never arrive (their segment was quarantined).
        for (i, ev) in events.iter().enumerate().skip(2) {
            ing.offer_event(i as u64, ev.clone());
        }
        let report = ing.finish();
        assert_eq!(report.gaps, 2);
        assert_eq!(
            report.applied + report.poison_total(),
            events.len() as u64 - 2
        );
    }

    #[test]
    fn pending_overflow_forces_the_oldest_event_through() {
        let mut ing = Ingestor::new();
        // Event 0 never arrives; MAX_PENDING + 1 future events force
        // the buffer bound.
        for i in 0..=(MAX_PENDING as u64) {
            ing.offer_event(
                i + 1,
                ForumEvent::NewQuestion {
                    question: i as u32 + 1,
                    author: 0,
                    timestamp: i as f64,
                    text: "q".into(),
                    code: String::new(),
                },
            );
        }
        assert!(
            ing.report().gaps >= 1,
            "the forced apply concedes id 0 as a gap"
        );
        ing.finish();
        assert_eq!(ing.report().applied, MAX_PENDING as u64 + 1);
    }

    #[test]
    fn replay_report_accounting_identity_holds() {
        let events = events_from_dataset(&sample_dataset());
        let mut ing = Ingestor::new();
        for (i, ev) in events.iter().enumerate() {
            ing.offer_event(i as u64, ev.clone());
            if i % 3 == 0 {
                ing.offer_event(i as u64, ev.clone());
            }
        }
        ing.offer_frame(Some(events.len() as u64), b"junk");
        let report = ing.finish();
        assert_eq!(
            report.events_in,
            report.applied + report.dup_skipped + report.poison_total()
        );
    }
}
