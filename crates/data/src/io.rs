//! JSON import/export for datasets.
//!
//! Two formats are supported:
//!
//! * the **native** format — a direct serde serialization of
//!   [`Dataset`], produced by [`to_json`] / consumed by [`from_json`];
//! * a **record** format ([`ThreadRecord`]) that resembles the shape of
//!   a Stack Exchange API crawl (one record per question with embedded
//!   answers, string user keys, HTML bodies, epoch-second timestamps).
//!   [`import_records`] normalizes it: user keys are mapped to dense
//!   [`UserId`]s, timestamps are rebased to hours since the earliest
//!   post, and bodies are split into words/code via
//!   [`PostBody::from_html`].

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{Read, Write};

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::post::{Post, PostBody, UserId};
use crate::thread::Thread;

/// Serializes a dataset to pretty JSON.
///
/// # Errors
///
/// Returns [`DataError::Json`] if serialization fails.
pub fn to_json(dataset: &Dataset) -> Result<String, DataError> {
    Ok(serde_json::to_string_pretty(dataset)?)
}

/// Deserializes a dataset from native JSON, re-validating invariants.
///
/// # Errors
///
/// Returns [`DataError`] on malformed JSON or invariant violations.
pub fn from_json(json: &str) -> Result<Dataset, DataError> {
    let ds: Dataset = serde_json::from_str(json)?;
    // Re-run validation: the JSON may come from an untrusted source.
    Dataset::new(ds.num_users(), ds.threads().to_vec())
}

/// Writes a dataset as JSON to any [`Write`] sink. A `&mut` reference
/// may be passed for `w`.
///
/// # Errors
///
/// Returns [`DataError::Json`] on serialization or I/O failure.
pub fn write_json<W: Write>(dataset: &Dataset, mut w: W) -> Result<(), DataError> {
    let json = to_json(dataset)?;
    w.write_all(json.as_bytes())
        .map_err(|e| DataError::Json(e.to_string()))
}

/// Reads a dataset from any [`Read`] source. A `&mut` reference may be
/// passed for `r`.
///
/// # Errors
///
/// Returns [`DataError::Json`] on I/O failure and [`DataError`] on
/// malformed content.
pub fn read_json<R: Read>(mut r: R) -> Result<Dataset, DataError> {
    let mut buf = String::new();
    r.read_to_string(&mut buf)
        .map_err(|e| DataError::Json(e.to_string()))?;
    from_json(&buf)
}

/// One post in the external record format.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PostRecord {
    /// External user key (e.g. a Stack Exchange account id).
    pub user: String,
    /// Creation time in epoch seconds.
    pub creation_epoch_s: f64,
    /// Net score / votes.
    pub score: i32,
    /// HTML body; `<code>` spans become [`PostBody::code`].
    pub body_html: String,
}

/// One question thread in the external record format.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadRecord {
    /// External question id.
    pub question_id: u32,
    /// The question post.
    pub question: PostRecord,
    /// The answers, any order.
    #[serde(default)]
    pub answers: Vec<PostRecord>,
}

/// Imports a crawl in the record format, normalizing user ids and
/// timestamps. Returns the dataset together with the user-key → id
/// mapping, so callers can trace predictions back to external users.
///
/// # Errors
///
/// Returns [`DataError::NonFiniteTimestamp`] (naming the offending
/// question id) when any `creation_epoch_s` is NaN or infinite —
/// rejected up front so NaN can never flow into the epoch rebasing
/// below — and [`DataError`] when the normalized records violate
/// dataset invariants (e.g. an answer timestamped before its
/// question). For noisy crawls that should be salvaged rather than
/// rejected, see [`crate::quarantine::import_records_lenient`].
pub fn import_records(
    records: &[ThreadRecord],
) -> Result<(Dataset, HashMap<String, UserId>), DataError> {
    for r in records {
        let all_finite = r.question.creation_epoch_s.is_finite()
            && r.answers.iter().all(|a| a.creation_epoch_s.is_finite());
        if !all_finite {
            return Err(DataError::NonFiniteTimestamp {
                question: r.question_id,
            });
        }
    }
    let mut user_ids: HashMap<String, UserId> = HashMap::new();
    let intern = |key: &str, user_ids: &mut HashMap<String, UserId>| {
        let next = user_ids.len() as u32;
        *user_ids.entry(key.to_owned()).or_insert(UserId(next))
    };
    let epoch = records
        .iter()
        .flat_map(|r| {
            std::iter::once(r.question.creation_epoch_s)
                .chain(r.answers.iter().map(|a| a.creation_epoch_s))
        })
        .fold(f64::INFINITY, f64::min);
    let to_hours = |s: f64| {
        if epoch.is_finite() {
            (s - epoch) / 3600.0
        } else {
            0.0
        }
    };

    let mut threads = Vec::with_capacity(records.len());
    for r in records {
        let qa = intern(&r.question.user, &mut user_ids);
        let question = Post::new(
            qa,
            to_hours(r.question.creation_epoch_s),
            r.question.score,
            PostBody::from_html(&r.question.body_html),
        );
        let answers = r
            .answers
            .iter()
            .map(|a| {
                let u = intern(&a.user, &mut user_ids);
                Post::new(
                    u,
                    to_hours(a.creation_epoch_s),
                    a.score,
                    PostBody::from_html(&a.body_html),
                )
            })
            .collect();
        threads.push(Thread::new(r.question_id, question, answers));
    }
    let ds = Dataset::new(user_ids.len() as u32, threads)?;
    Ok((ds, user_ids))
}

/// Parses the record format from a JSON array string and imports it.
///
/// # Errors
///
/// Returns [`DataError::Json`] on malformed JSON, or any error from
/// [`import_records`].
pub fn import_records_json(json: &str) -> Result<(Dataset, HashMap<String, UserId>), DataError> {
    let records: Vec<ThreadRecord> = serde_json::from_str(json)?;
    import_records(&records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<ThreadRecord> {
        vec![
            ThreadRecord {
                question_id: 100,
                question: PostRecord {
                    user: "alice".into(),
                    creation_epoch_s: 1_000_000.0,
                    score: 2,
                    body_html: "how to <code>sort</code> fast".into(),
                },
                answers: vec![PostRecord {
                    user: "bob".into(),
                    creation_epoch_s: 1_003_600.0,
                    score: 5,
                    body_html: "use <code>sort_unstable</code>".into(),
                }],
            },
            ThreadRecord {
                question_id: 101,
                question: PostRecord {
                    user: "bob".into(),
                    creation_epoch_s: 1_007_200.0,
                    score: 0,
                    body_html: "plain question".into(),
                },
                answers: vec![],
            },
        ]
    }

    #[test]
    fn import_normalizes_users_and_times() {
        let (ds, users) = import_records(&sample_records()).unwrap();
        assert_eq!(ds.num_users(), 2);
        assert_eq!(users.len(), 2);
        let t0 = ds.thread(crate::thread::QuestionId(100)).unwrap();
        assert_eq!(t0.asked_at(), 0.0);
        assert_eq!(t0.answers[0].timestamp, 1.0); // 3600 s later
        assert_eq!(t0.answers[0].body.code, "sort_unstable");
        let t1 = ds.thread(crate::thread::QuestionId(101)).unwrap();
        assert_eq!(t1.asked_at(), 2.0);
    }

    #[test]
    fn import_reuses_user_ids_across_threads() {
        let (ds, users) = import_records(&sample_records()).unwrap();
        let bob = users["bob"];
        let t0 = ds.thread(crate::thread::QuestionId(100)).unwrap();
        let t1 = ds.thread(crate::thread::QuestionId(101)).unwrap();
        assert_eq!(t0.answers[0].author, bob);
        assert_eq!(t1.asker(), bob);
    }

    #[test]
    fn native_json_roundtrip() {
        let (ds, _) = import_records(&sample_records()).unwrap();
        let json = to_json(&ds).unwrap();
        let back = from_json(&json).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(matches!(from_json("not json"), Err(DataError::Json(_))));
    }

    #[test]
    fn from_json_revalidates_invariants() {
        // Hand-craft JSON where an author id exceeds num_users.
        let json = r#"{
            "num_users": 1,
            "threads": [{
                "id": 0,
                "question": {"author": 5, "timestamp": 0.0, "votes": 0,
                             "body": {"text": "", "code": ""}},
                "answers": []
            }]
        }"#;
        assert!(matches!(
            from_json(json),
            Err(DataError::UserOutOfRange { user: 5, .. })
        ));
    }

    #[test]
    fn write_and_read_json_streams() {
        let (ds, _) = import_records(&sample_records()).unwrap();
        let mut buf = Vec::new();
        write_json(&ds, &mut buf).unwrap();
        let back = read_json(buf.as_slice()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn import_records_json_parses_array() {
        let json = serde_json::to_string(&sample_records()).unwrap();
        let (ds, _) = import_records_json(&json).unwrap();
        assert_eq!(ds.num_questions(), 2);
    }

    #[test]
    fn strict_import_rejects_non_finite_epoch_seconds() {
        // NaN question timestamp: named by question id.
        let mut records = sample_records();
        records[1].question.creation_epoch_s = f64::NAN;
        match import_records(&records) {
            Err(DataError::NonFiniteTimestamp { question }) => assert_eq!(question, 101),
            other => panic!("expected NonFiniteTimestamp, got {other:?}"),
        }
        // Infinite answer timestamp: the containing thread is named.
        let mut records = sample_records();
        records[0].answers[0].creation_epoch_s = f64::INFINITY;
        match import_records(&records) {
            Err(DataError::NonFiniteTimestamp { question }) => assert_eq!(question, 100),
            other => panic!("expected NonFiniteTimestamp, got {other:?}"),
        }
        let err = import_records(&records).unwrap_err();
        assert!(err.to_string().contains("q100"), "{err}");
    }

    #[test]
    fn import_empty_records_yields_empty_dataset() {
        let (ds, users) = import_records(&[]).unwrap();
        assert_eq!(ds.num_questions(), 0);
        assert!(users.is_empty());
    }
}
