//! Calibration gate against the paper's Section III descriptive
//! statistics.
//!
//! The synthetic generator is tuned so that its *scale-free* shape
//! statistics match the StackExchange-style corpus the paper
//! characterizes (20,923 questions / 19,934 answers / 14,643 users,
//! ≈40% of questions unanswered, ≈1.47 answers per answered
//! question, response delays concentrated within hours). Absolute
//! counts and matrix density grow with the scale preset, so the gate
//! checks only ratios and delay quantiles, each against a tolerance
//! band centered on the paper's value:
//!
//! * fraction of questions with no answer (§III-A preprocessing drops
//!   these — the paper reports ≈40%);
//! * answers per *answered* question (≈1.47);
//! * posts (questions + answers) per registered user (≈2.79);
//! * median and 90th-percentile response delay in hours (the paper's
//!   delay CDF puts the bulk of answers within the first day).
//!
//! `forumcast stats --gate` prints the table and exits non-zero when
//! any metric drifts out of its band, which is how check.sh catches a
//! generator change that silently walks the synthetic forum away from
//! the regime the paper's models were built for.

use std::fmt;

use crate::dataset::Dataset;

/// One gated metric: the measured value and its acceptance band.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationCheck {
    /// Human-readable metric name.
    pub name: &'static str,
    /// Value measured on the dataset.
    pub value: f64,
    /// Inclusive lower bound of the acceptance band.
    pub lo: f64,
    /// Inclusive upper bound of the acceptance band.
    pub hi: f64,
}

impl CalibrationCheck {
    /// True when the measured value lies inside the band.
    pub fn ok(&self) -> bool {
        self.value >= self.lo && self.value <= self.hi
    }
}

/// The full set of Section III checks for one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// Every gated metric, in presentation order.
    pub checks: Vec<CalibrationCheck>,
}

impl CalibrationReport {
    /// The checks whose values fell outside their §III band.
    pub fn drifted(&self) -> Vec<&CalibrationCheck> {
        self.checks.iter().filter(|c| !c.ok()).collect()
    }

    /// True when every metric is inside its band.
    pub fn passed(&self) -> bool {
        self.checks.iter().all(CalibrationCheck::ok)
    }
}

impl fmt::Display for CalibrationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self.checks.iter().map(|c| c.name.len()).max().unwrap_or(0);
        for c in &self.checks {
            writeln!(
                f,
                "  {:<width$}  {:>8.3}  in [{:.3}, {:.3}]  {}",
                c.name,
                c.value,
                c.lo,
                c.hi,
                if c.ok() { "ok" } else { "DRIFT" },
            )?;
        }
        Ok(())
    }
}

/// `p`-quantile of an ascending-sorted slice (nearest-rank; 0 when
/// empty).
fn quantile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64) * p) as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Measures the §III shape statistics of a **raw** (un-preprocessed)
/// dataset and compares each against its acceptance band. Run this
/// before [`Dataset::preprocess`]: preprocessing drops exactly the
/// unanswered questions the first check counts.
pub fn calibrate(dataset: &Dataset) -> CalibrationReport {
    let num_questions = dataset.num_questions();
    let num_answers = dataset.num_answers();
    let answered = dataset
        .threads()
        .iter()
        .filter(|t| !t.answers.is_empty())
        .count();
    let mut delays: Vec<f64> = dataset
        .threads()
        .iter()
        .flat_map(|t| {
            let asked = t.asked_at();
            t.answers.iter().map(move |a| a.timestamp - asked)
        })
        .collect();
    delays.sort_by(f64::total_cmp);

    let frac = |num: usize, den: usize| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    let checks = vec![
        // ≈40% of questions get no answer (§III-A).
        CalibrationCheck {
            name: "unanswered questions (fraction)",
            value: frac(num_questions - answered, num_questions),
            lo: 0.30,
            hi: 0.50,
        },
        // 19,934 answers over ≈12.6k answered questions ≈ 1.47.
        CalibrationCheck {
            name: "answers per answered question",
            value: frac(num_answers, answered),
            lo: 1.25,
            hi: 1.75,
        },
        // (20,923 + 19,934) posts / 14,643 users ≈ 2.79.
        CalibrationCheck {
            name: "posts per registered user",
            value: frac(num_questions + num_answers, dataset.num_users() as usize),
            lo: 2.2,
            hi: 3.5,
        },
        // Delay CDF: the bulk of answers arrive within hours …
        CalibrationCheck {
            name: "response delay p50 (hours)",
            value: quantile(&delays, 0.5),
            lo: 0.25,
            hi: 12.0,
        },
        // … and nearly all within the first day or two.
        CalibrationCheck {
            name: "response delay p90 (hours)",
            value: quantile(&delays, 0.9),
            lo: 1.0,
            hi: 48.0,
        },
    ];
    CalibrationReport { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::post::{Post, PostBody, UserId};
    use crate::thread::Thread;

    /// A hand-built forum matching the §III shape: 5 questions (2
    /// unanswered = 40%), 3 answered questions carrying 4 answers
    /// (1.33 each), 9 posts over 3 users (3.0 each), delays of a few
    /// hours.
    fn calibrated_forum() -> Dataset {
        let post = |u: u32, ts: f64| Post::new(UserId(u), ts, 0, PostBody::default());
        let threads = vec![
            Thread::new(0, post(0, 0.0), vec![post(1, 2.0), post(2, 9.0)]),
            Thread::new(1, post(1, 1.0), vec![post(2, 4.0)]),
            Thread::new(2, post(2, 2.0), vec![post(0, 3.5)]),
            Thread::new(3, post(0, 3.0), vec![]),
            Thread::new(4, post(1, 4.0), vec![]),
        ];
        Dataset::new(3, threads).unwrap()
    }

    #[test]
    fn calibrated_forum_passes_every_check() {
        let report = calibrate(&calibrated_forum());
        assert!(report.passed(), "{report}");
        assert!(report.drifted().is_empty());
        assert_eq!(report.checks.len(), 5);
    }

    #[test]
    fn pathological_forum_is_flagged_with_named_drift() {
        // Every question answered instantly by the asker's crowd:
        // unanswered fraction 0 and near-zero delays must both drift.
        let post = |u: u32, ts: f64| Post::new(UserId(u), ts, 0, PostBody::default());
        let threads: Vec<Thread> = (0..4)
            .map(|i| Thread::new(i, post(0, f64::from(i)), vec![post(1, f64::from(i) + 0.01)]))
            .collect();
        // 3 users keep posts/user (8/3 ≈ 2.67) inside its band so the
        // rendering shows both verdicts.
        let ds = Dataset::new(3, threads).unwrap();
        let report = calibrate(&ds);
        assert!(!report.passed());
        let names: Vec<&str> = report.drifted().iter().map(|c| c.name).collect();
        assert!(
            names.contains(&"unanswered questions (fraction)"),
            "{names:?}"
        );
        assert!(names.contains(&"response delay p50 (hours)"), "{names:?}");
        let rendered = report.to_string();
        assert!(rendered.contains("DRIFT"), "{rendered}");
        assert!(rendered.contains("ok"), "{rendered}");
    }

    #[test]
    fn empty_dataset_does_not_panic_and_drifts() {
        let ds = Dataset::new(1, Vec::new()).unwrap();
        let report = calibrate(&ds);
        assert!(!report.passed());
    }
}
