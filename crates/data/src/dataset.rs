//! The dataset container and the paper's preprocessing pipeline.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::error::DataError;
use crate::post::UserId;
use crate::stats::{DatasetStats, PreprocessReport};
use crate::thread::{QuestionId, Thread};
use crate::Hours;

/// One observed answer: the `(u, q)` pair together with its targets
/// `v_{u,q}` (net votes) and `r_{u,q}` (response time).
///
/// Produced by [`Dataset::answered_pairs`]. Pairs with `a_{u,q} = 0`
/// are *not* materialized (there are `|U| · |Q|` of them; the answer
/// matrix is ~99.97% sparse in the paper's data) — negative samples
/// are drawn on demand by the evaluation harness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnsweredPair {
    /// The answering user `u`.
    pub user: UserId,
    /// The question `q`.
    pub question: QuestionId,
    /// Index of `q` within [`Dataset::threads`].
    pub question_index: usize,
    /// Net votes `v_{u,q}` on the answer.
    pub votes: i32,
    /// Response time `r_{u,q}` in hours.
    pub response_time: Hours,
}

/// An in-memory forum dataset: a set of threads over a fixed user
/// population.
///
/// Invariants enforced at construction:
///
/// * every author id is `< num_users`;
/// * question ids are unique;
/// * all timestamps are finite and answers do not precede questions.
///
/// # Example
///
/// ```
/// use forumcast_data::{Dataset, Post, PostBody, Thread, UserId};
/// let t = Thread::new(
///     0,
///     Post::new(UserId(0), 0.0, 0, PostBody::default()),
///     vec![Post::new(UserId(1), 1.0, 2, PostBody::default())],
/// );
/// let ds = Dataset::new(2, vec![t])?;
/// assert_eq!(ds.num_users(), 2);
/// assert_eq!(ds.answered_pairs().len(), 1);
/// # Ok::<(), forumcast_data::DataError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    num_users: u32,
    threads: Vec<Thread>,
}

impl Dataset {
    /// Creates a dataset, validating all invariants.
    ///
    /// Threads are sorted chronologically by question timestamp, which
    /// is the order assumed by the paper's history partitions
    /// `F(q) = {q' : q' ≤ q}`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError`] if an author id is out of range, a
    /// question id repeats, a timestamp is non-finite, or an answer
    /// precedes its question.
    pub fn new(num_users: u32, mut threads: Vec<Thread>) -> Result<Self, DataError> {
        let mut seen = HashMap::new();
        for t in &threads {
            if seen.insert(t.id, ()).is_some() {
                return Err(DataError::DuplicateQuestionId(t.id.0));
            }
            for p in t.posts() {
                if p.author.0 >= num_users {
                    return Err(DataError::UserOutOfRange {
                        user: p.author.0,
                        num_users,
                    });
                }
                if !p.timestamp.is_finite() {
                    return Err(DataError::NonFiniteTimestamp { question: t.id.0 });
                }
                // Negative hours would silently collapse into day 1
                // of the day partition (see `DayPartition::
                // day_of_time`), so reject them at the boundary.
                if p.timestamp < 0.0 {
                    return Err(DataError::NegativeTimestamp { question: t.id.0 });
                }
            }
            if t.answers.iter().any(|a| a.timestamp < t.question.timestamp) {
                return Err(DataError::AnswerBeforeQuestion { question: t.id.0 });
            }
        }
        threads.sort_by(|a, b| a.question.timestamp.total_cmp(&b.question.timestamp));
        Ok(Dataset { num_users, threads })
    }

    /// Number of users in the population (ids `0 .. num_users`).
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Number of question threads.
    pub fn num_questions(&self) -> usize {
        self.threads.len()
    }

    /// The threads, sorted by question timestamp.
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// Looks up a thread by question id.
    pub fn thread(&self, id: QuestionId) -> Option<&Thread> {
        self.threads.iter().find(|t| t.id == id)
    }

    /// Total number of answers across all threads.
    pub fn num_answers(&self) -> usize {
        self.threads.iter().map(Thread::num_answers).sum()
    }

    /// Timestamp `T = max_{q,n} t(p_{q,n})` of the last post in the
    /// dataset, used as the observation horizon of the point process.
    /// Returns `0.0` for an empty dataset.
    pub fn horizon(&self) -> Hours {
        self.threads
            .iter()
            .map(Thread::last_activity)
            .fold(0.0, f64::max)
    }

    /// All observed `(u, q)` answer pairs with their targets. See
    /// [`AnsweredPair`].
    pub fn answered_pairs(&self) -> Vec<AnsweredPair> {
        let mut pairs = Vec::new();
        for (qi, t) in self.threads.iter().enumerate() {
            let mut users: Vec<UserId> = t.answers.iter().map(|p| p.author).collect();
            users.sort_unstable();
            users.dedup();
            for u in users {
                let a = t.answer_by(u).expect("user answered");
                pairs.push(AnsweredPair {
                    user: u,
                    question: t.id,
                    question_index: qi,
                    votes: a.votes,
                    response_time: a.timestamp - t.asked_at(),
                });
            }
        }
        pairs
    }

    /// Applies the paper's Section III-A preprocessing:
    ///
    /// 1. drop questions without at least one answer;
    /// 2. where a user posted multiple answers to one question, keep
    ///    only the highest-voted one;
    /// 3. drop answers posted at the exact same time as the question
    ///    (and, after that, re-apply rule 1).
    ///
    /// Returns the cleaned dataset and a [`PreprocessReport`] of what
    /// was removed.
    pub fn preprocess(self) -> (Dataset, PreprocessReport) {
        let mut report = PreprocessReport::default();
        let num_users = self.num_users;
        let mut kept = Vec::with_capacity(self.threads.len());
        for t in self.threads {
            if !t.is_answered() {
                report.unanswered_questions += 1;
                continue;
            }
            // Rule 2: deduplicate per-user answers, keeping max votes.
            let mut best: HashMap<UserId, crate::post::Post> = HashMap::new();
            let n_before = t.answers.len();
            for a in t.answers {
                match best.get(&a.author) {
                    Some(b) if b.votes >= a.votes => {}
                    _ => {
                        best.insert(a.author, a);
                    }
                }
            }
            report.duplicate_answers += n_before - best.len();
            // Rule 3: drop zero-delay answers.
            let asked = t.question.timestamp;
            let answers: Vec<_> = best
                .into_values()
                .filter(|a| {
                    let keep = a.timestamp > asked;
                    if !keep {
                        report.zero_delay_answers += 1;
                    }
                    keep
                })
                .collect();
            if answers.is_empty() {
                report.unanswered_questions += 1;
                continue;
            }
            kept.push(Thread::new(t.id, t.question, answers));
        }
        let ds = Dataset {
            num_users,
            threads: kept,
        };
        report.questions_kept = ds.num_questions();
        report.answers_kept = ds.num_answers();
        (ds, report)
    }

    /// Computes descriptive statistics (Section III-A numbers).
    pub fn stats(&self) -> DatasetStats {
        let mut askers = vec![false; self.num_users as usize];
        let mut answerers = vec![false; self.num_users as usize];
        for t in &self.threads {
            askers[t.asker().index()] = true;
            for a in &t.answers {
                answerers[a.author.index()] = true;
            }
        }
        let num_askers = askers.iter().filter(|&&b| b).count();
        let num_answerers = answerers.iter().filter(|&&b| b).count();
        let num_active = askers
            .iter()
            .zip(&answerers)
            .filter(|(&a, &b)| a || b)
            .count();
        let pairs = self.answered_pairs().len();
        let cells = (num_answerers as f64) * (self.num_questions() as f64);
        DatasetStats {
            num_users: self.num_users as usize,
            num_active_users: num_active,
            num_askers,
            num_answerers,
            num_questions: self.num_questions(),
            num_answers: self.num_answers(),
            answer_matrix_density: if cells > 0.0 {
                pairs as f64 / cells
            } else {
                0.0
            },
            horizon: self.horizon(),
        }
    }

    /// FNV-1a 64 over a canonical byte feed of the whole dataset —
    /// user count, then every thread's id, question, and answers with
    /// author, timestamp bits, votes, and body bytes. Two datasets
    /// hash equal iff they are bitwise-equal, which is what the
    /// thread-count-invariance gates compare.
    pub fn fnv1a_hash(&self) -> u64 {
        struct Fnv(u64);
        impl Fnv {
            fn feed(&mut self, bytes: &[u8]) {
                for b in bytes {
                    self.0 ^= u64::from(*b);
                    self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
            fn feed_u64(&mut self, v: u64) {
                self.feed(&v.to_le_bytes());
            }
            fn feed_post(&mut self, p: &crate::post::Post) {
                self.feed_u64(u64::from(p.author.0));
                self.feed_u64(p.timestamp.to_bits());
                self.feed(&p.votes.to_le_bytes());
                self.feed_u64(p.body.text.len() as u64);
                self.feed(p.body.text.as_bytes());
                self.feed_u64(p.body.code.len() as u64);
                self.feed(p.body.code.as_bytes());
            }
        }
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        h.feed_u64(u64::from(self.num_users));
        h.feed_u64(self.threads.len() as u64);
        for t in &self.threads {
            h.feed_u64(u64::from(t.id.0));
            h.feed_post(&t.question);
            h.feed_u64(t.answers.len() as u64);
            for a in &t.answers {
                h.feed_post(a);
            }
        }
        h.0
    }

    /// Restricts the dataset to the given question indices (a partition
    /// `Ω ⊆ Q`), preserving chronological order. Indices out of range
    /// are ignored.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut idx: Vec<usize> = indices
            .iter()
            .copied()
            .filter(|&i| i < self.threads.len())
            .collect();
        idx.sort_unstable();
        idx.dedup();
        Dataset {
            num_users: self.num_users,
            threads: idx.into_iter().map(|i| self.threads[i].clone()).collect(),
        }
    }

    /// Returns the indices of threads whose question was posted in
    /// `[from, to)` hours.
    pub fn questions_in_window(&self, from: Hours, to: Hours) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.asked_at() >= from && t.asked_at() < to)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::post::{Post, PostBody};

    fn post(u: u32, t: Hours, v: i32) -> Post {
        Post::new(UserId(u), t, v, PostBody::default())
    }

    fn simple() -> Dataset {
        Dataset::new(
            4,
            vec![
                Thread::new(0, post(0, 0.0, 1), vec![post(1, 2.0, 3)]),
                Thread::new(1, post(2, 5.0, 0), vec![post(1, 6.0, 1), post(3, 7.0, -1)]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_sorts_threads_chronologically() {
        let ds = Dataset::new(
            2,
            vec![
                Thread::new(1, post(0, 9.0, 0), vec![]),
                Thread::new(0, post(1, 1.0, 0), vec![]),
            ],
        )
        .unwrap();
        assert_eq!(ds.threads()[0].id, QuestionId(0));
        assert_eq!(ds.threads()[1].id, QuestionId(1));
    }

    #[test]
    fn rejects_out_of_range_user() {
        let err = Dataset::new(1, vec![Thread::new(0, post(1, 0.0, 0), vec![])]).unwrap_err();
        assert!(matches!(err, DataError::UserOutOfRange { user: 1, .. }));
    }

    #[test]
    fn rejects_duplicate_question_ids() {
        let err = Dataset::new(
            1,
            vec![
                Thread::new(7, post(0, 0.0, 0), vec![]),
                Thread::new(7, post(0, 1.0, 0), vec![]),
            ],
        )
        .unwrap_err();
        assert_eq!(err, DataError::DuplicateQuestionId(7));
    }

    #[test]
    fn rejects_answer_before_question() {
        let err = Dataset::new(
            2,
            vec![Thread::new(0, post(0, 5.0, 0), vec![post(1, 4.0, 0)])],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DataError::AnswerBeforeQuestion { question: 0 }
        ));
    }

    #[test]
    fn rejects_non_finite_timestamp() {
        let err = Dataset::new(1, vec![Thread::new(0, post(0, f64::NAN, 0), vec![])]).unwrap_err();
        assert!(matches!(err, DataError::NonFiniteTimestamp { .. }));
    }

    #[test]
    fn rejects_negative_question_timestamp() {
        // Regression: negative hours used to pass validation and
        // collapse into day 1 of the day partition.
        let err = Dataset::new(1, vec![Thread::new(0, post(0, -3.0, 0), vec![])]).unwrap_err();
        assert!(matches!(err, DataError::NegativeTimestamp { question: 0 }));
    }

    #[test]
    fn rejects_negative_answer_timestamp() {
        // An answer can only be negative if its question is too (the
        // answer-before-question check fires first otherwise), but
        // the invariant must hold for every post.
        let err = Dataset::new(
            2,
            vec![Thread::new(4, post(0, -8.0, 0), vec![post(1, -2.0, 0)])],
        )
        .unwrap_err();
        assert!(matches!(err, DataError::NegativeTimestamp { question: 4 }));
    }

    #[test]
    fn answered_pairs_extract_targets() {
        let ds = simple();
        let pairs = ds.answered_pairs();
        assert_eq!(pairs.len(), 3);
        let p = pairs
            .iter()
            .find(|p| p.user == UserId(3))
            .expect("u3 answered q1");
        assert_eq!(p.question, QuestionId(1));
        assert_eq!(p.votes, -1);
        assert_eq!(p.response_time, 2.0);
    }

    #[test]
    fn horizon_is_last_post_time() {
        assert_eq!(simple().horizon(), 7.0);
        let empty = Dataset::new(0, vec![]).unwrap();
        assert_eq!(empty.horizon(), 0.0);
    }

    #[test]
    fn preprocess_drops_unanswered() {
        let ds = Dataset::new(
            2,
            vec![
                Thread::new(0, post(0, 0.0, 0), vec![]),
                Thread::new(1, post(0, 1.0, 0), vec![post(1, 2.0, 1)]),
            ],
        )
        .unwrap();
        let (clean, report) = ds.preprocess();
        assert_eq!(clean.num_questions(), 1);
        assert_eq!(report.unanswered_questions, 1);
        assert_eq!(report.questions_kept, 1);
    }

    #[test]
    fn preprocess_dedups_multi_answers_keeping_max_votes() {
        let ds = Dataset::new(
            2,
            vec![Thread::new(
                0,
                post(0, 0.0, 0),
                vec![post(1, 1.0, 2), post(1, 2.0, 9), post(1, 3.0, 4)],
            )],
        )
        .unwrap();
        let (clean, report) = ds.preprocess();
        assert_eq!(report.duplicate_answers, 2);
        assert_eq!(clean.num_answers(), 1);
        assert_eq!(clean.threads()[0].answers[0].votes, 9);
    }

    #[test]
    fn preprocess_drops_zero_delay_answers() {
        let ds = Dataset::new(
            2,
            vec![Thread::new(0, post(0, 1.0, 0), vec![post(1, 1.0, 5)])],
        )
        .unwrap();
        let (clean, report) = ds.preprocess();
        assert_eq!(report.zero_delay_answers, 1);
        // The thread became unanswered and is dropped entirely.
        assert_eq!(clean.num_questions(), 0);
        assert_eq!(report.unanswered_questions, 1);
    }

    #[test]
    fn stats_counts_roles() {
        let s = simple().stats();
        assert_eq!(s.num_askers, 2);
        assert_eq!(s.num_answerers, 2);
        assert_eq!(s.num_active_users, 4);
        assert_eq!(s.num_answers, 3);
        // 3 pairs over 2 answerers x 2 questions.
        assert!((s.answer_matrix_density - 0.75).abs() < 1e-12);
    }

    #[test]
    fn select_restricts_and_dedups() {
        let ds = simple();
        let sub = ds.select(&[1, 1, 99]);
        assert_eq!(sub.num_questions(), 1);
        assert_eq!(sub.threads()[0].id, QuestionId(1));
    }

    #[test]
    fn questions_in_window_half_open() {
        let ds = simple();
        assert_eq!(ds.questions_in_window(0.0, 5.0), vec![0]);
        assert_eq!(ds.questions_in_window(0.0, 5.1), vec![0, 1]);
        assert_eq!(ds.questions_in_window(5.0, 6.0), vec![1]);
    }

    #[test]
    fn fnv1a_hash_is_stable_and_discriminating() {
        let ds = simple();
        assert_eq!(ds.fnv1a_hash(), simple().fnv1a_hash());
        assert_ne!(ds.fnv1a_hash(), ds.select(&[0]).fnv1a_hash());
    }

    #[test]
    fn dataset_roundtrips_serde() {
        let ds = simple();
        let json = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ds);
    }
}
