//! Forum data model for `forumcast`.
//!
//! This crate defines the data structures that represent an online
//! Community Question Answering (CQA) discussion forum, following the
//! formalization of Hansen et al., *Predicting the Timing and Quality of
//! Responses in Online Discussion Forums* (ICDCS 2019), Section II-A:
//!
//! * a forum is a set of **threads**, one per question `q ∈ Q`;
//! * the `n`-th **post** in thread `q` is `p_{q,n}`, with `p_{q,0}` the
//!   question itself and `p_{q,1}, …` the answers;
//! * every post has a creator `u(p)`, a timestamp `t(p)` and net votes
//!   `v(p)` (up-votes minus down-votes).
//!
//! The three prediction targets for a user/question pair `(u, q)` are
//! exposed through [`Dataset::answered_pairs`]:
//!
//! * `a_{u,q} ∈ {0, 1}` — whether `u` answers `q`;
//! * `v_{u,q} ∈ ℤ` — the net votes `u`'s answer receives;
//! * `r_{u,q} ∈ ℝ₊` — the elapsed time before `u` answers.
//!
//! The crate also implements the paper's preprocessing pipeline
//! (Section III-A) in [`Dataset::preprocess`], chronological day
//! partitions used by the historical-data experiments (Section IV-D) in
//! [`days`], and JSON import/export in [`io`].
//!
//! # Example
//!
//! ```
//! use forumcast_data::{Dataset, Post, PostBody, Thread, UserId};
//!
//! let question = Post::new(UserId(0), 0.0, 2, PostBody::words("how do I sort a vec"));
//! let answer = Post::new(UserId(1), 1.5, 5, PostBody::words("use sort_unstable"));
//! let thread = Thread::new(0, question, vec![answer]);
//! let dataset = Dataset::new(2, vec![thread]).expect("valid dataset");
//!
//! assert_eq!(dataset.num_questions(), 1);
//! let pairs = dataset.answered_pairs();
//! assert_eq!(pairs.len(), 1);
//! assert_eq!(pairs[0].response_time, 1.5);
//! ```

pub mod calibration;
pub mod dataset;
pub mod days;
pub mod error;
pub mod event;
pub mod io;
pub mod post;
pub mod quarantine;
pub mod stats;
pub mod thread;

pub use calibration::{calibrate, CalibrationCheck, CalibrationReport};
pub use dataset::{AnsweredPair, Dataset};
pub use days::DayPartition;
pub use error::DataError;
pub use event::{
    decode_delivery, decode_event, encode_event, events_from_dataset, events_from_threads,
    ingest_event_iter, ingest_events, replay_wal, Delivery, ForumEvent, ForumState, IngestOutcome,
    Ingestor, PoisonReason, PoisonRecord, ReplayOutcome, ReplayReport, MAX_PENDING,
    MAX_POISON_KEPT,
};
pub use post::{Post, PostBody, UserId};
pub use quarantine::{
    import_records_lenient, import_records_lenient_with, IngestReport, LenientMode,
    QuarantineReason,
};
pub use stats::{DatasetStats, PreprocessReport};
pub use thread::{QuestionId, Thread};

/// Time unit used throughout the crate: hours since the dataset epoch.
///
/// All timestamps ([`Post::timestamp`]) and durations (response times)
/// are expressed in fractional hours. The paper's 30-day Stack Overflow
/// window corresponds to `0.0 ..= 720.0`.
pub type Hours = f64;

/// Number of hours in one forum "day", used by [`days::DayPartition`].
pub const HOURS_PER_DAY: Hours = 24.0;
