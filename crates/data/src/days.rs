//! Chronological day partitions `D_i ⊂ Q` (paper §IV-D).
//!
//! The historical-data experiments fix the evaluation partition
//! `Ω = D_25 ∪ … ∪ D_30` and vary the inference window
//! `F(q) = D_{25−i} ∪ … ∪ D_25`. This module maps question timestamps
//! to 1-based day indices and extracts those windows.

use crate::dataset::Dataset;
use crate::{Hours, HOURS_PER_DAY};

/// Day-based view of a dataset: maps each question to its 1-based day
/// `D_i` (day 1 covers `[0, 24)` hours).
///
/// # Example
///
/// ```
/// use forumcast_data::{Dataset, DayPartition, Post, PostBody, Thread, UserId};
/// let mk = |id, t| Thread::new(id, Post::new(UserId(0), t, 0, PostBody::default()), vec![]);
/// let ds = Dataset::new(1, vec![mk(0u32, 3.0), mk(1u32, 30.0)])?;
/// let days = DayPartition::new(&ds);
/// assert_eq!(days.day_of_question(0), 1);
/// assert_eq!(days.day_of_question(1), 2);
/// assert_eq!(days.num_days(), 2);
/// # Ok::<(), forumcast_data::DataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DayPartition {
    /// Day index (1-based) per question, aligned with
    /// `Dataset::threads()`.
    day_per_question: Vec<usize>,
    num_days: usize,
}

impl DayPartition {
    /// Builds the partition from question timestamps.
    pub fn new(dataset: &Dataset) -> Self {
        let day_per_question: Vec<usize> = dataset
            .threads()
            .iter()
            .map(|t| Self::day_of_time(t.asked_at()))
            .collect();
        let num_days = day_per_question.iter().copied().max().unwrap_or(0);
        DayPartition {
            day_per_question,
            num_days,
        }
    }

    /// 1-based day containing timestamp `t` (non-negative hours).
    ///
    /// Negative hours have no day: the `as usize` cast would clamp
    /// them all into day 1, silently mixing pre-epoch posts into the
    /// first partition. [`Dataset::new`] rejects negative timestamps
    /// at the boundary, so this can only trip on raw values that
    /// bypassed validation.
    pub fn day_of_time(t: Hours) -> usize {
        debug_assert!(t >= 0.0, "negative timestamp {t} has no day partition");
        (t / HOURS_PER_DAY).floor() as usize + 1
    }

    /// Day of the `i`-th question (panics if out of range).
    ///
    /// # Panics
    ///
    /// Panics when `question_index` is out of bounds.
    pub fn day_of_question(&self, question_index: usize) -> usize {
        self.day_per_question[question_index]
    }

    /// Highest day index present (0 for an empty dataset).
    pub fn num_days(&self) -> usize {
        self.num_days
    }

    /// Indices of questions asked in days `from ..= to` (1-based,
    /// inclusive), i.e. the union `D_from ∪ … ∪ D_to`.
    pub fn questions_in_days(&self, from: usize, to: usize) -> Vec<usize> {
        self.day_per_question
            .iter()
            .enumerate()
            .filter(|(_, &d)| d >= from && d <= to)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of questions in each day `1 ..= num_days`.
    pub fn counts_per_day(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_days];
        for &d in &self.day_per_question {
            counts[d - 1] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::post::{Post, PostBody, UserId};
    use crate::thread::Thread;

    fn ds_with_times(times: &[Hours]) -> Dataset {
        let threads = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                Thread::new(
                    i as u32,
                    Post::new(UserId(0), t, 0, PostBody::default()),
                    vec![],
                )
            })
            .collect();
        Dataset::new(1, threads).unwrap()
    }

    #[test]
    fn day_boundaries_are_half_open() {
        assert_eq!(DayPartition::day_of_time(0.0), 1);
        assert_eq!(DayPartition::day_of_time(23.999), 1);
        assert_eq!(DayPartition::day_of_time(24.0), 2);
        assert_eq!(DayPartition::day_of_time(719.9), 30);
    }

    #[test]
    fn questions_in_days_inclusive_range() {
        let ds = ds_with_times(&[1.0, 25.0, 49.0, 73.0]);
        let days = DayPartition::new(&ds);
        assert_eq!(days.num_days(), 4);
        assert_eq!(days.questions_in_days(2, 3), vec![1, 2]);
        assert_eq!(days.questions_in_days(1, 4).len(), 4);
        assert!(days.questions_in_days(5, 9).is_empty());
    }

    #[test]
    fn counts_per_day_sums_to_total() {
        let ds = ds_with_times(&[1.0, 2.0, 25.0, 49.0]);
        let days = DayPartition::new(&ds);
        assert_eq!(days.counts_per_day(), vec![2, 1, 1]);
    }

    #[test]
    fn empty_dataset_has_zero_days() {
        let ds = Dataset::new(0, vec![]).unwrap();
        let days = DayPartition::new(&ds);
        assert_eq!(days.num_days(), 0);
        assert!(days.counts_per_day().is_empty());
    }

    #[test]
    fn day_of_question_follows_chronological_sort() {
        // Dataset::new sorts threads by time, so question 0 is day 1.
        let ds = ds_with_times(&[30.0, 3.0]);
        let days = DayPartition::new(&ds);
        assert_eq!(days.day_of_question(0), 1);
        assert_eq!(days.day_of_question(1), 2);
    }
}
