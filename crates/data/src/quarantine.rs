//! Lenient record ingestion: skip-and-record instead of abort.
//!
//! [`crate::io::import_records`] is strict — one malformed record
//! fails the whole import, which is the right default for curated
//! datasets. Continuously-crawled forum data is noisier: truncated
//! bodies, clock glitches, duplicated crawl pages. For that,
//! [`import_records_lenient`] quarantines malformed records (with a
//! per-reason tally in [`IngestReport`]) and builds the dataset from
//! the rest, so a multi-hour pipeline run survives a bad crawl batch.
//!
//! The quarantine checks are a superset of the [`crate::Dataset`]
//! invariants, so the construction of the surviving dataset cannot
//! fail — the function is total. The per-record checks are also
//! instrumented with the [`forumcast_resilience`] `ingest-io` fault
//! site, letting CI inject I/O errors at exact record indices.
//!
//! Two granularities are available via [`LenientMode`]: the default
//! drops a whole thread record when *any* of its posts is malformed,
//! while [`LenientMode::SalvageAnswers`] keeps a thread whose
//! question is sound and drops only its malformed answers —
//! [`IngestReport`] then counts salvaged threads and dropped answers
//! separately from fully quarantined records.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fmt;

use forumcast_resilience::fault::{self, FaultSite};

use crate::dataset::Dataset;
use crate::io::{PostRecord, ThreadRecord};
use crate::post::{Post, PostBody, UserId};
use crate::thread::Thread;

/// Why a record was quarantined instead of imported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum QuarantineReason {
    /// Reading the record failed (in this offline reproduction only
    /// injected via the `ingest-io` fault site; a streaming crawler
    /// would hit real ones).
    IoError,
    /// A `creation_epoch_s` is NaN or infinite.
    NonFiniteTimestamp,
    /// A `creation_epoch_s` is negative — before the 1970 epoch, which
    /// no real forum crawl can produce.
    NegativeTimestamp,
    /// A post has an empty (or all-whitespace) user key, so it cannot
    /// be attributed to any user.
    EmptyUserKey,
    /// A post has an empty (or all-whitespace) HTML body.
    EmptyBody,
    /// An answer is timestamped before its question.
    AnswerBeforeQuestion,
    /// The question id was already imported (e.g. a re-crawled page).
    DuplicateQuestionId,
}

impl QuarantineReason {
    /// All reasons, in check order.
    pub const ALL: [QuarantineReason; 7] = [
        QuarantineReason::IoError,
        QuarantineReason::NonFiniteTimestamp,
        QuarantineReason::NegativeTimestamp,
        QuarantineReason::EmptyUserKey,
        QuarantineReason::EmptyBody,
        QuarantineReason::AnswerBeforeQuestion,
        QuarantineReason::DuplicateQuestionId,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            QuarantineReason::IoError => "i/o error",
            QuarantineReason::NonFiniteTimestamp => "non-finite timestamp",
            QuarantineReason::NegativeTimestamp => "negative timestamp",
            QuarantineReason::EmptyUserKey => "empty user key",
            QuarantineReason::EmptyBody => "empty body",
            QuarantineReason::AnswerBeforeQuestion => "answer before question",
            QuarantineReason::DuplicateQuestionId => "duplicate question id",
        }
    }
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How [`import_records_lenient_with`] treats a thread whose question
/// is sound but whose answers are not.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum LenientMode {
    /// Quarantine the whole thread record when any of its posts is
    /// malformed (the [`import_records_lenient`] default).
    #[default]
    DropThread,
    /// Keep a thread whose *question* passes every check, dropping
    /// only its malformed answers. Question-level defects (and
    /// injected I/O errors and duplicate ids) still quarantine the
    /// whole record.
    SalvageAnswers,
}

/// Tally of a lenient import: how many records came in, how many
/// threads survived, and per-reason quarantine counts. The invariant
/// `records_in == threads_kept + quarantined_total()` always holds;
/// salvaged threads count toward `threads_kept`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IngestReport {
    /// Records offered to the importer.
    pub records_in: usize,
    /// Threads that survived into the dataset (including salvaged
    /// ones).
    pub threads_kept: usize,
    /// Threads kept with at least one answer dropped (always 0 under
    /// [`LenientMode::DropThread`]).
    pub threads_salvaged: usize,
    /// `(reason, count)` pairs for quarantined records, in
    /// [`QuarantineReason::ALL`] order; zero-count reasons omitted.
    pub quarantined: Vec<(QuarantineReason, usize)>,
    /// `(reason, count)` pairs for answers dropped out of salvaged
    /// threads, in [`QuarantineReason::ALL`] order; zero-count
    /// reasons omitted. Empty under [`LenientMode::DropThread`].
    pub answers_dropped: Vec<(QuarantineReason, usize)>,
}

impl IngestReport {
    /// Total quarantined records across all reasons.
    pub fn quarantined_total(&self) -> usize {
        self.quarantined.iter().map(|(_, n)| n).sum()
    }

    /// Quarantine count for one reason.
    pub fn count(&self, reason: QuarantineReason) -> usize {
        self.quarantined
            .iter()
            .find(|(r, _)| *r == reason)
            .map_or(0, |(_, n)| *n)
    }

    /// Total answers dropped from salvaged threads.
    pub fn answers_dropped_total(&self) -> usize {
        self.answers_dropped.iter().map(|(_, n)| n).sum()
    }

    /// Dropped-answer count for one reason.
    pub fn answers_dropped_count(&self, reason: QuarantineReason) -> usize {
        self.answers_dropped
            .iter()
            .find(|(r, _)| *r == reason)
            .map_or(0, |(_, n)| *n)
    }
}

impl fmt::Display for IngestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "imported {}/{} records ({} quarantined",
            self.threads_kept,
            self.records_in,
            self.quarantined_total()
        )?;
        for (reason, n) in &self.quarantined {
            write!(f, "; {reason}: {n}")?;
        }
        write!(f, ")")?;
        if self.threads_salvaged > 0 {
            write!(
                f,
                "; salvaged {} thread(s) dropping {} answer(s)",
                self.threads_salvaged,
                self.answers_dropped_total()
            )?;
            for (reason, n) in &self.answers_dropped {
                write!(f, "; {reason}: {n}")?;
            }
        }
        Ok(())
    }
}

/// Classifies one record against the quarantine checks, in
/// [`QuarantineReason::ALL`] order. `seen` holds already-imported
/// question ids.
fn classify(record: &ThreadRecord, index: usize, seen: &HashSet<u32>) -> Option<QuarantineReason> {
    if fault::io_point(FaultSite::IngestIo, index as u64).is_err() {
        return Some(QuarantineReason::IoError);
    }
    let posts = || std::iter::once(&record.question).chain(record.answers.iter());
    if posts().any(|p| !p.creation_epoch_s.is_finite()) {
        return Some(QuarantineReason::NonFiniteTimestamp);
    }
    if posts().any(|p| p.creation_epoch_s < 0.0) {
        return Some(QuarantineReason::NegativeTimestamp);
    }
    if posts().any(|p| p.user.trim().is_empty()) {
        return Some(QuarantineReason::EmptyUserKey);
    }
    if posts().any(|p| p.body_html.trim().is_empty()) {
        return Some(QuarantineReason::EmptyBody);
    }
    if record
        .answers
        .iter()
        .any(|a| a.creation_epoch_s < record.question.creation_epoch_s)
    {
        return Some(QuarantineReason::AnswerBeforeQuestion);
    }
    if seen.contains(&record.question_id) {
        return Some(QuarantineReason::DuplicateQuestionId);
    }
    None
}

/// Classifies only the thread-fatal checks for salvage mode: an I/O
/// error, a malformed *question* post, or a duplicate id. Answer
/// defects are handled per answer by [`classify_answer`].
fn classify_question(
    record: &ThreadRecord,
    index: usize,
    seen: &HashSet<u32>,
) -> Option<QuarantineReason> {
    if fault::io_point(FaultSite::IngestIo, index as u64).is_err() {
        return Some(QuarantineReason::IoError);
    }
    let q = &record.question;
    if !q.creation_epoch_s.is_finite() {
        return Some(QuarantineReason::NonFiniteTimestamp);
    }
    if q.creation_epoch_s < 0.0 {
        return Some(QuarantineReason::NegativeTimestamp);
    }
    if q.user.trim().is_empty() {
        return Some(QuarantineReason::EmptyUserKey);
    }
    if q.body_html.trim().is_empty() {
        return Some(QuarantineReason::EmptyBody);
    }
    if seen.contains(&record.question_id) {
        return Some(QuarantineReason::DuplicateQuestionId);
    }
    None
}

/// Classifies one answer against the per-post checks plus the
/// answer-before-question ordering check, in
/// [`QuarantineReason::ALL`] order.
fn classify_answer(answer: &PostRecord, question_epoch_s: f64) -> Option<QuarantineReason> {
    if !answer.creation_epoch_s.is_finite() {
        return Some(QuarantineReason::NonFiniteTimestamp);
    }
    if answer.creation_epoch_s < 0.0 {
        return Some(QuarantineReason::NegativeTimestamp);
    }
    if answer.user.trim().is_empty() {
        return Some(QuarantineReason::EmptyUserKey);
    }
    if answer.body_html.trim().is_empty() {
        return Some(QuarantineReason::EmptyBody);
    }
    if answer.creation_epoch_s < question_epoch_s {
        return Some(QuarantineReason::AnswerBeforeQuestion);
    }
    None
}

/// Imports a crawl in the record format like
/// [`crate::io::import_records`], but quarantines malformed records
/// instead of failing: each surviving thread is normalized (dense
/// user ids, timestamps rebased to hours since the earliest surviving
/// post) and each dropped record is tallied by reason in the returned
/// [`IngestReport`]. Total by construction — the checks pre-enforce
/// every [`Dataset`] invariant.
pub fn import_records_lenient(
    records: &[ThreadRecord],
) -> (Dataset, HashMap<String, UserId>, IngestReport) {
    import_records_lenient_with(records, LenientMode::DropThread)
}

/// [`import_records_lenient`] with an explicit [`LenientMode`]. Under
/// [`LenientMode::SalvageAnswers`], a thread whose question passes
/// every check survives with its malformed answers dropped (tallied
/// per reason in [`IngestReport::answers_dropped`]); normalization —
/// user interning and epoch rebasing — runs over the *surviving*
/// posts only, so a dropped answer cannot shift any kept timestamp.
pub fn import_records_lenient_with(
    records: &[ThreadRecord],
    mode: LenientMode,
) -> (Dataset, HashMap<String, UserId>, IngestReport) {
    let mut seen: HashSet<u32> = HashSet::new();
    let mut counts: HashMap<QuarantineReason, usize> = HashMap::new();
    let mut answer_counts: HashMap<QuarantineReason, usize> = HashMap::new();
    let mut threads_salvaged = 0usize;
    // Each kept thread carries the subset of its answers that
    // survived (all of them under `DropThread`).
    let mut kept: Vec<(&ThreadRecord, Vec<&PostRecord>)> = Vec::with_capacity(records.len());
    for (i, r) in records.iter().enumerate() {
        match mode {
            LenientMode::DropThread => match classify(r, i, &seen) {
                Some(reason) => *counts.entry(reason).or_insert(0) += 1,
                None => {
                    seen.insert(r.question_id);
                    kept.push((r, r.answers.iter().collect()));
                }
            },
            LenientMode::SalvageAnswers => match classify_question(r, i, &seen) {
                Some(reason) => *counts.entry(reason).or_insert(0) += 1,
                None => {
                    seen.insert(r.question_id);
                    let mut answers: Vec<&PostRecord> = Vec::with_capacity(r.answers.len());
                    let mut dropped_any = false;
                    for a in &r.answers {
                        match classify_answer(a, r.question.creation_epoch_s) {
                            Some(reason) => {
                                *answer_counts.entry(reason).or_insert(0) += 1;
                                dropped_any = true;
                            }
                            None => answers.push(a),
                        }
                    }
                    if dropped_any {
                        threads_salvaged += 1;
                    }
                    kept.push((r, answers));
                }
            },
        }
    }

    // Normalization over the survivors, mirroring the strict importer.
    // All timestamps are finite and >= 0 here, so the epoch is finite
    // and every rebased hour is finite and non-negative.
    let mut user_ids: HashMap<String, UserId> = HashMap::new();
    let intern = |key: &str, user_ids: &mut HashMap<String, UserId>| {
        let next = user_ids.len() as u32;
        *user_ids.entry(key.to_owned()).or_insert(UserId(next))
    };
    let epoch = kept
        .iter()
        .flat_map(|(r, answers)| {
            std::iter::once(r.question.creation_epoch_s)
                .chain(answers.iter().map(|a| a.creation_epoch_s))
        })
        .fold(f64::INFINITY, f64::min);
    let to_hours = |s: f64| {
        if epoch.is_finite() {
            (s - epoch) / 3600.0
        } else {
            0.0
        }
    };
    let mut threads = Vec::with_capacity(kept.len());
    for (r, kept_answers) in &kept {
        let qa = intern(&r.question.user, &mut user_ids);
        let question = Post::new(
            qa,
            to_hours(r.question.creation_epoch_s),
            r.question.score,
            PostBody::from_html(&r.question.body_html),
        );
        let answers = kept_answers
            .iter()
            .map(|a| {
                let u = intern(&a.user, &mut user_ids);
                Post::new(
                    u,
                    to_hours(a.creation_epoch_s),
                    a.score,
                    PostBody::from_html(&a.body_html),
                )
            })
            .collect();
        threads.push(Thread::new(r.question_id, question, answers));
    }
    let dataset = Dataset::new(user_ids.len() as u32, threads)
        .expect("quarantine checks enforce every dataset invariant");

    let tally = |counts: &HashMap<QuarantineReason, usize>| -> Vec<(QuarantineReason, usize)> {
        QuarantineReason::ALL
            .into_iter()
            .filter_map(|r| counts.get(&r).map(|&n| (r, n)))
            .collect()
    };
    let report = IngestReport {
        records_in: records.len(),
        threads_kept: kept.len(),
        threads_salvaged,
        quarantined: tally(&counts),
        answers_dropped: tally(&answer_counts),
    };
    forumcast_obs::counter_add("ingest.records", records.len() as u64);
    forumcast_obs::counter_add("ingest.quarantined", report.quarantined_total() as u64);
    forumcast_obs::counter_add(
        "ingest.answers_dropped",
        report.answers_dropped_total() as u64,
    );
    (dataset, user_ids, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{import_records, PostRecord};
    use crate::thread::QuestionId;

    fn post(user: &str, epoch_s: f64, body: &str) -> PostRecord {
        PostRecord {
            user: user.into(),
            creation_epoch_s: epoch_s,
            score: 0,
            body_html: body.into(),
        }
    }

    fn record(id: u32, question: PostRecord, answers: Vec<PostRecord>) -> ThreadRecord {
        ThreadRecord {
            question_id: id,
            question,
            answers,
        }
    }

    fn clean_records() -> Vec<ThreadRecord> {
        vec![
            record(
                1,
                post("alice", 1_000.0, "q one"),
                vec![post("bob", 4_600.0, "a one")],
            ),
            record(2, post("bob", 8_200.0, "q two"), vec![]),
        ]
    }

    #[test]
    fn clean_records_match_strict_import() {
        let records = clean_records();
        let (strict, strict_users) = import_records(&records).unwrap();
        let (lenient, lenient_users, report) = import_records_lenient(&records);
        assert_eq!(strict, lenient);
        assert_eq!(strict_users, lenient_users);
        assert_eq!(report.records_in, 2);
        assert_eq!(report.threads_kept, 2);
        assert_eq!(report.quarantined_total(), 0);
    }

    #[test]
    fn each_malformation_is_tallied_under_its_reason() {
        let mut records = clean_records();
        records.push(record(3, post("carol", f64::NAN, "nan q"), vec![]));
        records.push(record(4, post("carol", -5.0, "pre-epoch q"), vec![]));
        records.push(record(5, post("  ", 9_000.0, "anonymous q"), vec![]));
        records.push(record(6, post("carol", 9_100.0, "   "), vec![]));
        records.push(record(
            7,
            post("carol", 9_200.0, "q"),
            vec![post("dave", 9_000.0, "early a")],
        ));
        records.push(record(1, post("eve", 9_300.0, "re-crawled q"), vec![]));
        let (ds, _, report) = import_records_lenient(&records);
        assert_eq!(ds.num_questions(), 2);
        assert_eq!(report.records_in, 8);
        assert_eq!(report.threads_kept, 2);
        for reason in [
            QuarantineReason::NonFiniteTimestamp,
            QuarantineReason::NegativeTimestamp,
            QuarantineReason::EmptyUserKey,
            QuarantineReason::EmptyBody,
            QuarantineReason::AnswerBeforeQuestion,
            QuarantineReason::DuplicateQuestionId,
        ] {
            assert_eq!(report.count(reason), 1, "{reason}");
        }
        assert_eq!(report.quarantined_total(), 6);
        let text = report.to_string();
        assert!(text.contains("2/8"), "{text}");
        assert!(text.contains("duplicate question id: 1"), "{text}");
    }

    #[test]
    fn quarantining_does_not_shift_surviving_normalization() {
        // The NaN record sits *between* survivors; epoch rebasing and
        // user interning must come out as if it was never there.
        let mut records = clean_records();
        records.insert(1, record(9, post("mallory", f64::NAN, "bad"), vec![]));
        let (ds, users, report) = import_records_lenient(&records);
        assert_eq!(report.count(QuarantineReason::NonFiniteTimestamp), 1);
        assert!(!users.contains_key("mallory"));
        let (clean_ds, clean_users) = import_records(&clean_records()).unwrap();
        assert_eq!(ds, clean_ds);
        assert_eq!(users, clean_users);
        assert_eq!(ds.thread(QuestionId(1)).unwrap().asked_at(), 0.0);
    }

    #[test]
    fn injected_io_fault_quarantines_exactly_that_record() {
        let _guard = forumcast_resilience::FaultPlan::parse("ingest-io:1")
            .unwrap()
            .arm();
        let (ds, _, report) = import_records_lenient(&clean_records());
        assert_eq!(report.count(QuarantineReason::IoError), 1);
        assert_eq!(ds.num_questions(), 1);
        assert!(ds.thread(QuestionId(1)).is_some());
        assert!(ds.thread(QuestionId(2)).is_none());
    }

    #[test]
    fn empty_input_is_total() {
        let (ds, users, report) = import_records_lenient(&[]);
        assert_eq!(ds.num_questions(), 0);
        assert!(users.is_empty());
        assert_eq!(report, IngestReport::default());
    }

    #[test]
    fn report_serializes_to_json() {
        let (_, _, report) = import_records_lenient(&clean_records());
        let json = serde_json::to_string(&report).unwrap();
        let back: IngestReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn salvage_keeps_thread_and_drops_only_malformed_answers() {
        let records = vec![record(
            1,
            post("alice", 1_000.0, "q"),
            vec![
                post("bob", 4_600.0, "good a"),
                post("  ", 5_000.0, "anonymous a"),
                post("carol", 500.0, "early a"),
                post("dave", 6_000.0, "another good a"),
            ],
        )];
        // DropThread quarantines the whole record...
        let (ds, _, report) = import_records_lenient_with(&records, LenientMode::DropThread);
        assert_eq!(ds.num_questions(), 0);
        assert_eq!(report.threads_salvaged, 0);
        assert_eq!(report.answers_dropped_total(), 0);
        // ...while SalvageAnswers keeps it minus the two bad answers.
        let (ds, _, report) = import_records_lenient_with(&records, LenientMode::SalvageAnswers);
        assert_eq!(ds.num_questions(), 1);
        assert_eq!(report.threads_kept, 1);
        assert_eq!(report.threads_salvaged, 1);
        assert_eq!(report.quarantined_total(), 0);
        assert_eq!(report.answers_dropped_total(), 2);
        assert_eq!(
            report.answers_dropped_count(QuarantineReason::EmptyUserKey),
            1
        );
        assert_eq!(
            report.answers_dropped_count(QuarantineReason::AnswerBeforeQuestion),
            1
        );
        let thread = ds.thread(QuestionId(1)).unwrap();
        assert_eq!(thread.num_answers(), 2);
        let text = report.to_string();
        assert!(
            text.contains("salvaged 1 thread(s) dropping 2 answer(s)"),
            "{text}"
        );
    }

    #[test]
    fn salvage_still_quarantines_question_level_defects() {
        let mut records = clean_records();
        records.push(record(3, post("  ", 9_000.0, "anonymous q"), vec![]));
        records.push(record(1, post("eve", 9_300.0, "re-crawled q"), vec![]));
        let (ds, _, report) = import_records_lenient_with(&records, LenientMode::SalvageAnswers);
        assert_eq!(ds.num_questions(), 2);
        assert_eq!(report.threads_kept, 2);
        assert_eq!(report.threads_salvaged, 0);
        assert_eq!(report.count(QuarantineReason::EmptyUserKey), 1);
        assert_eq!(report.count(QuarantineReason::DuplicateQuestionId), 1);
        assert_eq!(
            report.records_in,
            report.threads_kept + report.quarantined_total()
        );
    }

    #[test]
    fn salvage_rebases_epoch_over_surviving_posts_only() {
        // The earliest timestamp in the crawl belongs to a *dropped*
        // answer (pre-question), so rebasing must anchor on the
        // question instead.
        let records = vec![record(
            1,
            post("alice", 7_200.0, "q"),
            vec![post("bob", 0.0, "too early"), post("carol", 10_800.0, "a")],
        )];
        let (ds, _, report) = import_records_lenient_with(&records, LenientMode::SalvageAnswers);
        assert_eq!(report.answers_dropped_total(), 1);
        let thread = ds.thread(QuestionId(1)).unwrap();
        assert_eq!(thread.asked_at(), 0.0);
        assert_eq!(thread.answers[0].timestamp, 1.0);
    }

    #[test]
    fn salvage_on_clean_records_matches_drop_thread() {
        let records = clean_records();
        let (strict_ds, strict_users, strict_report) = import_records_lenient(&records);
        let (ds, users, report) =
            import_records_lenient_with(&records, LenientMode::SalvageAnswers);
        assert_eq!(ds, strict_ds);
        assert_eq!(users, strict_users);
        assert_eq!(report, strict_report);
    }
}
