//! Error types for the data crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or loading a [`crate::Dataset`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DataError {
    /// A post references a user id `>= num_users`.
    UserOutOfRange {
        /// Offending user id.
        user: u32,
        /// Declared number of users.
        num_users: u32,
    },
    /// Two threads share the same question id.
    DuplicateQuestionId(u32),
    /// An answer is timestamped before its question.
    AnswerBeforeQuestion {
        /// Question id of the offending thread.
        question: u32,
    },
    /// A timestamp is NaN or infinite.
    NonFiniteTimestamp {
        /// Question id of the offending thread.
        question: u32,
    },
    /// A post is timestamped before the epoch (hour 0). Accepting
    /// such posts would silently corrupt day partitioning:
    /// [`crate::DayPartition::day_of_time`] maps every negative hour
    /// into day 1.
    NegativeTimestamp {
        /// Question id of the offending thread.
        question: u32,
    },
    /// JSON (de)serialization failed.
    Json(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::UserOutOfRange { user, num_users } => write!(
                f,
                "post references user u{user} but the dataset declares only {num_users} users"
            ),
            DataError::DuplicateQuestionId(q) => {
                write!(f, "duplicate question id q{q}")
            }
            DataError::AnswerBeforeQuestion { question } => {
                write!(
                    f,
                    "thread q{question} has an answer timestamped before its question"
                )
            }
            DataError::NonFiniteTimestamp { question } => {
                write!(f, "thread q{question} contains a non-finite timestamp")
            }
            DataError::NegativeTimestamp { question } => {
                write!(f, "thread q{question} contains a negative timestamp")
            }
            DataError::Json(msg) => write!(f, "json error: {msg}"),
        }
    }
}

impl Error for DataError {}

impl From<serde_json::Error> for DataError {
    fn from(e: serde_json::Error) -> Self {
        DataError::Json(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = DataError::UserOutOfRange {
            user: 5,
            num_users: 3,
        };
        assert!(e.to_string().contains("u5"));
        assert!(e.to_string().contains('3'));
        let e = DataError::DuplicateQuestionId(7);
        assert!(e.to_string().contains("q7"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error + Send + Sync>(_e: E) {}
        takes_err(DataError::Json("x".into()));
    }
}
