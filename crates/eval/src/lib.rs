//! Evaluation harness for `forumcast`: metrics, the paper's
//! cross-validation protocol, baselines, and runners for every table
//! and figure in Section IV of Hansen et al. (ICDCS 2019).
//!
//! * [`metrics`] — AUC (Mann–Whitney, tie-corrected), RMSE, MAE,
//!   Pearson/Spearman correlation, CDFs;
//! * [`data`] — assembling `(u, q)` pair records with features,
//!   targets, balanced negative samples, and per-thread survival
//!   samples from a dataset partition (`Ω`, `F(q)`);
//! * [`columnar`] — the experiment spilled to a columnar on-disk
//!   store, streamed back one fold at a time for paper-scale++ runs;
//! * [`split`] — 5-fold **stratified** cross-validation ("each user's
//!   answers are allocated uniformly across folds", Section IV-A);
//! * [`fold`] — one train/evaluate iteration of our three models and
//!   the three baselines (SPARFA / MF / Poisson regression);
//! * [`experiments`] — Table I, Figure 3 (vote/time correlation),
//!   Figure 4 (feature CDFs), Figure 5 (topic-count sweep), Figure 6
//!   (leave-one-feature-out importance), Figure 7 (feature groups ×
//!   history length);
//! * [`parallel`] — a small crossbeam-scoped parallel map used to run
//!   folds and sweep points concurrently.
//!
//! # Example
//!
//! ```no_run
//! use forumcast_eval::experiments::table1;
//! use forumcast_eval::EvalConfig;
//!
//! let report = table1::run(&EvalConfig::quick());
//! println!("{report}");
//! ```

pub mod baselines;
pub mod columnar;
pub mod config;
pub mod data;
pub mod experiments;
pub mod fold;
pub mod metrics;
pub mod parallel;
pub mod split;
pub mod subfold;

pub use columnar::{ColumnarError, RowStream, SpilledExperiment};
pub use config::EvalConfig;
pub use data::{ExperimentData, PairRecord};
pub use experiments::{run_cv, run_cv_resumable, run_cv_streamed, CvError, CvOptions};
pub use fold::{run_fold_streamed, FoldOutcome, MaskSpec};
pub use forumcast_resilience::CkptFormat;
pub use metrics::{auc, cdf_points, mae, pearson, rmse, spearman};
pub use subfold::SubfoldHandle;
