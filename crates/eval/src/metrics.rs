//! Evaluation metrics (Section IV-A: AUC and RMSE; Figure 3 uses
//! correlations; Figure 4 uses empirical CDFs).

/// Area under the ROC curve via the Mann–Whitney U statistic with tie
/// correction: the probability a random positive scores above a
/// random negative (+½ per tie). The paper uses AUC for the `â` task
/// "due to dataset imbalance".
///
/// Returns 0.5 when either class is empty.
///
/// # Example
///
/// ```
/// use forumcast_eval::auc;
/// let scores = [0.9, 0.8, 0.3, 0.2];
/// let labels = [true, true, false, false];
/// assert_eq!(auc(&scores, &labels), 1.0);
/// ```
///
/// # Panics
///
/// Panics when `scores` and `labels` lengths differ.
pub fn auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Average ranks with tie handling (1-based ranks).
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let rank_sum: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(&r, _)| r)
        .sum();
    let u = rank_sum - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Root-mean-squared error between predictions and targets (the
/// paper's metric for `v̂` and `r̂`). Returns 0 for empty input.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn rmse(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let sse: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    (sse / predictions.len() as f64).sqrt()
}

/// Mean absolute error. Returns 0 for empty input.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn mae(predictions: &[f64], targets: &[f64]) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / predictions.len() as f64
}

/// Pearson correlation coefficient. Returns 0 when either side has
/// zero variance or fewer than two points.
///
/// # Panics
///
/// Panics when lengths differ.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Spearman rank correlation (Pearson over tie-averaged ranks).
///
/// # Panics
///
/// Panics when lengths differ.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks_of(xs), &ranks_of(ys))
}

/// Tie-averaged ranks of a slice.
fn ranks_of(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Empirical CDF sampled at `points` evenly spaced quantile positions
/// — the series behind the paper's Figure 4 panels. Returns
/// `(value, cumulative_fraction)` pairs; empty input yields an empty
/// vector.
pub fn cdf_points(values: &[f64], points: usize) -> Vec<(f64, f64)> {
    if values.is_empty() || points == 0 {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    (1..=points)
        .map(|i| {
            let frac = i as f64 / points as f64;
            let idx = ((frac * n as f64).ceil() as usize - 1).min(n - 1);
            (sorted[idx], frac)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [true, true, false, false];
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &labels), 1.0);
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &labels), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        // Equal scores → all ties → 0.5.
        assert_eq!(
            auc(&[0.5; 6], &[true, false, true, false, true, false]),
            0.5
        );
    }

    #[test]
    fn auc_handles_partial_overlap() {
        // pos: 0.8, 0.4; neg: 0.6, 0.2 → pairs won: (0.8>0.6, 0.8>0.2,
        // 0.4<0.6, 0.4>0.2) = 3/4.
        let a = auc(&[0.8, 0.4, 0.6, 0.2], &[true, true, false, false]);
        assert!((a - 0.75).abs() < 1e-12);
    }

    #[test]
    fn auc_is_invariant_under_monotone_transform() {
        let scores: [f64; 5] = [0.1, 0.7, 0.3, 0.9, 0.5];
        let labels = [false, true, false, true, true];
        let squashed: Vec<f64> = scores.iter().map(|&s| s.powi(3) * 2.0 + 1.0).collect();
        assert!((auc(&scores, &labels) - auc(&squashed, &labels)).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_classes() {
        assert_eq!(auc(&[1.0, 2.0], &[true, true]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn rmse_and_mae_known_values() {
        let p = [1.0, 2.0, 3.0];
        let t = [1.0, 4.0, 1.0];
        assert!((rmse(&p, &t) - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mae(&p, &t) - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn pearson_linear_relationship() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let down: Vec<f64> = xs.iter().map(|x| -x).collect();
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn spearman_captures_monotone_nonlinear() {
        let xs: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.exp()).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_of_independent_ranks_is_small() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 1.0, 4.0, 3.0];
        let s = spearman(&xs, &ys);
        assert!(s.abs() < 0.65, "{s}");
    }

    #[test]
    fn cdf_points_are_monotone() {
        let values = [5.0, 1.0, 3.0, 2.0, 4.0];
        let cdf = cdf_points(&values, 5);
        assert_eq!(cdf.len(), 5);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cdf.last().unwrap().0, 5.0);
        assert_eq!(cdf.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_empty_inputs() {
        assert!(cdf_points(&[], 5).is_empty());
        assert!(cdf_points(&[1.0], 0).is_empty());
    }
}
