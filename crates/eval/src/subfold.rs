//! Sub-fold (mid-training) checkpoint plumbing for resumable CV.
//!
//! A [`SubfoldHandle`] binds one fold job to its on-disk
//! [`TrainCheckpoint`] file: `<base>.fold<job>.train.json`, next to
//! the fold-level checkpoint at `<base>`. While the fold trains, the
//! handle persists every `snapshot_every`-th epoch's
//! [`TrainProgress`] atomically; when the fold is re-run after a
//! crash, the handle loads the latest snapshot back and the trainer
//! fast-forwards through the recorded epochs to a bitwise-identical
//! trajectory. A completed fold discards its file — the fold-level
//! checkpoint now carries the outcome.
//!
//! Failure policy, per layer:
//!
//! * missing file — fresh fold, train from scratch;
//! * corrupt / truncated file — **never trusted**: counted under
//!   `eval.subfold.corrupt` and ignored, falling back to a fold-start
//!   recompute (which still reproduces the uninterrupted run);
//! * stale fingerprint (file from a differently-configured run) — a
//!   hard [`CheckpointError::Stale`] error, surfaced *before* any
//!   fold work starts so the operator sees the remedy immediately;
//! * failed save — best-effort: counted under
//!   `eval.subfold.save_failed`, training continues (the fold merely
//!   loses resume granularity).

use std::path::{Path, PathBuf};

use forumcast_core::TrainProgress;
use forumcast_resilience::fault::{self, FaultSite};
use forumcast_resilience::{CheckpointError, TrainCheckpoint};

/// One fold job's sub-fold checkpoint binding. See the module docs
/// for the failure policy.
#[derive(Debug)]
pub struct SubfoldHandle {
    path: PathBuf,
    fingerprint: String,
    snapshot_every: usize,
    /// Fault unit for both the post-save kill probe (`fold-panic`)
    /// and the save-failure probe (`ckpt-write`): total job count +
    /// job index, disjoint from the fold-level unit spaces.
    kill_unit: u64,
}

impl SubfoldHandle {
    /// Binds fold `job` of the run fingerprinted by `cv_meta` to its
    /// snapshot file under `base` (the fold-level checkpoint path).
    /// `kill_unit` is the fault-probe unit (total jobs + job index).
    ///
    /// The fingerprint deliberately excludes the snapshot cadence:
    /// snapshots never perturb training, so resuming under a changed
    /// cadence still reproduces the uninterrupted run.
    pub fn new(
        base: &Path,
        job: usize,
        cv_meta: &str,
        snapshot_every: usize,
        kill_unit: u64,
    ) -> Self {
        let mut name = base.as_os_str().to_os_string();
        name.push(format!(".fold{job}.train.json"));
        SubfoldHandle {
            path: PathBuf::from(name),
            fingerprint: format!("subfold-v1 job={job} {cv_meta}"),
            snapshot_every,
            kill_unit,
        }
    }

    /// The snapshot file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The snapshot cadence (epochs between saves; never 0 for a
    /// handle the CV driver constructs).
    pub fn snapshot_every(&self) -> usize {
        self.snapshot_every
    }

    /// Pre-flight check run before any fold work: surfaces a stale
    /// snapshot (wrong fingerprint) as a hard error carrying the
    /// path, both fingerprints, and the remedy. Every other state —
    /// missing, corrupt, valid — is acceptable here and resolved by
    /// [`load`](Self::load).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Stale`] exactly when the file
    /// exists, parses, and belongs to a different run.
    pub fn check(&self) -> Result<(), CheckpointError> {
        match TrainCheckpoint::<TrainProgress>::load(&self.path, &self.fingerprint) {
            Err(e @ CheckpointError::Stale { .. }) => Err(e),
            _ => Ok(()),
        }
    }

    /// Loads the resume snapshot, if a trustworthy one exists.
    /// Corrupt or unreadable files are counted and ignored — the fold
    /// recomputes from its start, which is always safe.
    pub fn load(&self) -> Option<TrainProgress> {
        match TrainCheckpoint::<TrainProgress>::load(&self.path, &self.fingerprint) {
            Ok(found) => found.map(|cp| cp.payload),
            Err(e) => {
                forumcast_obs::counter_add("eval.subfold.corrupt", 1);
                forumcast_obs::mark("eval.subfold.corrupt", self.kill_unit);
                eprintln!("warning: ignoring unusable sub-fold checkpoint: {e}");
                None
            }
        }
    }

    /// Persists `progress` atomically, then probes the mid-training
    /// kill site (`fold-panic` at `kill_unit`) — the injected analogue
    /// of a crash landing right after a snapshot hits disk. Save
    /// failures are best-effort (counted, training continues).
    pub fn save(&self, progress: &TrainProgress) {
        match TrainCheckpoint::new(&*self.fingerprint, progress.clone())
            .save(&self.path, self.kill_unit)
        {
            Ok(()) => {}
            Err(e) => {
                forumcast_obs::counter_add("eval.subfold.save_failed", 1);
                eprintln!("warning: sub-fold checkpoint save failed (continuing): {e}");
            }
        }
        fault::panic_point(FaultSite::FoldPanic, self.kill_unit);
    }

    /// Removes the snapshot file once the fold completes — its result
    /// now lives in the fold-level checkpoint.
    pub fn discard(&self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_base(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "forumcast-subfold-{name}-{}.json",
            std::process::id()
        ));
        p
    }

    fn handle(base: &Path) -> SubfoldHandle {
        SubfoldHandle::new(base, 3, "cv folds=2 seed=1", 25, 10)
    }

    #[test]
    fn path_nests_under_the_fold_checkpoint_base() {
        let base = temp_base("path");
        let h = handle(&base);
        let expected = format!("{}.fold3.train.json", base.display());
        assert_eq!(h.path().display().to_string(), expected);
    }

    #[test]
    fn save_load_discard_roundtrip() {
        let base = temp_base("roundtrip");
        let h = handle(&base);
        assert!(h.load().is_none(), "fresh handle has no snapshot");
        h.save(&TrainProgress::default());
        assert!(h.check().is_ok());
        assert!(h.load().is_some());
        h.discard();
        assert!(h.load().is_none());
    }

    #[test]
    fn corrupt_snapshot_is_ignored_not_trusted() {
        let base = temp_base("corrupt");
        let h = handle(&base);
        h.save(&TrainProgress::default());
        let json = std::fs::read_to_string(h.path()).unwrap();
        std::fs::write(h.path(), &json[..json.len() / 3]).unwrap();
        assert!(h.check().is_ok(), "corrupt is not stale");
        assert!(h.load().is_none());
        h.discard();
    }

    #[test]
    fn stale_snapshot_fails_the_preflight_check() {
        let base = temp_base("stale");
        let writer = SubfoldHandle::new(&base, 3, "cv folds=5 seed=9", 25, 10);
        writer.save(&TrainProgress::default());
        let reader = handle(&base);
        let err = reader.check().unwrap_err();
        assert!(matches!(err, CheckpointError::Stale { .. }), "{err}");
        assert!(err.to_string().contains("--resume"), "{err}");
        writer.discard();
    }
}
