//! Sub-fold (mid-training) checkpoint plumbing for resumable CV.
//!
//! A [`SubfoldHandle`] binds one fold job to its on-disk
//! [`TrainCheckpoint`] file: `<base>.fold<job>.train.ckpt` (framed
//! binary; `.json` when the run selects the legacy JSON format), next
//! to the fold-level checkpoint at `<base>`. While the fold trains,
//! the handle persists every `snapshot_every`-th epoch's
//! [`TrainProgress`] atomically; when the fold is re-run after a
//! crash, the handle loads the latest snapshot back and the trainer
//! fast-forwards through the recorded epochs to a bitwise-identical
//! trajectory. A completed fold discards its file — the fold-level
//! checkpoint now carries the outcome.
//!
//! A binary-format handle also *reads* the legacy
//! `<base>.fold<job>.train.json` path left behind by an older build,
//! so an in-flight resume survives the format switch; new snapshots
//! are always written in the selected format.
//!
//! Failure policy, per layer:
//!
//! * missing file — fresh fold, train from scratch;
//! * corrupt / truncated file — **never trusted**: quarantined to
//!   `<file>.corrupt` by the loader, counted under
//!   `eval.subfold.corrupt`, and ignored, falling back to a
//!   fold-start recompute (which still reproduces the uninterrupted
//!   run);
//! * stale fingerprint (file from a differently-configured run) — a
//!   hard [`CheckpointError::Stale`] error, surfaced *before* any
//!   fold work starts so the operator sees the remedy immediately;
//! * failed save — best-effort: counted under
//!   `eval.subfold.save_failed`, training continues (the fold merely
//!   loses resume granularity).

use std::path::{Path, PathBuf};
use std::time::Instant;

use forumcast_core::TrainProgress;
use forumcast_resilience::fault::{self, FaultSite};
use forumcast_resilience::{reclaim_tmp, CheckpointError, CkptFormat, TrainCheckpoint};

/// One fold job's sub-fold checkpoint binding. See the module docs
/// for the failure policy.
#[derive(Debug)]
pub struct SubfoldHandle {
    path: PathBuf,
    /// Legacy JSON snapshot path, read (never written) by a
    /// binary-format handle so resumes survive the format migration.
    legacy_path: Option<PathBuf>,
    fingerprint: String,
    snapshot_every: usize,
    format: CkptFormat,
    /// Fault unit for both the post-save kill probe (`fold-panic`)
    /// and the save-failure probes (`ckpt-write`, `torn-write`,
    /// `bit-flip`, `fsync-fail`): total job count + job index,
    /// disjoint from the fold-level unit spaces.
    kill_unit: u64,
}

impl SubfoldHandle {
    /// Binds fold `job` of the run fingerprinted by `cv_meta` to its
    /// snapshot file under `base` (the fold-level checkpoint path).
    /// `kill_unit` is the fault-probe unit (total jobs + job index).
    ///
    /// The fingerprint deliberately excludes the snapshot cadence and
    /// the on-disk format: neither perturbs training, so resuming
    /// under a changed cadence or format still reproduces the
    /// uninterrupted run.
    pub fn new(
        base: &Path,
        job: usize,
        cv_meta: &str,
        snapshot_every: usize,
        kill_unit: u64,
        format: CkptFormat,
    ) -> Self {
        let suffixed = |ext: &str| {
            let mut name = base.as_os_str().to_os_string();
            name.push(format!(".fold{job}.train.{ext}"));
            PathBuf::from(name)
        };
        let (path, legacy_path) = match format {
            CkptFormat::Binary => (suffixed("ckpt"), Some(suffixed("json"))),
            CkptFormat::Json => (suffixed("json"), None),
        };
        SubfoldHandle {
            path,
            legacy_path,
            fingerprint: format!("subfold-v1 job={job} {cv_meta}"),
            snapshot_every,
            format,
            kill_unit,
        }
    }

    /// The snapshot file path (in the handle's write format).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The snapshot cadence (epochs between saves; never 0 for a
    /// handle the CV driver constructs).
    pub fn snapshot_every(&self) -> usize {
        self.snapshot_every
    }

    /// The paths a resume may read: the primary path first, then the
    /// legacy JSON path a pre-migration build would have written.
    fn read_paths(&self) -> impl Iterator<Item = &Path> {
        std::iter::once(self.path.as_path()).chain(self.legacy_path.as_deref())
    }

    /// Pre-flight check run before any fold work: surfaces a stale
    /// snapshot (wrong fingerprint) as a hard error carrying the
    /// path, both fingerprints, and the remedy. Every other state —
    /// missing, corrupt, valid — is acceptable here and resolved by
    /// [`load`](Self::load).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Stale`] exactly when a snapshot
    /// file (primary or legacy) exists, parses, and belongs to a
    /// different run.
    pub fn check(&self) -> Result<(), CheckpointError> {
        for path in self.read_paths() {
            if let Err(e @ CheckpointError::Stale { .. }) =
                TrainCheckpoint::<TrainProgress>::load(path, &self.fingerprint)
            {
                return Err(e);
            }
        }
        Ok(())
    }

    /// Loads the resume snapshot, if a trustworthy one exists,
    /// preferring the primary path and falling back to the legacy
    /// JSON one. A stale `.tmp` leftover from a crash mid-save is
    /// reclaimed first. Corrupt or unreadable files are counted
    /// (`eval.subfold.corrupt`) and skipped — with no usable
    /// snapshot the fold recomputes from its start, which is always
    /// safe. Per-read time lands in the `ckpt.subfold.read_ms`
    /// latency histogram (p50/p99 in the timing summary).
    pub fn load(&self) -> Option<TrainProgress> {
        reclaim_tmp(&self.path);
        let started = Instant::now();
        let mut found = None;
        for path in self.read_paths() {
            match TrainCheckpoint::<TrainProgress>::load(path, &self.fingerprint) {
                Ok(Some(cp)) => {
                    found = Some(cp.payload);
                    break;
                }
                Ok(None) => {}
                Err(e) => {
                    forumcast_obs::counter_add("eval.subfold.corrupt", 1);
                    forumcast_obs::mark("eval.subfold.corrupt", self.kill_unit);
                    eprintln!("warning: ignoring unusable sub-fold checkpoint: {e}");
                }
            }
        }
        forumcast_obs::observe(
            "ckpt.subfold.read_ms",
            u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
        );
        found
    }

    /// Persists `progress` atomically in the handle's format, then
    /// probes the mid-training kill site (`fold-panic` at
    /// `kill_unit`) — the injected analogue of a crash landing right
    /// after a snapshot hits disk. Save failures are best-effort
    /// (counted, training continues).
    pub fn save(&self, progress: &TrainProgress) {
        match TrainCheckpoint::new(&*self.fingerprint, progress.clone()).save_with(
            &self.path,
            self.kill_unit,
            self.format,
        ) {
            Ok(()) => {}
            Err(e) => {
                forumcast_obs::counter_add("eval.subfold.save_failed", 1);
                eprintln!("warning: sub-fold checkpoint save failed (continuing): {e}");
            }
        }
        fault::panic_point(FaultSite::FoldPanic, self.kill_unit);
    }

    /// Removes the snapshot file (and any legacy-format leftover)
    /// once the fold completes — its result now lives in the
    /// fold-level checkpoint.
    pub fn discard(&self) {
        for path in self.read_paths() {
            let _ = std::fs::remove_file(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_base(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "forumcast-subfold-{name}-{}.json",
            std::process::id()
        ));
        p
    }

    fn handle(base: &Path) -> SubfoldHandle {
        SubfoldHandle::new(base, 3, "cv folds=2 seed=1", 25, 10, CkptFormat::Binary)
    }

    #[test]
    fn path_nests_under_the_fold_checkpoint_base() {
        let base = temp_base("path");
        let h = handle(&base);
        let expected = format!("{}.fold3.train.ckpt", base.display());
        assert_eq!(h.path().display().to_string(), expected);
        let legacy = SubfoldHandle::new(&base, 3, "m", 25, 10, CkptFormat::Json);
        let expected = format!("{}.fold3.train.json", base.display());
        assert_eq!(legacy.path().display().to_string(), expected);
    }

    #[test]
    fn save_load_discard_roundtrip() {
        let base = temp_base("roundtrip");
        let h = handle(&base);
        assert!(h.load().is_none(), "fresh handle has no snapshot");
        h.save(&TrainProgress::default());
        assert!(h.check().is_ok());
        assert!(h.load().is_some());
        h.discard();
        assert!(h.load().is_none());
    }

    #[test]
    fn corrupt_snapshot_is_ignored_not_trusted() {
        let base = temp_base("corrupt");
        let h = handle(&base);
        h.save(&TrainProgress::default());
        // Flip a bit in the last frame's CRC: the frame checksum
        // catches it and the loader quarantines the file rather than
        // trusting the contents.
        let mut bad = std::fs::read(h.path()).unwrap();
        *bad.last_mut().unwrap() ^= 0x10;
        std::fs::write(h.path(), &bad).unwrap();
        assert!(h.check().is_ok(), "corrupt is not stale");
        assert!(h.load().is_none());
        let quarantined = std::path::PathBuf::from(format!("{}.corrupt", h.path().display()));
        assert!(quarantined.exists(), "corrupt snapshot is moved aside");
        std::fs::remove_file(&quarantined).unwrap();
        h.discard();
    }

    #[test]
    fn legacy_json_snapshot_is_read_by_a_binary_handle() {
        let base = temp_base("legacy");
        let meta = "cv folds=2 seed=1";
        let old = SubfoldHandle::new(&base, 3, meta, 25, 10, CkptFormat::Json);
        old.save(&TrainProgress::default());
        let new = handle(&base);
        assert!(new.check().is_ok());
        assert!(
            new.load().is_some(),
            "binary handle must fall back to the legacy JSON snapshot"
        );
        new.discard();
        assert!(!old.path().exists(), "discard removes the legacy file too");
    }

    #[test]
    fn stale_tmp_leftover_is_reclaimed_on_load() {
        let base = temp_base("tmpreclaim");
        let h = handle(&base);
        let tmp = h.path().with_extension("tmp");
        std::fs::write(&tmp, b"half-written junk").unwrap();
        assert!(h.load().is_none());
        assert!(!tmp.exists(), "load must reclaim the stale tmp file");
    }

    #[test]
    fn stale_snapshot_fails_the_preflight_check() {
        let base = temp_base("stale");
        let writer = SubfoldHandle::new(&base, 3, "cv folds=5 seed=9", 25, 10, CkptFormat::Binary);
        writer.save(&TrainProgress::default());
        let reader = handle(&base);
        let err = reader.check().unwrap_err();
        assert!(matches!(err, CheckpointError::Stale { .. }), "{err}");
        assert!(err.to_string().contains("--resume"), "{err}");
        writer.discard();
    }
}
