//! Stratified k-fold assignment (the paper's CV protocol).

use rand::seq::SliceRandom;
use rand::Rng;

/// Assigns each sample to one of `k` folds, **stratified by group**:
/// every group's samples are spread as evenly as possible across
/// folds (the paper stratifies each user's answers "due to variation
/// in user activity"). Returns a fold index per sample.
///
/// # Panics
///
/// Panics when `k == 0`.
///
/// # Example
///
/// ```
/// use forumcast_eval::split::stratified_folds;
/// use rand::{rngs::StdRng, SeedableRng};
/// let groups = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
/// let folds = stratified_folds(&groups, 5, &mut StdRng::seed_from_u64(1));
/// // Each user's 5 answers land in 5 distinct folds.
/// for user in 0..2u32 {
///     let mut seen: Vec<usize> = folds
///         .iter()
///         .zip(&groups)
///         .filter(|(_, &g)| g == user)
///         .map(|(&f, _)| f)
///         .collect();
///     seen.sort_unstable();
///     assert_eq!(seen, vec![0, 1, 2, 3, 4]);
/// }
/// ```
pub fn stratified_folds<R: Rng + ?Sized>(groups: &[u32], k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k > 0, "need at least one fold");
    let mut by_group: std::collections::HashMap<u32, Vec<usize>> = std::collections::HashMap::new();
    for (i, &g) in groups.iter().enumerate() {
        by_group.entry(g).or_default().push(i);
    }
    let mut folds = vec![0usize; groups.len()];
    // Deterministic group order, then shuffle within each group and
    // deal round-robin from a random offset.
    let mut keys: Vec<u32> = by_group.keys().copied().collect();
    keys.sort_unstable();
    for key in keys {
        let members = by_group.get_mut(&key).expect("key exists");
        members.shuffle(rng);
        let offset = rng.gen_range(0..k);
        for (j, &i) in members.iter().enumerate() {
            folds[i] = (offset + j) % k;
        }
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn folds_are_in_range() {
        let groups: Vec<u32> = (0..100).map(|i| i % 7).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let folds = stratified_folds(&groups, 5, &mut rng);
        assert!(folds.iter().all(|&f| f < 5));
        assert_eq!(folds.len(), 100);
    }

    #[test]
    fn group_samples_spread_evenly() {
        // A group with 13 samples over 5 folds: sizes differ by <= 1.
        let groups = vec![9u32; 13];
        let mut rng = StdRng::seed_from_u64(3);
        let folds = stratified_folds(&groups, 5, &mut rng);
        let mut counts = [0usize; 5];
        for &f in &folds {
            counts[f] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "{counts:?}");
    }

    #[test]
    fn overall_fold_sizes_are_balanced() {
        let groups: Vec<u32> = (0..500).map(|i| (i % 50) as u32).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let folds = stratified_folds(&groups, 5, &mut rng);
        let mut counts = [0usize; 5];
        for &f in &folds {
            counts[f] += 1;
        }
        for &c in &counts {
            assert!((90..=110).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let groups: Vec<u32> = (0..50).map(|i| i % 3).collect();
        let a = stratified_folds(&groups, 4, &mut StdRng::seed_from_u64(7));
        let b = stratified_folds(&groups, 4, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_gives_empty_folds() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(stratified_folds(&[], 3, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one fold")]
    fn zero_folds_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        stratified_folds(&[1], 0, &mut rng);
    }
}
