//! The paper's three baselines (Section IV-A): SPARFA for `â`, MF for
//! `v̂`, Poisson regression for `r̂`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use forumcast_features::Normalizer;
use forumcast_ml::{MatrixFactorization, MfConfig, PoissonRegression, Sparfa, SparfaConfig};

use crate::data::{ExperimentData, PairRecord};

/// Trained baselines for one CV fold.
#[derive(Debug)]
pub struct Baselines {
    sparfa: Sparfa,
    mf: MatrixFactorization,
    poisson: PoissonRegression,
    poisson_norm: Normalizer,
    /// Largest training delay — the Poisson prediction is clamped to
    /// it, since an exp link on raw features occasionally extrapolates
    /// to astronomically large rates on held-out pairs.
    max_train_delay: f64,
}

impl Baselines {
    /// Trains all three baselines on the training-fold records.
    ///
    /// SPARFA and MF learn **only from `(user, question)` indices**
    /// (that is the point of the comparison: it isolates the value of
    /// the feature vectors); Poisson regression uses the same features
    /// `x_{u,q}` as our models with the discretized target `⌈r⌉`.
    pub fn train(
        data: &ExperimentData,
        train_pos: &[usize],
        train_neg: &[usize],
        seed: u64,
    ) -> Self {
        let pos: Vec<(usize, usize, f64, f64)> = train_pos
            .iter()
            .map(|&i| {
                let p = &data.positives[i];
                (p.user.index(), p.target, p.votes, p.response_time)
            })
            .collect();
        let neg: Vec<(usize, usize)> = train_neg
            .iter()
            .map(|&i| {
                let n = &data.negatives[i];
                (n.user.index(), n.target)
            })
            .collect();
        let xs: Vec<Vec<f64>> = train_pos
            .iter()
            .map(|&i| data.positives[i].x.clone())
            .collect();
        Self::train_from_parts(
            data.num_users,
            data.num_targets,
            data.dim,
            &pos,
            &neg,
            xs,
            seed,
        )
    }

    /// [`train`](Self::train) decomposed into its raw ingredients —
    /// the entry point for the spilled (columnar) path, which holds
    /// per-record metadata resident but streams feature vectors from
    /// disk. `pos` carries `(user index, target, votes, response
    /// time)` per training positive and `xs` the matching raw feature
    /// vectors, both in training order; `neg` carries `(user index,
    /// target)` per training negative. The RNG consumption sequence
    /// is identical to [`train`](Self::train), so both paths produce
    /// bitwise-identical models from the same training folds.
    pub fn train_from_parts(
        num_users: usize,
        num_targets: usize,
        dim: usize,
        pos: &[(usize, usize, f64, f64)],
        neg: &[(usize, usize)],
        xs: Vec<Vec<f64>>,
        seed: u64,
    ) -> Self {
        assert_eq!(pos.len(), xs.len(), "one raw x per training positive");
        let mut rng = StdRng::seed_from_u64(seed);

        // SPARFA on the binary answer matrix (positives + negatives).
        let mut obs: Vec<(usize, usize, bool)> = Vec::with_capacity(pos.len() * 2);
        for &(user, target, _, _) in pos {
            obs.push((user, target, true));
        }
        for &(user, target) in neg {
            obs.push((user, target, false));
        }
        let mut sparfa = Sparfa::new(num_users, num_targets, SparfaConfig::default(), &mut rng);
        sparfa.fit(&obs, &mut rng);

        // MF on observed votes.
        let triplets: Vec<(usize, usize, f64)> = pos
            .iter()
            .map(|&(user, target, votes, _)| (user, target, votes))
            .collect();
        let mut mf =
            MatrixFactorization::new(num_users, num_targets, MfConfig::default(), &mut rng);
        mf.fit(&triplets, &mut rng);

        // Poisson regression on ⌈r⌉ with the *raw* feature vectors —
        // "we use the features x_{u,q} as regressors" (Section
        // IV-A(iii)). The exponential link on unscaled features is
        // exactly what makes this baseline fragile on heavy-tailed
        // delays, which is the behavior the paper reports. (The
        // `baselines` ablation bench also measures a z-scored variant,
        // which is stronger than the paper's.)
        let poisson_norm = Normalizer::identity(dim);
        let ys: Vec<f64> = pos.iter().map(|&(_, _, _, rt)| rt.ceil()).collect();
        let mut poisson = PoissonRegression::new(dim);
        poisson.fit(&xs, &ys, 120, 0.02, 1e-4, &mut rng);
        let max_train_delay = ys.iter().cloned().fold(1.0, f64::max);

        Baselines {
            sparfa,
            mf,
            poisson,
            poisson_norm,
            max_train_delay,
        }
    }

    /// SPARFA score for a record (answer-task baseline).
    pub fn score_answer(&self, r: &PairRecord) -> f64 {
        self.score_answer_at(r.user.index(), r.target)
    }

    /// SPARFA score by `(user index, target)` — the spilled path's
    /// entry, which has no materialized [`PairRecord`]s.
    pub fn score_answer_at(&self, user: usize, target: usize) -> f64 {
        self.sparfa.predict_proba(user, target)
    }

    /// MF prediction for a record (vote-task baseline).
    pub fn predict_votes(&self, r: &PairRecord) -> f64 {
        self.predict_votes_at(r.user.index(), r.target)
    }

    /// MF prediction by `(user index, target)`.
    pub fn predict_votes_at(&self, user: usize, target: usize) -> f64 {
        self.mf.predict(user, target)
    }

    /// Poisson-regression prediction for a record (timing baseline),
    /// clamped to the largest delay seen in training.
    pub fn predict_response_time(&self, r: &PairRecord) -> f64 {
        self.predict_response_time_x(&r.x)
    }

    /// Poisson-regression prediction from a raw feature vector.
    pub fn predict_response_time_x(&self, x: &[f64]) -> f64 {
        self.poisson
            .predict(&self.poisson_norm.transform(x))
            .min(self.max_train_delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::data::ExperimentData;

    fn data() -> ExperimentData {
        let cfg = EvalConfig::quick();
        let (ds, _) = cfg.synth.generate().preprocess();
        ExperimentData::build(&ds, &cfg)
    }

    #[test]
    fn baselines_train_and_predict_finite() {
        let d = data();
        let pos: Vec<usize> = (0..d.positives.len()).collect();
        let neg: Vec<usize> = (0..d.negatives.len()).collect();
        let b = Baselines::train(&d, &pos, &neg, 1);
        let p = &d.positives[0];
        assert!((0.0..=1.0).contains(&b.score_answer(p)));
        assert!(b.predict_votes(p).is_finite());
        assert!(b.predict_response_time(p) > 0.0);
    }

    #[test]
    fn sparfa_separates_train_positives_from_negatives() {
        let d = data();
        let pos: Vec<usize> = (0..d.positives.len()).collect();
        let neg: Vec<usize> = (0..d.negatives.len()).collect();
        let b = Baselines::train(&d, &pos, &neg, 2);
        let avg_pos: f64 = pos
            .iter()
            .map(|&i| b.score_answer(&d.positives[i]))
            .sum::<f64>()
            / pos.len() as f64;
        let avg_neg: f64 = neg
            .iter()
            .map(|&i| b.score_answer(&d.negatives[i]))
            .sum::<f64>()
            / neg.len() as f64;
        assert!(avg_pos > avg_neg, "{avg_pos} vs {avg_neg}");
    }

    #[test]
    fn poisson_baseline_prediction_is_positive() {
        let d = data();
        let pos: Vec<usize> = (0..d.positives.len()).collect();
        let neg: Vec<usize> = (0..d.negatives.len()).collect();
        let b = Baselines::train(&d, &pos, &neg, 3);
        for p in d.positives.iter().take(20) {
            let r = b.predict_response_time(p);
            assert!(r > 0.0 && r.is_finite());
        }
    }
}
