//! The paper's three baselines (Section IV-A): SPARFA for `â`, MF for
//! `v̂`, Poisson regression for `r̂`.

use rand::rngs::StdRng;
use rand::SeedableRng;

use forumcast_features::Normalizer;
use forumcast_ml::{MatrixFactorization, MfConfig, PoissonRegression, Sparfa, SparfaConfig};

use crate::data::{ExperimentData, PairRecord};

/// Trained baselines for one CV fold.
#[derive(Debug)]
pub struct Baselines {
    sparfa: Sparfa,
    mf: MatrixFactorization,
    poisson: PoissonRegression,
    poisson_norm: Normalizer,
    /// Largest training delay — the Poisson prediction is clamped to
    /// it, since an exp link on raw features occasionally extrapolates
    /// to astronomically large rates on held-out pairs.
    max_train_delay: f64,
}

impl Baselines {
    /// Trains all three baselines on the training-fold records.
    ///
    /// SPARFA and MF learn **only from `(user, question)` indices**
    /// (that is the point of the comparison: it isolates the value of
    /// the feature vectors); Poisson regression uses the same features
    /// `x_{u,q}` as our models with the discretized target `⌈r⌉`.
    pub fn train(
        data: &ExperimentData,
        train_pos: &[usize],
        train_neg: &[usize],
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);

        // SPARFA on the binary answer matrix (positives + negatives).
        let mut obs: Vec<(usize, usize, bool)> = Vec::with_capacity(train_pos.len() * 2);
        for &i in train_pos {
            let p = &data.positives[i];
            obs.push((p.user.index(), p.target, true));
        }
        for &i in train_neg {
            let n = &data.negatives[i];
            obs.push((n.user.index(), n.target, false));
        }
        let mut sparfa = Sparfa::new(
            data.num_users,
            data.num_targets,
            SparfaConfig::default(),
            &mut rng,
        );
        sparfa.fit(&obs, &mut rng);

        // MF on observed votes.
        let triplets: Vec<(usize, usize, f64)> = train_pos
            .iter()
            .map(|&i| {
                let p = &data.positives[i];
                (p.user.index(), p.target, p.votes)
            })
            .collect();
        let mut mf = MatrixFactorization::new(
            data.num_users,
            data.num_targets,
            MfConfig::default(),
            &mut rng,
        );
        mf.fit(&triplets, &mut rng);

        // Poisson regression on ⌈r⌉ with the *raw* feature vectors —
        // "we use the features x_{u,q} as regressors" (Section
        // IV-A(iii)). The exponential link on unscaled features is
        // exactly what makes this baseline fragile on heavy-tailed
        // delays, which is the behavior the paper reports. (The
        // `baselines` ablation bench also measures a z-scored variant,
        // which is stronger than the paper's.)
        let raw: Vec<Vec<f64>> = train_pos
            .iter()
            .map(|&i| data.positives[i].x.clone())
            .collect();
        let poisson_norm = Normalizer::identity(data.dim);
        let xs = raw;
        let ys: Vec<f64> = train_pos
            .iter()
            .map(|&i| data.positives[i].response_time.ceil())
            .collect();
        let mut poisson = PoissonRegression::new(data.dim);
        poisson.fit(&xs, &ys, 120, 0.02, 1e-4, &mut rng);
        let max_train_delay = ys.iter().cloned().fold(1.0, f64::max);

        Baselines {
            sparfa,
            mf,
            poisson,
            poisson_norm,
            max_train_delay,
        }
    }

    /// SPARFA score for a record (answer-task baseline).
    pub fn score_answer(&self, r: &PairRecord) -> f64 {
        self.sparfa.predict_proba(r.user.index(), r.target)
    }

    /// MF prediction for a record (vote-task baseline).
    pub fn predict_votes(&self, r: &PairRecord) -> f64 {
        self.mf.predict(r.user.index(), r.target)
    }

    /// Poisson-regression prediction for a record (timing baseline),
    /// clamped to the largest delay seen in training.
    pub fn predict_response_time(&self, r: &PairRecord) -> f64 {
        self.poisson
            .predict(&self.poisson_norm.transform(&r.x))
            .min(self.max_train_delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::data::ExperimentData;

    fn data() -> ExperimentData {
        let cfg = EvalConfig::quick();
        let (ds, _) = cfg.synth.generate().preprocess();
        ExperimentData::build(&ds, &cfg)
    }

    #[test]
    fn baselines_train_and_predict_finite() {
        let d = data();
        let pos: Vec<usize> = (0..d.positives.len()).collect();
        let neg: Vec<usize> = (0..d.negatives.len()).collect();
        let b = Baselines::train(&d, &pos, &neg, 1);
        let p = &d.positives[0];
        assert!((0.0..=1.0).contains(&b.score_answer(p)));
        assert!(b.predict_votes(p).is_finite());
        assert!(b.predict_response_time(p) > 0.0);
    }

    #[test]
    fn sparfa_separates_train_positives_from_negatives() {
        let d = data();
        let pos: Vec<usize> = (0..d.positives.len()).collect();
        let neg: Vec<usize> = (0..d.negatives.len()).collect();
        let b = Baselines::train(&d, &pos, &neg, 2);
        let avg_pos: f64 = pos
            .iter()
            .map(|&i| b.score_answer(&d.positives[i]))
            .sum::<f64>()
            / pos.len() as f64;
        let avg_neg: f64 = neg
            .iter()
            .map(|&i| b.score_answer(&d.negatives[i]))
            .sum::<f64>()
            / neg.len() as f64;
        assert!(avg_pos > avg_neg, "{avg_pos} vs {avg_neg}");
    }

    #[test]
    fn poisson_baseline_prediction_is_positive() {
        let d = data();
        let pos: Vec<usize> = (0..d.positives.len()).collect();
        let neg: Vec<usize> = (0..d.negatives.len()).collect();
        let b = Baselines::train(&d, &pos, &neg, 3);
        for p in d.positives.iter().take(20) {
            let r = b.predict_response_time(p);
            assert!(r > 0.0 && r.is_finite());
        }
    }
}
