//! Experiment configuration.

use forumcast_core::TrainConfig;
use forumcast_features::ExtractorConfig;
use forumcast_synth::SynthConfig;

/// Configuration shared by all experiments: dataset scale, feature
/// extraction, the history protocol, and training settings.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Synthetic dataset parameters (substitutes the paper's Stack
    /// Overflow crawl; see DESIGN.md §3).
    pub synth: SynthConfig,
    /// Feature extraction (LDA topics, betweenness mode).
    pub extractor: ExtractorConfig,
    /// Fraction of (chronologically first) threads reserved as pure
    /// history: they are never evaluation targets. Approximates the
    /// paper's `F(q) = {q′ : q′ ≤ q}` tractably.
    pub warmup_frac: f64,
    /// Number of history-refresh buckets over the target range: the
    /// extractor is refitted on all prior threads at each bucket
    /// boundary instead of per-question.
    pub buckets: usize,
    /// Cross-validation folds (paper: 5).
    pub folds: usize,
    /// CV repetitions (paper: 5, for 25 iterations total).
    pub repeats: usize,
    /// Negative `(u, q)` samples per positive (paper: balanced, 1.0).
    pub negatives_per_positive: f64,
    /// Model training settings.
    pub train: TrainConfig,
    /// Worker threads for folds/sweeps (0 = auto).
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

impl EvalConfig {
    /// Paper-faithful protocol on the medium synthetic dataset:
    /// 5 folds × 5 repeats.
    pub fn paper() -> Self {
        EvalConfig {
            synth: SynthConfig::medium(),
            extractor: ExtractorConfig::paper(),
            warmup_frac: 0.3,
            buckets: 3,
            folds: 5,
            repeats: 5,
            negatives_per_positive: 1.0,
            train: TrainConfig::default(),
            threads: 0,
            seed: 0xE7A1,
        }
    }

    /// One repeat of 5-fold CV on the medium dataset — the default
    /// for the bundled experiment binaries.
    pub fn standard() -> Self {
        EvalConfig {
            repeats: 1,
            ..EvalConfig::paper()
        }
    }

    /// Small dataset, reduced epochs, 3 folds — for tests and smoke
    /// runs (minutes → seconds).
    pub fn quick() -> Self {
        EvalConfig {
            synth: SynthConfig::small(),
            extractor: ExtractorConfig::fast(),
            warmup_frac: 0.3,
            buckets: 2,
            folds: 3,
            repeats: 1,
            negatives_per_positive: 1.0,
            train: TrainConfig::fast(),
            threads: 0,
            seed: 0xE7A1,
        }
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Resolved worker-thread count.
    pub fn worker_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            crate::parallel::default_threads(8)
        }
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_cost() {
        assert!(EvalConfig::quick().folds < EvalConfig::paper().folds);
        assert!(EvalConfig::paper().repeats > EvalConfig::standard().repeats);
    }

    #[test]
    fn worker_threads_resolves() {
        let mut c = EvalConfig::quick();
        assert!(c.worker_threads() >= 1);
        c.threads = 3;
        assert_eq!(c.worker_threads(), 3);
    }

    #[test]
    fn with_seed_sets_seed() {
        assert_eq!(EvalConfig::quick().with_seed(9).seed, 9);
    }
}
