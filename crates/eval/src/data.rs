//! Assembling experiment data: pair records with features, targets,
//! negative samples, and observation windows.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use forumcast_data::{Dataset, UserId};
use forumcast_features::{ExtractorConfig, FeatureExtractor, FeatureLayout};
use forumcast_resilience::fault::{self, FaultSite};
use forumcast_resilience::with_retry;

use crate::config::EvalConfig;

/// One `(u, q)` record: the raw feature vector plus targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairRecord {
    /// The user.
    pub user: UserId,
    /// Index of the target question within [`ExperimentData`] (dense,
    /// 0-based over evaluation targets).
    pub target: usize,
    /// Raw (unnormalized) feature vector `x_{u,q}`.
    pub x: Vec<f64>,
    /// `v_{u,q}` (0 for negative records).
    pub votes: f64,
    /// `r_{u,q}` in hours (0 for negative records).
    pub response_time: f64,
}

/// A fully materialized experiment: positives (observed answers),
/// balanced negatives, per-target observation windows, and the
/// feature layout. Built once per protocol setting and shared by all
/// CV folds.
#[derive(Debug, Clone)]
pub struct ExperimentData {
    /// Feature dimension `18 + 2K`.
    pub dim: usize,
    /// Slot layout for masking experiments.
    pub layout: FeatureLayout,
    /// Population size `|U|`.
    pub num_users: usize,
    /// Number of evaluation-target questions.
    pub num_targets: usize,
    /// Observed answer pairs.
    pub positives: Vec<PairRecord>,
    /// Sampled non-answering pairs (`a_{u,q} = 0`), balanced per the
    /// paper's protocol; they double as the survival-term samples of
    /// the point-process likelihood.
    pub negatives: Vec<PairRecord>,
    /// Observation window `T − t(p_{q0})` per target.
    pub windows: Vec<f64>,
}

impl ExperimentData {
    /// Builds experiment data from a preprocessed dataset under the
    /// config's history protocol: the first `warmup_frac` of threads
    /// are history only; the remaining targets are processed in
    /// `buckets` chronological buckets, each using an extractor
    /// fitted on **all prior threads**.
    ///
    /// # Panics
    ///
    /// Panics when the dataset has too few threads for the warmup
    /// split.
    pub fn build(dataset: &Dataset, config: &EvalConfig) -> Self {
        let threads = dataset.threads();
        let warmup = ((threads.len() as f64 * config.warmup_frac) as usize)
            .clamp(1, threads.len().saturating_sub(1));
        Self::build_with_ranges(dataset, config, warmup, &config.extractor)
    }

    /// Builds experiment data where targets are `threads[warmup..]`
    /// and each bucket's features come from an extractor fitted on
    /// every earlier thread. Exposed for the history-window
    /// experiments (Figure 7) which pick their own ranges.
    pub fn build_with_ranges(
        dataset: &Dataset,
        config: &EvalConfig,
        warmup: usize,
        extractor_config: &ExtractorConfig,
    ) -> Self {
        let mut positives = Vec::new();
        let mut negatives = Vec::new();
        let shape = build_each(
            dataset,
            config,
            warmup,
            extractor_config,
            &mut |pos, neg| {
                positives.extend(pos);
                negatives.extend(neg);
            },
        );
        ExperimentData {
            dim: shape.layout.dim(),
            layout: shape.layout,
            num_users: shape.num_users,
            num_targets: shape.num_targets,
            positives,
            negatives,
            windows: shape.windows,
        }
    }

    /// Positive pairs grouped by target index (for per-thread timing
    /// observations).
    pub fn positives_by_target(&self) -> Vec<Vec<usize>> {
        let mut by_target = vec![Vec::new(); self.num_targets];
        for (i, p) in self.positives.iter().enumerate() {
            by_target[p.target].push(i);
        }
        by_target
    }

    /// Negative pairs grouped by target index.
    pub fn negatives_by_target(&self) -> Vec<Vec<usize>> {
        let mut by_target = vec![Vec::new(); self.num_targets];
        for (i, n) in self.negatives.iter().enumerate() {
            by_target[n.target].push(i);
        }
        by_target
    }
}

/// Everything a build produces besides the pair records themselves —
/// the part a spilled (on-disk) experiment keeps resident.
#[derive(Debug, Clone)]
pub(crate) struct BuildShape {
    pub layout: FeatureLayout,
    pub num_users: usize,
    pub num_targets: usize,
    pub windows: Vec<f64>,
}

/// Core build loop shared by the resident and the spilled (columnar
/// on-disk) experiment paths: runs the history protocol bucket by
/// bucket and hands each bucket's records to `sink` instead of
/// materializing the whole experiment. The record stream — contents
/// *and* order — is identical to what
/// [`ExperimentData::build_with_ranges`] accumulates, at any
/// worker-thread count; records arrive in non-decreasing target
/// order, which the columnar reader's per-target merge walk relies
/// on.
pub(crate) fn build_each(
    dataset: &Dataset,
    config: &EvalConfig,
    warmup: usize,
    extractor_config: &ExtractorConfig,
    sink: &mut dyn FnMut(Vec<PairRecord>, Vec<PairRecord>),
) -> BuildShape {
    let _span = forumcast_obs::span("features.build");
    let threads = dataset.threads();
    assert!(
        warmup >= 1 && warmup < threads.len(),
        "warmup split {warmup} out of range for {} threads",
        threads.len()
    );
    let horizon = dataset.horizon();
    let num_targets = threads.len() - warmup;
    let buckets = config.buckets.max(1).min(num_targets);
    let worker_threads = config.worker_threads();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xDA7A);

    let mut total_pos = 0u64;
    let mut total_neg = 0u64;
    let mut windows = vec![0.0; num_targets];

    let bucket_size = num_targets.div_ceil(buckets);
    for b in 0..buckets {
        let start = warmup + b * bucket_size;
        let end = (start + bucket_size).min(threads.len());
        if start >= end {
            break;
        }
        let _bucket_span = forumcast_obs::span_unit("features.bucket", b as u64);

        // Pass 1 (serial): windows, answerer lists, and negative
        // sampling. Sampling stays sequential in thread order so
        // the RNG stream — and therefore every sampled user — is
        // identical to the serial implementation regardless of
        // the worker-thread count.
        let mut plans: Vec<(&forumcast_data::Thread, usize, Vec<UserId>, Vec<UserId>)> =
            Vec::with_capacity(end - start);
        for (gi, thread) in threads[start..end].iter().enumerate() {
            let target = start + gi - warmup;
            windows[target] = (horizon - thread.asked_at()).max(0.5);

            let mut answerers: Vec<UserId> = thread.answers.iter().map(|a| a.author).collect();
            answerers.sort_unstable();
            answerers.dedup();
            // Balanced negatives, sampled "equally across
            // questions": one per positive in this thread.
            let wanted = (answerers.len() as f64 * config.negatives_per_positive).round() as usize;
            let mut guard = 0;
            let mut sampled: Vec<UserId> = Vec::with_capacity(wanted);
            while sampled.len() < wanted && guard < wanted * 50 {
                guard += 1;
                let u = UserId(rng.gen_range(0..dataset.num_users()));
                if u == thread.asker() || answerers.contains(&u) || sampled.contains(&u) {
                    continue;
                }
                sampled.push(u);
            }
            plans.push((thread, target, answerers, sampled));
        }

        // Pass 2 (parallel): per-thread feature extraction. Each
        // `(u, q)` vector is a pure function of the fitted
        // extractor and the plan, and results are flattened in
        // thread order, so the output is identical for any
        // worker-thread count.
        let extractor =
            FeatureExtractor::fit(&threads[..start], dataset.num_users(), extractor_config);
        // The bucket's feature matrix is a pure function of the
        // fitted extractor and the plans (the RNG was consumed
        // entirely in pass 1), so the materialization pass can be
        // retried wholesale. The `alloc-pressure` probe simulates
        // an allocation failure here — the largest transient
        // allocation of the build — and one bounded retry degrades
        // it to a recomputed bucket instead of an aborted sweep.
        let per_thread = with_retry(&format!("features bucket {b}"), 2, || {
            fault::panic_point(FaultSite::AllocPressure, b as u64);
            forumcast_par::parallel_map(
                &plans,
                worker_threads,
                |(thread, target, answerers, sampled)| {
                    let d_q = extractor.question_topics(thread);
                    let pos: Vec<PairRecord> = answerers
                        .iter()
                        .map(|&u| {
                            let a = thread.answer_by(u).expect("answered");
                            PairRecord {
                                user: u,
                                target: *target,
                                x: extractor.features(u, thread, &d_q),
                                votes: a.votes as f64,
                                response_time: a.timestamp - thread.asked_at(),
                            }
                        })
                        .collect();
                    let neg: Vec<PairRecord> = sampled
                        .iter()
                        .map(|&u| PairRecord {
                            user: u,
                            target: *target,
                            x: extractor.features(u, thread, &d_q),
                            votes: 0.0,
                            response_time: 0.0,
                        })
                        .collect();
                    (pos, neg)
                },
            )
        })
        .unwrap_or_else(|e| panic!("experiment data build failed: {e}"));
        let mut bucket_pos = Vec::new();
        let mut bucket_neg = Vec::new();
        for (pos, neg) in per_thread {
            bucket_pos.extend(pos);
            bucket_neg.extend(neg);
        }
        total_pos += bucket_pos.len() as u64;
        total_neg += bucket_neg.len() as u64;
        sink(bucket_pos, bucket_neg);
    }

    forumcast_obs::counter_add("features.pairs.pos", total_pos);
    forumcast_obs::counter_add("features.pairs.neg", total_neg);
    BuildShape {
        layout: FeatureLayout::new(extractor_dim_topics(extractor_config)),
        num_users: dataset.num_users() as usize,
        num_targets,
        windows,
    }
}

/// Topic count configured in an extractor config.
fn extractor_dim_topics(config: &ExtractorConfig) -> usize {
    config.lda.num_topics
}

#[cfg(test)]
mod tests {
    use super::*;
    use forumcast_synth::SynthConfig;

    fn quick_data() -> ExperimentData {
        let cfg = EvalConfig::quick();
        let (ds, _) = cfg.synth.generate().preprocess();
        ExperimentData::build(&ds, &cfg)
    }

    #[test]
    fn positives_match_dataset_answers() {
        let cfg = EvalConfig::quick();
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let warmup = (ds.num_questions() as f64 * cfg.warmup_frac) as usize;
        let expected: usize = ds.threads()[warmup..]
            .iter()
            .map(|t| {
                let mut u: Vec<_> = t.answers.iter().map(|a| a.author).collect();
                u.sort_unstable();
                u.dedup();
                u.len()
            })
            .sum();
        assert_eq!(data.positives.len(), expected);
        assert_eq!(data.num_targets, ds.num_questions() - warmup);
    }

    #[test]
    fn negatives_are_balanced_and_disjoint_from_positives() {
        let data = quick_data();
        let diff = (data.negatives.len() as f64 - data.positives.len() as f64).abs();
        let rel = diff / (data.positives.len() as f64);
        assert!(
            rel < 0.05,
            "{} negatives vs {} positives",
            data.negatives.len(),
            data.positives.len()
        );
        use std::collections::HashSet;
        let pos: HashSet<(u32, usize)> = data
            .positives
            .iter()
            .map(|p| (p.user.0, p.target))
            .collect();
        for nrec in &data.negatives {
            assert!(!pos.contains(&(nrec.user.0, nrec.target)));
        }
    }

    #[test]
    fn feature_vectors_have_layout_dim_and_are_finite() {
        let data = quick_data();
        for r in data.positives.iter().chain(&data.negatives) {
            assert_eq!(r.x.len(), data.dim);
            assert!(r.x.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn windows_are_positive_and_targets_covered() {
        let data = quick_data();
        assert!(data.windows.iter().all(|&w| w > 0.0));
        let by_target = data.positives_by_target();
        assert_eq!(by_target.len(), data.num_targets);
        let total: usize = by_target.iter().map(Vec::len).sum();
        assert_eq!(total, data.positives.len());
    }

    #[test]
    fn response_times_fit_in_windows() {
        let data = quick_data();
        for p in &data.positives {
            assert!(
                p.response_time <= data.windows[p.target] + 1e-9,
                "r {} vs window {}",
                p.response_time,
                data.windows[p.target]
            );
        }
    }

    #[test]
    fn build_identical_across_thread_counts() {
        let mut cfg = EvalConfig::quick();
        let (ds, _) = cfg.synth.generate().preprocess();
        cfg.threads = 1;
        let serial = ExperimentData::build(&ds, &cfg);
        for threads in [2, 7] {
            cfg.threads = threads;
            let par = ExperimentData::build(&ds, &cfg);
            assert_eq!(serial.positives, par.positives, "{threads} threads");
            assert_eq!(serial.negatives, par.negatives, "{threads} threads");
            assert_eq!(serial.windows, par.windows, "{threads} threads");
        }
    }

    /// The spilled path relies on records leaving the build in
    /// non-decreasing target order: each target's rows must form one
    /// contiguous run so a single streaming pass can group them.
    #[test]
    fn records_stream_in_nondecreasing_target_order() {
        let data = quick_data();
        for recs in [&data.positives, &data.negatives] {
            let mut last = 0usize;
            for r in recs.iter() {
                assert!(r.target >= last, "target {} after {last}", r.target);
                last = r.target;
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn degenerate_warmup_panics() {
        let cfg = EvalConfig::quick();
        let (ds, _) = SynthConfig::small().generate().preprocess();
        ExperimentData::build_with_ranges(&ds, &cfg, ds.num_questions(), &cfg.extractor);
    }

    /// One simulated allocation failure per bucket heals via the
    /// bucket retry, and the healed build is identical to a
    /// fault-free one — the sweep degrades gracefully instead of
    /// aborting.
    #[test]
    fn alloc_pressure_heals_to_an_identical_build() {
        let cfg = EvalConfig::quick();
        let (ds, _) = cfg.synth.generate().preprocess();
        let clean = ExperimentData::build(&ds, &cfg);
        let _guard = forumcast_resilience::FaultPlan::parse("alloc-pressure:0,alloc-pressure:1")
            .unwrap()
            .arm();
        let healed = ExperimentData::build(&ds, &cfg);
        assert_eq!(clean.positives, healed.positives);
        assert_eq!(clean.negatives, healed.negatives);
        assert_eq!(clean.windows, healed.windows);
    }

    /// Exhausting the bucket retry is a hard, labeled failure.
    #[test]
    #[should_panic(expected = "features bucket 0")]
    fn alloc_pressure_exhausting_retries_aborts_with_the_bucket_label() {
        let cfg = EvalConfig::quick();
        let (ds, _) = cfg.synth.generate().preprocess();
        let _guard = forumcast_resilience::FaultPlan::parse("alloc-pressure:0x2")
            .unwrap()
            .arm();
        ExperimentData::build(&ds, &cfg);
    }
}
