//! Columnar on-disk experiment store: the feature matrix spilled to
//! disk so paper-scale++ evaluations hold only per-record metadata
//! (a few scalars per pair) and the active fold's working set
//! resident.
//!
//! # Layout
//!
//! A spill directory holds three files in the framed, CRC-checked
//! store container (`forumcast-store`):
//!
//! * `pos.fcr` / `neg.fcr` — the pair records, one **row group** per
//!   frame. Each payload packs the group's columns contiguously:
//!   users (`u32` LE), targets (`u32` LE), votes (`f64` LE bits),
//!   response times (`f64` LE bits), then the feature block
//!   feature-major (`dim` columns of `n` `f64`s each).
//! * `meta.fcr` — one frame with the experiment shape (dim, topic
//!   count, `|U|`, target count, row totals) and the per-target
//!   observation windows.
//!
//! `meta.fcr` is written *last*, after the row files are synced, so a
//! crash mid-spill leaves a directory that [`SpilledExperiment::open`]
//! refuses (no meta) instead of a silently short experiment.
//!
//! # Guarantees
//!
//! Inherited from the store container and tightened at this layer:
//! a torn tail in a row file is a *detected truncation* (row counts
//! are cross-checked against `meta.fcr`), a CRC mismatch quarantines
//! the damaged file and surfaces a typed error, and a well-formed
//! frame whose payload disagrees with the declared shape is a
//! [`ColumnarError::Malformed`] — never silent garbage rows.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use forumcast_data::{Dataset, UserId};
use forumcast_features::FeatureLayout;
use forumcast_store::{frame_bytes, header_bytes, FrameReader, StoreError};

use crate::config::EvalConfig;
use crate::data::{build_each, ExperimentData, PairRecord};

/// Rows per on-disk row group (one store frame). Large enough to
/// amortize frame overhead and CRC work, small enough that one
/// decoded group (~`512 × dim × 8` bytes) stays far below a fold's
/// working set.
pub const ROW_GROUP: usize = 512;

/// Resident per-record metadata: everything about a pair except its
/// feature vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowMeta {
    /// The user.
    pub user: UserId,
    /// Dense target index.
    pub target: usize,
    /// `v_{u,q}` (0 for negatives).
    pub votes: f64,
    /// `r_{u,q}` in hours (0 for negatives).
    pub response_time: f64,
}

/// A columnar spill failed or a spilled file cannot be trusted.
#[derive(Debug)]
pub enum ColumnarError {
    /// Container-level failure (I/O, magic, CRC quarantine, version).
    Store(StoreError),
    /// A structurally valid frame whose payload contradicts the
    /// declared experiment shape (bad column sizes, out-of-order
    /// targets, row-count mismatch against `meta.fcr`).
    Malformed {
        /// File the damage was found in.
        path: PathBuf,
        /// What disagreed.
        message: String,
    },
}

impl std::fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnarError::Store(e) => e.fmt(f),
            ColumnarError::Malformed { path, message } => {
                write!(f, "columnar file {} malformed: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for ColumnarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ColumnarError::Store(e) => Some(e),
            ColumnarError::Malformed { .. } => None,
        }
    }
}

impl From<StoreError> for ColumnarError {
    fn from(e: StoreError) -> Self {
        ColumnarError::Store(e)
    }
}

/// An experiment whose feature matrix lives on disk: the shape,
/// windows, and per-record metadata are resident; feature vectors
/// stream back one row group at a time through [`RowStream`].
#[derive(Debug)]
pub struct SpilledExperiment {
    /// Feature dimension `18 + 2K`.
    pub dim: usize,
    /// Slot layout for masking experiments.
    pub layout: FeatureLayout,
    /// Population size `|U|`.
    pub num_users: usize,
    /// Number of evaluation-target questions.
    pub num_targets: usize,
    /// Observation window per target.
    pub windows: Vec<f64>,
    /// Metadata for every positive record, in spill (row) order.
    pub pos: Vec<RowMeta>,
    /// Metadata for every negative record, in spill (row) order.
    pub neg: Vec<RowMeta>,
    dir: PathBuf,
}

impl SpilledExperiment {
    /// Builds experiment data directly into `dir`, spilling each
    /// history bucket's row groups as they are produced — the full
    /// feature matrix never materializes in memory. The record
    /// stream is identical to [`ExperimentData::build`] at any
    /// worker-thread count.
    ///
    /// # Errors
    ///
    /// [`ColumnarError`] when the spill directory cannot be written.
    ///
    /// # Panics
    ///
    /// Panics when the dataset has too few threads for the warmup
    /// split (as [`ExperimentData::build`] does).
    pub fn build(
        dataset: &Dataset,
        config: &EvalConfig,
        dir: &Path,
    ) -> Result<Self, ColumnarError> {
        let threads = dataset.threads();
        let warmup = ((threads.len() as f64 * config.warmup_frac) as usize)
            .clamp(1, threads.len().saturating_sub(1));
        std::fs::create_dir_all(dir).map_err(|source| {
            ColumnarError::Store(StoreError::Io {
                path: dir.to_path_buf(),
                source,
            })
        })?;

        let fingerprint = spill_fingerprint(config);
        let started = Instant::now();
        let mut pos_writer = RowWriter::create(&dir.join(POS_FILE), &fingerprint)?;
        let mut neg_writer = RowWriter::create(&dir.join(NEG_FILE), &fingerprint)?;
        let mut io_error: Option<ColumnarError> = None;
        let shape = build_each(
            dataset,
            config,
            warmup,
            &config.extractor,
            &mut |pos, neg| {
                if io_error.is_some() {
                    return;
                }
                let r = pos_writer
                    .push_all(pos)
                    .and_then(|()| neg_writer.push_all(neg));
                if let Err(e) = r {
                    io_error = Some(e);
                }
            },
        );
        if let Some(e) = io_error {
            return Err(e);
        }
        let pos = pos_writer.finish()?;
        let neg = neg_writer.finish()?;

        let spilled = SpilledExperiment {
            dim: shape.layout.dim(),
            layout: shape.layout,
            num_users: shape.num_users,
            num_targets: shape.num_targets,
            windows: shape.windows,
            pos,
            neg,
            dir: dir.to_path_buf(),
        };
        spilled.write_meta(&fingerprint)?;
        let ms = started.elapsed().as_millis() as u64;
        forumcast_obs::observe("data.columnar.write_ms", ms.max(1));
        forumcast_obs::counter_add(
            "data.columnar.rows_written",
            (spilled.pos.len() + spilled.neg.len()) as u64,
        );
        Ok(spilled)
    }

    /// Spills an already-materialized experiment — the shape every
    /// equivalence test uses to prove the streamed path reproduces
    /// the resident one bit for bit.
    ///
    /// # Errors
    ///
    /// [`ColumnarError`] when the spill directory cannot be written.
    pub fn spill(
        data: &ExperimentData,
        config: &EvalConfig,
        dir: &Path,
    ) -> Result<Self, ColumnarError> {
        std::fs::create_dir_all(dir).map_err(|source| {
            ColumnarError::Store(StoreError::Io {
                path: dir.to_path_buf(),
                source,
            })
        })?;
        let fingerprint = spill_fingerprint(config);
        let started = Instant::now();
        let mut pos_writer = RowWriter::create(&dir.join(POS_FILE), &fingerprint)?;
        pos_writer.push_all(data.positives.clone())?;
        let pos = pos_writer.finish()?;
        let mut neg_writer = RowWriter::create(&dir.join(NEG_FILE), &fingerprint)?;
        neg_writer.push_all(data.negatives.clone())?;
        let neg = neg_writer.finish()?;
        let spilled = SpilledExperiment {
            dim: data.dim,
            layout: data.layout,
            num_users: data.num_users,
            num_targets: data.num_targets,
            windows: data.windows.clone(),
            pos,
            neg,
            dir: dir.to_path_buf(),
        };
        spilled.write_meta(&fingerprint)?;
        let ms = started.elapsed().as_millis() as u64;
        forumcast_obs::observe("data.columnar.write_ms", ms.max(1));
        Ok(spilled)
    }

    /// Reopens a spill directory written by an earlier [`build`]
    /// (`Self::build`) or [`spill`](Self::spill): reads `meta.fcr`,
    /// then streams both row files once to restore the resident
    /// metadata columns, cross-checking row counts and shape.
    ///
    /// # Errors
    ///
    /// [`ColumnarError`] on any damage: a missing or corrupt file, a
    /// torn row file (count mismatch vs. `meta.fcr`), or a shape
    /// contradiction.
    pub fn open(dir: &Path) -> Result<Self, ColumnarError> {
        let meta_path = dir.join(META_FILE);
        let mut meta_reader = FrameReader::open(&meta_path)?;
        let malformed = |message: String| ColumnarError::Malformed {
            path: meta_path.clone(),
            message,
        };
        let frame = meta_reader
            .next_frame()?
            .ok_or_else(|| malformed("missing meta frame".into()))?;
        let mut cur = Cursor::new(&frame);
        let dim = cur.varint()? as usize;
        let topics = cur.varint()? as usize;
        let num_users = cur.varint()? as usize;
        let num_targets = cur.varint()? as usize;
        let n_pos = cur.varint()? as usize;
        let n_neg = cur.varint()? as usize;
        let windows = cur.f64s(num_targets)?;
        cur.expect_end()?;
        let layout = FeatureLayout::new(topics);
        if layout.dim() != dim {
            return Err(malformed(format!(
                "dim {dim} disagrees with {topics} topics (expected {})",
                layout.dim()
            )));
        }

        let mut spilled = SpilledExperiment {
            dim,
            layout,
            num_users,
            num_targets,
            windows,
            pos: Vec::with_capacity(n_pos),
            neg: Vec::with_capacity(n_neg),
            dir: dir.to_path_buf(),
        };
        for (file, expected, which) in
            [(POS_FILE, n_pos, Which::Pos), (NEG_FILE, n_neg, Which::Neg)]
        {
            let mut stream = RowStream::open(&spilled.dir.join(file), spilled.dim, expected)?;
            let mut metas = Vec::with_capacity(expected);
            while let Some((meta, _x)) = stream.next_row()? {
                metas.push(meta);
            }
            match which {
                Which::Pos => spilled.pos = metas,
                Which::Neg => spilled.neg = metas,
            }
        }
        Ok(spilled)
    }

    /// Streams the positive records' feature vectors from disk, in
    /// spill order.
    ///
    /// # Errors
    ///
    /// [`ColumnarError`] when the row file cannot be opened.
    pub fn stream_pos(&self) -> Result<RowStream, ColumnarError> {
        RowStream::open(&self.dir.join(POS_FILE), self.dim, self.pos.len())
    }

    /// Streams the negative records' feature vectors from disk, in
    /// spill order.
    ///
    /// # Errors
    ///
    /// [`ColumnarError`] when the row file cannot be opened.
    pub fn stream_neg(&self) -> Result<RowStream, ColumnarError> {
        RowStream::open(&self.dir.join(NEG_FILE), self.dim, self.neg.len())
    }

    /// Reads everything back into a resident [`ExperimentData`] —
    /// the equivalence bridge for tests and hash comparisons.
    ///
    /// # Errors
    ///
    /// [`ColumnarError`] on any read failure.
    pub fn to_resident(&self) -> Result<ExperimentData, ColumnarError> {
        let mut positives = Vec::with_capacity(self.pos.len());
        let mut stream = self.stream_pos()?;
        while let Some((meta, x)) = stream.next_row()? {
            positives.push(PairRecord {
                user: meta.user,
                target: meta.target,
                x,
                votes: meta.votes,
                response_time: meta.response_time,
            });
        }
        let mut negatives = Vec::with_capacity(self.neg.len());
        let mut stream = self.stream_neg()?;
        while let Some((meta, x)) = stream.next_row()? {
            negatives.push(PairRecord {
                user: meta.user,
                target: meta.target,
                x,
                votes: meta.votes,
                response_time: meta.response_time,
            });
        }
        Ok(ExperimentData {
            dim: self.dim,
            layout: self.layout,
            num_users: self.num_users,
            num_targets: self.num_targets,
            positives,
            negatives,
            windows: self.windows.clone(),
        })
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn write_meta(&self, fingerprint: &str) -> Result<(), ColumnarError> {
        let mut payload = Vec::new();
        write_varint(&mut payload, self.dim as u64);
        write_varint(&mut payload, self.layout.num_topics as u64);
        write_varint(&mut payload, self.num_users as u64);
        write_varint(&mut payload, self.num_targets as u64);
        write_varint(&mut payload, self.pos.len() as u64);
        write_varint(&mut payload, self.neg.len() as u64);
        for &w in &self.windows {
            payload.extend_from_slice(&w.to_bits().to_le_bytes());
        }
        let path = self.dir.join(META_FILE);
        let mut bytes = header_bytes(fingerprint);
        bytes.extend_from_slice(&frame_bytes(&payload));
        durable_write(&path, &bytes)
    }
}

enum Which {
    Pos,
    Neg,
}

const POS_FILE: &str = "pos.fcr";
const NEG_FILE: &str = "neg.fcr";
const META_FILE: &str = "meta.fcr";

fn spill_fingerprint(config: &EvalConfig) -> String {
    format!(
        "columnar seed={} topics={} warmup={} buckets={} negs={}",
        config.seed,
        config.extractor.lda.num_topics,
        config.warmup_frac,
        config.buckets,
        config.negatives_per_positive
    )
}

/// Writes `bytes` durably: tmp → `sync_all` → rename → parent fsync.
fn durable_write(path: &Path, bytes: &[u8]) -> Result<(), ColumnarError> {
    let io_err = |source: std::io::Error| {
        ColumnarError::Store(StoreError::Io {
            path: path.to_path_buf(),
            source,
        })
    };
    let tmp = tmp_path(path);
    let mut f = File::create(&tmp).map_err(io_err)?;
    f.write_all(bytes).map_err(io_err)?;
    f.sync_all().map_err(io_err)?;
    std::fs::rename(&tmp, path).map_err(io_err)?;
    if let Some(parent) = path.parent() {
        if let Ok(d) = File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Incremental row-group writer for one row file: buffers records,
/// flushes a columnar frame every [`ROW_GROUP`] rows, and keeps the
/// resident metadata column as it goes.
struct RowWriter {
    path: PathBuf,
    out: BufWriter<File>,
    buf: Vec<PairRecord>,
    meta: Vec<RowMeta>,
    dim: Option<usize>,
}

impl RowWriter {
    fn create(path: &Path, fingerprint: &str) -> Result<RowWriter, ColumnarError> {
        let tmp = tmp_path(path);
        let file = File::create(&tmp).map_err(|source| {
            ColumnarError::Store(StoreError::Io {
                path: tmp.clone(),
                source,
            })
        })?;
        let mut w = RowWriter {
            path: path.to_path_buf(),
            out: BufWriter::new(file),
            buf: Vec::with_capacity(ROW_GROUP),
            meta: Vec::new(),
            dim: None,
        };
        w.write(&header_bytes(fingerprint))?;
        Ok(w)
    }

    fn push_all(&mut self, records: Vec<PairRecord>) -> Result<(), ColumnarError> {
        for r in records {
            self.dim.get_or_insert(r.x.len());
            self.buf.push(r);
            if self.buf.len() == ROW_GROUP {
                self.flush_group()?;
            }
        }
        Ok(())
    }

    fn flush_group(&mut self) -> Result<(), ColumnarError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let dim = self.dim.unwrap_or(0);
        let group: Vec<PairRecord> = std::mem::take(&mut self.buf);
        let payload = encode_group(&group, dim);
        for r in &group {
            self.meta.push(RowMeta {
                user: r.user,
                target: r.target,
                votes: r.votes,
                response_time: r.response_time,
            });
        }
        let frame = frame_bytes(&payload);
        self.write(&frame)
    }

    fn write(&mut self, bytes: &[u8]) -> Result<(), ColumnarError> {
        self.out.write_all(bytes).map_err(|source| {
            ColumnarError::Store(StoreError::Io {
                path: self.path.clone(),
                source,
            })
        })
    }

    /// Flushes the tail group, syncs, and renames into place.
    fn finish(mut self) -> Result<Vec<RowMeta>, ColumnarError> {
        self.flush_group()?;
        let io_err = |path: PathBuf| {
            move |source: std::io::Error| ColumnarError::Store(StoreError::Io { path, source })
        };
        self.out.flush().map_err(io_err(self.path.clone()))?;
        let file = self
            .out
            .into_inner()
            .map_err(|e| io_err(self.path.clone())(e.into_error()))?;
        file.sync_all().map_err(io_err(self.path.clone()))?;
        std::fs::rename(tmp_path(&self.path), &self.path).map_err(io_err(self.path.clone()))?;
        if let Some(parent) = self.path.parent() {
            if let Ok(d) = File::open(parent) {
                let _ = d.sync_all();
            }
        }
        Ok(self.meta)
    }
}

/// Encodes one row group: counts, then each column contiguous, then
/// the feature block feature-major.
fn encode_group(group: &[PairRecord], dim: usize) -> Vec<u8> {
    let n = group.len();
    let mut payload = Vec::with_capacity(16 + n * 24 + n * dim * 8);
    write_varint(&mut payload, n as u64);
    write_varint(&mut payload, dim as u64);
    for r in group {
        payload.extend_from_slice(&r.user.0.to_le_bytes());
    }
    for r in group {
        payload.extend_from_slice(&(r.target as u32).to_le_bytes());
    }
    for r in group {
        payload.extend_from_slice(&r.votes.to_bits().to_le_bytes());
    }
    for r in group {
        payload.extend_from_slice(&r.response_time.to_bits().to_le_bytes());
    }
    for j in 0..dim {
        for r in group {
            payload.extend_from_slice(&r.x[j].to_bits().to_le_bytes());
        }
    }
    payload
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// A bounds-checked payload cursor.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    path: PathBuf,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor {
            bytes,
            pos: 0,
            path: PathBuf::new(),
        }
    }

    fn at(bytes: &'a [u8], path: &Path) -> Cursor<'a> {
        Cursor {
            bytes,
            pos: 0,
            path: path.to_path_buf(),
        }
    }

    fn malformed(&self, message: impl Into<String>) -> ColumnarError {
        ColumnarError::Malformed {
            path: self.path.clone(),
            message: message.into(),
        }
    }

    fn varint(&mut self) -> Result<u64, ColumnarError> {
        let mut v = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.malformed("truncated varint"))?;
            self.pos += 1;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.malformed("varint overflow"))
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], ColumnarError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.malformed(format!("{len}-byte column overruns payload")))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, ColumnarError> {
        let raw = self.take(n.checked_mul(4).ok_or_else(|| self.malformed("count"))?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, ColumnarError> {
        let raw = self.take(n.checked_mul(8).ok_or_else(|| self.malformed("count"))?)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| {
                f64::from_bits(u64::from_le_bytes([
                    c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
                ]))
            })
            .collect())
    }

    fn expect_end(&self) -> Result<(), ColumnarError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.malformed(format!(
                "{} trailing bytes after declared columns",
                self.bytes.len() - self.pos
            )))
        }
    }
}

/// One decoded row group, transposed back to row-major features.
struct DecodedGroup {
    meta: Vec<RowMeta>,
    /// Row-major `n × dim`.
    x: Vec<f64>,
    dim: usize,
    cursor: usize,
}

fn decode_group(payload: &[u8], dim: usize, path: &Path) -> Result<DecodedGroup, ColumnarError> {
    let mut cur = Cursor::at(payload, path);
    let n = cur.varint()? as usize;
    let group_dim = cur.varint()? as usize;
    if group_dim != dim {
        return Err(cur.malformed(format!("group dim {group_dim}, experiment dim {dim}")));
    }
    let users = cur.u32s(n)?;
    let targets = cur.u32s(n)?;
    let votes = cur.f64s(n)?;
    let times = cur.f64s(n)?;
    let mut x = vec![0.0f64; n * dim];
    for j in 0..dim {
        let col = cur.f64s(n)?;
        for (i, v) in col.into_iter().enumerate() {
            x[i * dim + j] = v;
        }
    }
    cur.expect_end()?;
    let meta = (0..n)
        .map(|i| RowMeta {
            user: UserId(users[i]),
            target: targets[i] as usize,
            votes: votes[i],
            response_time: times[i],
        })
        .collect();
    Ok(DecodedGroup {
        meta,
        x,
        dim,
        cursor: 0,
    })
}

/// Streams one row file back a row group at a time; only the current
/// decoded group is resident.
pub struct RowStream {
    path: PathBuf,
    reader: FrameReader,
    dim: usize,
    expected_rows: usize,
    rows: usize,
    group: Option<DecodedGroup>,
    read_ns: u64,
    reported: bool,
}

impl RowStream {
    fn open(path: &Path, dim: usize, expected_rows: usize) -> Result<RowStream, ColumnarError> {
        let reader = FrameReader::open(path)?;
        Ok(RowStream {
            path: path.to_path_buf(),
            reader,
            dim,
            expected_rows,
            rows: 0,
            group: None,
            read_ns: 0,
            reported: false,
        })
    }

    /// Yields the next record's metadata and feature vector, or
    /// `Ok(None)` after the last row.
    ///
    /// # Errors
    ///
    /// [`ColumnarError::Store`] on container damage (a CRC-mismatched
    /// frame is quarantined first) and [`ColumnarError::Malformed`]
    /// on a shape contradiction — including a torn file that ends
    /// before the expected row count.
    pub fn next_row(&mut self) -> Result<Option<(RowMeta, Vec<f64>)>, ColumnarError> {
        loop {
            if let Some(group) = &mut self.group {
                if group.cursor < group.meta.len() {
                    let i = group.cursor;
                    group.cursor += 1;
                    self.rows += 1;
                    let meta = group.meta[i];
                    let x = group.x[i * group.dim..(i + 1) * group.dim].to_vec();
                    return Ok(Some((meta, x)));
                }
                self.group = None;
            }
            let started = Instant::now();
            let frame = self.reader.next_frame()?;
            self.read_ns += started.elapsed().as_nanos() as u64;
            match frame {
                Some(payload) => {
                    let started = Instant::now();
                    let decoded = decode_group(&payload, self.dim, &self.path)?;
                    self.read_ns += started.elapsed().as_nanos() as u64;
                    if decoded.meta.is_empty() {
                        return Err(ColumnarError::Malformed {
                            path: self.path.clone(),
                            message: "empty row group".into(),
                        });
                    }
                    self.group = Some(decoded);
                }
                None => {
                    self.report();
                    // `Ok(None)` from the frame layer is either the
                    // clean end of the file or a torn tail's valid
                    // prefix; the resident row count distinguishes
                    // them, so truncation is never silent.
                    if self.rows != self.expected_rows {
                        forumcast_obs::counter_add("data.columnar.truncated", 1);
                        return Err(ColumnarError::Malformed {
                            path: self.path.clone(),
                            message: format!(
                                "torn row file: {} of {} rows readable",
                                self.rows, self.expected_rows
                            ),
                        });
                    }
                    return Ok(None);
                }
            }
        }
    }

    fn report(&mut self) {
        if !self.reported {
            self.reported = true;
            forumcast_obs::observe("data.columnar.read_ms", (self.read_ns / 1_000_000).max(1));
        }
    }
}

impl Drop for RowStream {
    fn drop(&mut self) {
        self.report();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("forumcast-columnar-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn quick() -> (ExperimentData, EvalConfig) {
        let cfg = EvalConfig::quick();
        let (ds, _) = cfg.synth.generate().preprocess();
        (ExperimentData::build(&ds, &cfg), cfg)
    }

    #[test]
    fn spill_roundtrips_bitwise() {
        let (data, cfg) = quick();
        let dir = temp_dir("roundtrip");
        let spilled = SpilledExperiment::spill(&data, &cfg, &dir).unwrap();
        assert_eq!(spilled.pos.len(), data.positives.len());
        assert_eq!(spilled.neg.len(), data.negatives.len());
        let back = spilled.to_resident().unwrap();
        assert_eq!(back.positives, data.positives);
        assert_eq!(back.negatives, data.negatives);
        assert_eq!(back.windows, data.windows);
        assert_eq!(back.dim, data.dim);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn build_spills_the_same_records_as_the_resident_build() {
        let cfg = EvalConfig::quick();
        let (ds, _) = cfg.synth.generate().preprocess();
        let resident = ExperimentData::build(&ds, &cfg);
        let dir = temp_dir("build");
        let spilled = SpilledExperiment::build(&ds, &cfg, &dir).unwrap();
        let back = spilled.to_resident().unwrap();
        assert_eq!(back.positives, resident.positives);
        assert_eq!(back.negatives, resident.negatives);
        assert_eq!(back.windows, resident.windows);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_restores_shape_and_metadata() {
        let (data, cfg) = quick();
        let dir = temp_dir("open");
        let spilled = SpilledExperiment::spill(&data, &cfg, &dir).unwrap();
        let reopened = SpilledExperiment::open(&dir).unwrap();
        assert_eq!(reopened.dim, spilled.dim);
        assert_eq!(reopened.num_users, spilled.num_users);
        assert_eq!(reopened.num_targets, spilled.num_targets);
        assert_eq!(reopened.windows, spilled.windows);
        assert_eq!(reopened.pos, spilled.pos);
        assert_eq!(reopened.neg, spilled.neg);
        let back = reopened.to_resident().unwrap();
        assert_eq!(back.positives, data.positives);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_without_meta_is_refused() {
        let (data, cfg) = quick();
        let dir = temp_dir("nometa");
        SpilledExperiment::spill(&data, &cfg, &dir).unwrap();
        std::fs::remove_file(dir.join(META_FILE)).unwrap();
        assert!(SpilledExperiment::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_row_file_is_a_detected_truncation_not_silent_loss() {
        let (data, cfg) = quick();
        let dir = temp_dir("torn");
        let spilled = SpilledExperiment::spill(&data, &cfg, &dir).unwrap();
        let path = dir.join(POS_FILE);
        let bytes = std::fs::read(&path).unwrap();
        // Cut into the final frame: the frame layer truncates to the
        // valid prefix, and the row layer reports the shortfall.
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        let mut stream = spilled.stream_pos().unwrap();
        let err = loop {
            match stream.next_row() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("truncation must not end the stream cleanly"),
                Err(e) => break e,
            }
        };
        assert!(
            matches!(&err, ColumnarError::Malformed { message, .. } if message.contains("torn")),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Pristine spill bytes shared by the proptest sweep: generating
    /// and spilling once keeps the 32-case sweep fast.
    type Pristine = (ExperimentData, Vec<u8>, Vec<u8>, Vec<u8>);

    fn pristine() -> &'static Pristine {
        use std::sync::OnceLock;
        static CELL: OnceLock<Pristine> = OnceLock::new();
        CELL.get_or_init(|| {
            let (data, cfg) = quick();
            let dir = temp_dir("pristine");
            SpilledExperiment::spill(&data, &cfg, &dir).unwrap();
            let pos = std::fs::read(dir.join(POS_FILE)).unwrap();
            let neg = std::fs::read(dir.join(NEG_FILE)).unwrap();
            let meta = std::fs::read(dir.join(META_FILE)).unwrap();
            std::fs::remove_dir_all(&dir).unwrap();
            (data, pos, neg, meta)
        })
    }

    proptest::proptest! {
        /// The no-silent-garbage sweep: any single-bit flip or
        /// truncation of a row file either surfaces a typed error
        /// (torn tail detected by the row-count cross-check, CRC
        /// mismatch quarantined) or leaves the decoded experiment
        /// bitwise-identical to the pristine one. No damaged byte
        /// ever reaches a fold as data.
        #[test]
        fn corrupted_row_files_never_yield_silent_garbage(
            frac in 0.0f64..1.0,
            bit in 0u32..8,
            truncate in proptest::prelude::any::<bool>(),
            hit_neg in proptest::prelude::any::<bool>(),
        ) {
            let (clean, pos, neg, meta) = pristine();
            let mut pos = pos.clone();
            let mut neg = neg.clone();
            {
                let bytes = if hit_neg { &mut neg } else { &mut pos };
                let idx = ((bytes.len() - 1) as f64 * frac) as usize;
                if truncate {
                    bytes.truncate(idx.max(1));
                } else {
                    bytes[idx] ^= 1u8 << bit;
                }
            }
            let dir = temp_dir("prop-sweep");
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join(POS_FILE), &pos).unwrap();
            std::fs::write(dir.join(NEG_FILE), &neg).unwrap();
            std::fs::write(dir.join(META_FILE), meta).unwrap();
            // Err is the acceptable typed rejection; Ok must be bitwise clean.
            if let Ok(back) = SpilledExperiment::open(&dir).and_then(|s| s.to_resident()) {
                proptest::prop_assert_eq!(&back.positives, &clean.positives);
                proptest::prop_assert_eq!(&back.negatives, &clean.negatives);
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn crc_flip_mid_file_quarantines_and_errors() {
        let (data, cfg) = quick();
        let dir = temp_dir("crc");
        let spilled = SpilledExperiment::spill(&data, &cfg, &dir).unwrap();
        let path = dir.join(POS_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let mut stream = spilled.stream_pos().unwrap();
        let err = loop {
            match stream.next_row() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("corruption must not end the stream cleanly"),
                Err(e) => break e,
            }
        };
        match err {
            ColumnarError::Store(StoreError::CrcMismatch { .. }) => {
                assert!(!path.exists(), "damaged file must be quarantined");
            }
            // A flip landing in a length varint can also surface as a
            // declared-length/shape contradiction — typed either way.
            ColumnarError::Malformed { .. } | ColumnarError::Store(_) => {}
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
