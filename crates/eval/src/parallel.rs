//! Scoped parallel map over independent work items.
//!
//! This module is now a thin façade over [`forumcast_par`], the
//! workspace-wide deterministic parallel-execution layer; it is kept
//! so existing `forumcast_eval::parallel::*` call sites and docs keep
//! working. New code should depend on `forumcast-par` directly.

pub use forumcast_par::{parallel_map, parallel_try_map, resolve_threads, THREADS_ENV};

/// Number of worker threads to default to: the `FORUMCAST_THREADS`
/// override when set, else the machine's available parallelism capped
/// at `cap`. See [`forumcast_par::default_threads`].
pub fn default_threads(cap: usize) -> usize {
    forumcast_par::default_threads(cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback() {
        assert_eq!(parallel_map(&[5], 4, |&x: &i32| x + 1), vec![6]);
        assert_eq!(parallel_map(&[1, 2], 1, |&x: &i32| x + 1), vec![2, 3]);
        assert_eq!(
            parallel_map::<i32, i32, _>(&[], 4, |&x| x),
            Vec::<i32>::new()
        );
    }

    #[test]
    fn default_threads_is_positive_and_capped() {
        assert!(default_threads(4) >= 1);
        if forumcast_par::env_threads().is_none() {
            assert!(default_threads(4) <= 4);
            assert_eq!(default_threads(0), 1);
        }
    }
}
