//! Scoped parallel map over independent work items.

/// Runs `f` over `items` on up to `max_threads` crossbeam-scoped
/// worker threads, preserving input order in the output. Falls back
/// to sequential execution for a single item or `max_threads <= 1`.
///
/// Used to parallelize cross-validation folds and sweep points, which
/// are embarrassingly parallel.
///
/// # Example
///
/// ```
/// use forumcast_eval::parallel::parallel_map;
/// let squares = parallel_map(&[1, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: &[T], max_threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.len() <= 1 || max_threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let threads = max_threads.min(items.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    let slots = parking_lot::Mutex::new(&mut results);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let out = f(&items[i]);
                slots.lock()[i] = Some(out);
            });
        }
    })
    .expect("worker thread panicked");

    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Number of worker threads to default to: the machine's available
/// parallelism capped at `cap`.
pub fn default_threads(cap: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(cap.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback() {
        assert_eq!(parallel_map(&[5], 4, |&x: &i32| x + 1), vec![6]);
        assert_eq!(parallel_map(&[1, 2], 1, |&x: &i32| x + 1), vec![2, 3]);
        assert_eq!(parallel_map::<i32, i32, _>(&[], 4, |&x| x), Vec::<i32>::new());
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        parallel_map(&items, 4, |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(ids.lock().unwrap().len() > 1);
    }

    #[test]
    fn default_threads_is_positive_and_capped() {
        assert!(default_threads(4) >= 1);
        assert!(default_threads(4) <= 4);
        assert_eq!(default_threads(0), 1);
    }
}
