//! Figure 5: sensitivity of each task to the number of topics `K`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

use crate::config::EvalConfig;
use crate::data::ExperimentData;
use crate::experiments::{run_cv_resumable, sub_checkpoint, CvError, CvOptions};
use crate::fold::mean_std;

/// Metrics at one value of `K`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig5Point {
    /// Number of topics.
    pub k: usize,
    /// Mean AUC on `â`.
    pub auc: f64,
    /// Mean RMSE on `v̂`.
    pub rmse_votes: f64,
    /// Mean RMSE on `r̂`.
    pub rmse_time: f64,
    /// Percent change of each metric relative to the reference `K`
    /// (positive = better: AUC up, RMSE down).
    pub pct_change: (f64, f64, f64),
}

/// The Figure 5 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Report {
    /// Reference topic count (the paper's default, 8).
    pub reference_k: usize,
    /// One point per swept `K`.
    pub points: Vec<Fig5Point>,
}

impl fmt::Display for Fig5Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 5 — topic-count sensitivity (%-change vs K={})",
            self.reference_k
        )?;
        writeln!(
            f,
            "{:>4} {:>8} {:>10} {:>10} | {:>8} {:>8} {:>8}",
            "K", "AUC", "RMSE(v)", "RMSE(r)", "Δa %", "Δv %", "Δr %"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>4} {:>8.3} {:>10.3} {:>10.3} | {:>+8.2} {:>+8.2} {:>+8.2}",
                p.k,
                p.auc,
                p.rmse_votes,
                p.rmse_time,
                p.pct_change.0,
                p.pct_change.1,
                p.pct_change.2
            )?;
        }
        Ok(())
    }
}

/// Runs the sweep over `ks` (the paper varies K around its default
/// of 8; pass e.g. `[4, 8, 12, 15, 20]`). Baselines are skipped —
/// they do not use topics.
///
/// # Panics
///
/// Panics when `ks` does not contain `reference_k`, or when the
/// sweep fails despite per-fold retries.
pub fn run(config: &EvalConfig, ks: &[usize], reference_k: usize) -> Fig5Report {
    run_with(config, ks, reference_k, None, &CvOptions::default())
        .unwrap_or_else(|e| panic!("fig5: {e}"))
}

/// [`run`] with an optional checkpoint base path and resilience
/// options (see [`CvOptions`]; `opts.checkpoint` itself is ignored):
/// each swept `K` checkpoints into `<base>.k<K>.json`.
///
/// # Errors
///
/// Returns [`CvError`] when a fold exhausts its retries or a
/// checkpoint file is unusable.
///
/// # Panics
///
/// Panics when `ks` does not contain `reference_k`.
pub fn run_with(
    config: &EvalConfig,
    ks: &[usize],
    reference_k: usize,
    checkpoint: Option<&Path>,
    opts: &CvOptions,
) -> Result<Fig5Report, CvError> {
    assert!(
        ks.contains(&reference_k),
        "reference K={reference_k} must be part of the sweep"
    );
    let (dataset, _) = config.synth.generate().preprocess();
    let mut raw = Vec::new();
    for &k in ks {
        let mut cfg = config.clone();
        cfg.extractor = cfg.extractor.with_topics(k);
        let data = ExperimentData::build(&dataset, &cfg);
        let opts = opts.for_sub(sub_checkpoint(checkpoint, &format!("k{k}")));
        let outcomes = run_cv_resumable(&data, &cfg, None, false, &opts)?;
        let auc = mean_std(&outcomes.iter().map(|o| o.auc).collect::<Vec<_>>()).0;
        let rv = mean_std(&outcomes.iter().map(|o| o.rmse_votes).collect::<Vec<_>>()).0;
        let rt = mean_std(&outcomes.iter().map(|o| o.rmse_time).collect::<Vec<_>>()).0;
        raw.push((k, auc, rv, rt));
    }
    let &(_, ref_auc, ref_rv, ref_rt) = raw
        .iter()
        .find(|&&(k, ..)| k == reference_k)
        .expect("reference in sweep");
    let points = raw
        .iter()
        .map(|&(k, auc, rv, rt)| Fig5Point {
            k,
            auc,
            rmse_votes: rv,
            rmse_time: rt,
            pct_change: (
                (auc - ref_auc) / ref_auc * 100.0,
                (ref_rv - rv) / ref_rv * 100.0,
                (ref_rt - rt) / ref_rt * 100.0,
            ),
        })
        .collect();
    Ok(Fig5Report {
        reference_k,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_display_includes_all_ks() {
        let report = Fig5Report {
            reference_k: 8,
            points: vec![
                Fig5Point {
                    k: 4,
                    auc: 0.8,
                    rmse_votes: 1.2,
                    rmse_time: 11.0,
                    pct_change: (-1.0, -2.0, 0.1),
                },
                Fig5Point {
                    k: 8,
                    auc: 0.81,
                    rmse_votes: 1.18,
                    rmse_time: 11.0,
                    pct_change: (0.0, 0.0, 0.0),
                },
            ],
        };
        let text = report.to_string();
        assert!(text.contains("K=8"));
        assert!(text.lines().count() >= 4);
    }

    #[test]
    #[should_panic(expected = "must be part of the sweep")]
    fn missing_reference_panics() {
        run(&EvalConfig::quick(), &[4], 8);
    }

    #[test]
    #[ignore = "minutes-long: trains models for several K values"]
    fn sweep_runs_on_quick_config() {
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        let report = run(&cfg, &[2, 4], 4);
        assert_eq!(report.points.len(), 2);
        assert_eq!(report.points[1].pct_change.0, 0.0);
    }
}
