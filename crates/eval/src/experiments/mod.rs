//! Runners for every table and figure in the paper's evaluation.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`table1`] | Table I — baselines vs. our models on all three tasks |
//! | [`fig3`] | Figure 3 — net votes vs. response time (no correlation) |
//! | [`fig4`] | Figure 4 — CDFs of selected features |
//! | [`fig5`] | Figure 5 — sensitivity to the number of topics `K` |
//! | [`fig6`] | Figure 6 — leave-one-feature-out importance |
//! | [`fig7`] | Figure 7 — feature groups × history length |
//!
//! (Figure 2's graph statistics are reproduced directly from
//! `forumcast_graph::GraphStats` by the `fig2` bench binary.)

pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod table1;

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::path::PathBuf;
use std::sync::Mutex;

use forumcast_resilience::fault::{self, FaultSite};
use forumcast_resilience::{with_retry, Checkpoint, CheckpointError};

use crate::config::EvalConfig;
use crate::data::ExperimentData;
use crate::fold::{run_fold, FoldOutcome, MaskSpec};
use crate::parallel::parallel_try_map;
use crate::split::stratified_folds;

/// Resilience options for a CV sweep.
#[derive(Debug, Clone)]
pub struct CvOptions {
    /// Checkpoint file: completed fold outcomes are saved here after
    /// every fold, and recorded folds are skipped on a rerun.
    pub checkpoint: Option<PathBuf>,
    /// Attempts per fold before the sweep fails (≥ 1). Fold work is a
    /// pure function of its inputs, so a retried fold reproduces the
    /// fault-free result bit for bit.
    pub fold_attempts: usize,
}

impl Default for CvOptions {
    fn default() -> Self {
        CvOptions {
            checkpoint: None,
            fold_attempts: 3,
        }
    }
}

impl CvOptions {
    /// Options writing to (and resuming from) `checkpoint`.
    pub fn with_checkpoint(path: impl Into<PathBuf>) -> Self {
        CvOptions {
            checkpoint: Some(path.into()),
            ..CvOptions::default()
        }
    }

    /// Options with an optional checkpoint path — the shape the
    /// experiment drivers thread through from a `--resume` flag.
    pub fn maybe_checkpoint(path: Option<PathBuf>) -> Self {
        CvOptions {
            checkpoint: path,
            ..CvOptions::default()
        }
    }
}

/// Derives the checkpoint file for one sub-run of a multi-CV sweep:
/// `<base>` with `.<tag>.json` appended. The figure drivers run many
/// independent CVs (per `K`, per excluded feature, per history
/// window); giving each its own file under one `--resume` base path
/// lets a restarted sweep skip every completed fold of every sub-run.
pub fn sub_checkpoint(base: Option<&std::path::Path>, tag: &str) -> Option<PathBuf> {
    base.map(|b| {
        let mut name = b.as_os_str().to_os_string();
        name.push(format!(".{tag}.json"));
        PathBuf::from(name)
    })
}

/// A CV sweep failed despite retries.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum CvError {
    /// The checkpoint file could not be used.
    Checkpoint(CheckpointError),
    /// One fold job kept panicking until its attempts ran out.
    FoldFailed {
        /// Job index (repeat × folds + fold).
        job: usize,
        /// Attempts that ran.
        attempts: usize,
        /// Last panic message.
        message: String,
    },
}

impl fmt::Display for CvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CvError::Checkpoint(e) => write!(f, "{e}"),
            CvError::FoldFailed {
                job,
                attempts,
                message,
            } => write!(
                f,
                "cv fold job {job} failed after {attempts} attempt(s): {message}"
            ),
        }
    }
}

impl std::error::Error for CvError {}

impl From<CheckpointError> for CvError {
    fn from(e: CheckpointError) -> Self {
        CvError::Checkpoint(e)
    }
}

/// Fingerprint stored in CV checkpoints: enough of the protocol to
/// refuse resuming a differently-configured run.
fn cv_fingerprint(
    config: &EvalConfig,
    mask: Option<MaskSpec>,
    run_baselines: bool,
    jobs: usize,
) -> String {
    format!(
        "cv folds={} repeats={} seed={} negs={} mask={:?} baselines={} jobs={}",
        config.folds,
        config.repeats,
        config.seed,
        config.negatives_per_positive,
        mask,
        run_baselines,
        jobs
    )
}

/// Runs the paper's CV protocol (`repeats` × `folds` iterations,
/// stratified by user) over prepared experiment data, in parallel.
///
/// Equivalent to [`run_cv_resumable`] with default [`CvOptions`]
/// (bounded per-fold retry, no checkpoint); kept as the infallible
/// entry point for callers without a resume path.
///
/// # Panics
///
/// Panics when a fold job exhausts its retry attempts.
pub fn run_cv(
    data: &ExperimentData,
    config: &EvalConfig,
    mask: Option<MaskSpec>,
    run_baselines: bool,
) -> Vec<FoldOutcome> {
    run_cv_resumable(data, config, mask, run_baselines, &CvOptions::default())
        .unwrap_or_else(|e| panic!("cross-validation failed: {e}"))
}

/// [`run_cv`] with fault isolation and checkpoint/resume.
///
/// Each fold job runs under `catch_unwind` with bounded retry, and is
/// instrumented with the `fold-panic` fault site (unit = job index).
/// With a checkpoint configured, every completed fold is appended to
/// the file atomically; on a rerun, recorded folds are skipped and
/// merged back in job order, so an interrupted sweep resumes to
/// output bitwise-identical to an uninterrupted one at any thread
/// count.
///
/// # Errors
///
/// Returns [`CvError::FoldFailed`] when a fold exhausts its attempts,
/// and [`CvError::Checkpoint`] when the checkpoint file is unusable
/// (unreadable, corrupt, or from a different configuration).
pub fn run_cv_resumable(
    data: &ExperimentData,
    config: &EvalConfig,
    mask: Option<MaskSpec>,
    run_baselines: bool,
    options: &CvOptions,
) -> Result<Vec<FoldOutcome>, CvError> {
    let _span = forumcast_obs::span("eval.run_cv");
    let mut jobs = Vec::new();
    for rep in 0..config.repeats {
        let mut rng = StdRng::seed_from_u64(config.seed ^ (0xC5 + rep as u64));
        let pos_groups: Vec<u32> = data.positives.iter().map(|p| p.user.0).collect();
        let pos_folds = stratified_folds(&pos_groups, config.folds, &mut rng);
        let neg_groups: Vec<u32> = data.negatives.iter().map(|p| p.user.0).collect();
        let neg_folds = stratified_folds(&neg_groups, config.folds, &mut rng);
        for fold in 0..config.folds {
            jobs.push((pos_folds.clone(), neg_folds.clone(), fold));
        }
    }

    let meta = cv_fingerprint(config, mask, run_baselines, jobs.len());
    let mut outcomes: Vec<Option<FoldOutcome>> = vec![None; jobs.len()];
    let checkpoint = match &options.checkpoint {
        Some(path) => {
            let cp = Checkpoint::<FoldOutcome>::load(path, &meta)?
                .unwrap_or_else(|| Checkpoint::new(meta.clone()));
            for (unit, outcome) in &cp.entries {
                if let Some(slot) = outcomes.get_mut(*unit as usize) {
                    *slot = Some(*outcome);
                    forumcast_obs::mark("eval.checkpoint.hit", *unit);
                    forumcast_obs::counter_add("eval.checkpoint.folds_skipped", 1);
                }
            }
            Some((Mutex::new(cp), path.clone()))
        }
        None => None,
    };

    let pending: Vec<usize> = (0..jobs.len()).filter(|&i| outcomes[i].is_none()).collect();
    let fresh = parallel_try_map(&pending, config.worker_threads(), |&job| {
        // Detached span: its path roots at `eval.fold#job` whether the
        // job ran on a worker thread or inline, keeping canonical
        // event logs identical across thread counts.
        let _fold_span = forumcast_obs::task_span("eval.fold", job as u64);
        let (pf, nf, fold) = &jobs[job];
        let outcome = with_retry(&format!("cv fold job {job}"), options.fold_attempts, || {
            fault::panic_point(FaultSite::FoldPanic, job as u64);
            run_fold(data, config, pf, nf, *fold, mask, run_baselines)
        })
        .map_err(|e| CvError::FoldFailed {
            job,
            attempts: e.attempts,
            message: e.message,
        })?;
        if let Some((cp, path)) = &checkpoint {
            let mut cp = cp.lock().expect("checkpoint lock");
            cp.record(job as u64, outcome);
            cp.save(path)?;
        }
        Ok::<FoldOutcome, CvError>(outcome)
    })?;
    for (&job, outcome) in pending.iter().zip(fresh) {
        outcomes[job] = Some(outcome);
    }
    Ok(outcomes
        .into_iter()
        .map(|o| o.expect("every job completed or restored"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Armed fault plans are process-global: a concurrently running
    /// CV could consume another test's shots. Serialize CV tests.
    static CV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn run_cv_yields_repeats_times_folds_outcomes() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 2;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let outcomes = run_cv(&data, &cfg, None, false);
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.auc > 0.0));
    }

    #[test]
    fn run_cv_identical_across_thread_counts() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        cfg.threads = 1;
        let data = ExperimentData::build(&ds, &cfg);
        let serial = run_cv(&data, &cfg, None, false);
        for threads in [2, 7] {
            cfg.threads = threads;
            let par = run_cv(&data, &cfg, None, false);
            assert_eq!(serial, par, "fold outcomes changed with {threads} threads");
        }
    }

    fn temp_checkpoint(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("forumcast-cv-{name}-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn checkpointed_run_is_identical_and_skips_on_rerun() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let plain = run_cv(&data, &cfg, None, false);
        let path = temp_checkpoint("skip");
        let opts = CvOptions::with_checkpoint(&path);
        let first = run_cv_resumable(&data, &cfg, None, false, &opts).unwrap();
        assert_eq!(plain, first);
        // Rerun: every fold restored from the file. Corrupting the
        // recorded outcomes proves nothing was recomputed.
        let meta = cv_fingerprint(&cfg, None, false, 2);
        let mut cp = Checkpoint::<FoldOutcome>::load(&path, &meta)
            .unwrap()
            .unwrap();
        for (_, o) in cp.entries.iter_mut() {
            o.auc = 0.123;
        }
        cp.save(&path).unwrap();
        let resumed = run_cv_resumable(&data, &cfg, None, false, &opts).unwrap();
        assert!(resumed.iter().all(|o| o.auc == 0.123));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_from_other_configuration_is_refused() {
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let path = temp_checkpoint("meta");
        Checkpoint::<FoldOutcome>::new("other run")
            .save(&path)
            .unwrap();
        let err = run_cv_resumable(&data, &cfg, None, false, &CvOptions::with_checkpoint(&path))
            .unwrap_err();
        assert!(
            matches!(
                err,
                CvError::Checkpoint(CheckpointError::MetaMismatch { .. })
            ),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exhausted_fold_retries_surface_the_job_index() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let _guard = forumcast_resilience::FaultPlan::parse("fold-panic:1x3")
            .unwrap()
            .arm();
        let err = run_cv_resumable(&data, &cfg, None, false, &CvOptions::default()).unwrap_err();
        match err {
            CvError::FoldFailed { job, attempts, .. } => {
                assert_eq!(job, 1);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected FoldFailed, got {other}"),
        }
    }
}
