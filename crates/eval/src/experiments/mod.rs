//! Runners for every table and figure in the paper's evaluation.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`table1`] | Table I — baselines vs. our models on all three tasks |
//! | [`fig3`] | Figure 3 — net votes vs. response time (no correlation) |
//! | [`fig4`] | Figure 4 — CDFs of selected features |
//! | [`fig5`] | Figure 5 — sensitivity to the number of topics `K` |
//! | [`fig6`] | Figure 6 — leave-one-feature-out importance |
//! | [`fig7`] | Figure 7 — feature groups × history length |
//!
//! (Figure 2's graph statistics are reproduced directly from
//! `forumcast_graph::GraphStats` by the `fig2` bench binary.)

pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod table1;

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::path::PathBuf;
use std::sync::Mutex;

use forumcast_resilience::fault::{self, FaultSite};
use forumcast_resilience::{reclaim_tmp, with_retry, Checkpoint, CheckpointError, CkptFormat};

use crate::config::EvalConfig;
use crate::data::ExperimentData;
use crate::fold::{run_fold, FoldOutcome, MaskSpec};
use crate::parallel::parallel_try_map;
use crate::split::stratified_folds;
use crate::subfold::SubfoldHandle;

/// Resilience options for a CV sweep.
#[derive(Debug, Clone)]
pub struct CvOptions {
    /// Checkpoint file: completed fold outcomes are saved here after
    /// every fold, and recorded folds are skipped on a rerun.
    pub checkpoint: Option<PathBuf>,
    /// Attempts per fold before the sweep fails (≥ 1). Fold work is a
    /// pure function of its inputs, so a retried fold reproduces the
    /// fault-free result bit for bit.
    pub fold_attempts: usize,
    /// Epoch cadence for sub-fold training snapshots
    /// (`<checkpoint>.fold<job>.train.ckpt`): every this many epochs
    /// the in-flight fold persists its full trainer state — model
    /// parameters, optimizer moments, shuffle-RNG state — so a
    /// crashed fold resumes mid-training instead of from its start.
    /// `0` disables sub-fold snapshots; they are only active when
    /// `checkpoint` is also set.
    pub snapshot_every: usize,
    /// On-disk checkpoint format: the framed, CRC-checked binary
    /// store (default) or the legacy JSON files. Loading always
    /// sniffs the file content, so a run can switch formats and still
    /// resume from checkpoints written under the other one.
    pub format: CkptFormat,
}

impl Default for CvOptions {
    fn default() -> Self {
        CvOptions {
            checkpoint: None,
            fold_attempts: 3,
            snapshot_every: 25,
            format: CkptFormat::default(),
        }
    }
}

impl CvOptions {
    /// Options writing to (and resuming from) `checkpoint`.
    pub fn with_checkpoint(path: impl Into<PathBuf>) -> Self {
        CvOptions {
            checkpoint: Some(path.into()),
            ..CvOptions::default()
        }
    }

    /// Options with an optional checkpoint path — the shape the
    /// experiment drivers thread through from a `--resume` flag.
    pub fn maybe_checkpoint(path: Option<PathBuf>) -> Self {
        CvOptions {
            checkpoint: path,
            ..CvOptions::default()
        }
    }

    /// Returns the options with the sub-fold snapshot cadence set
    /// (`0` disables mid-training snapshots) — the shape the drivers
    /// thread through from a `--snapshot-every` flag.
    pub fn with_snapshot_every(mut self, snapshot_every: usize) -> Self {
        self.snapshot_every = snapshot_every;
        self
    }

    /// Returns the options with the on-disk checkpoint format set —
    /// the shape the drivers thread through from a `--ckpt-format`
    /// flag.
    pub fn with_format(mut self, format: CkptFormat) -> Self {
        self.format = format;
        self
    }

    /// The same options re-targeted at a sub-run's checkpoint file —
    /// how the multi-CV figure drivers carry one option set across
    /// their per-`K` / per-feature / per-window sweeps.
    pub fn for_sub(&self, checkpoint: Option<PathBuf>) -> Self {
        CvOptions {
            checkpoint,
            ..self.clone()
        }
    }
}

/// Derives the checkpoint file for one sub-run of a multi-CV sweep:
/// `<base>` with `.<tag>.json` appended. The figure drivers run many
/// independent CVs (per `K`, per excluded feature, per history
/// window); giving each its own file under one `--resume` base path
/// lets a restarted sweep skip every completed fold of every sub-run.
pub fn sub_checkpoint(base: Option<&std::path::Path>, tag: &str) -> Option<PathBuf> {
    base.map(|b| {
        let mut name = b.as_os_str().to_os_string();
        name.push(format!(".{tag}.json"));
        PathBuf::from(name)
    })
}

/// A CV sweep failed despite retries.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum CvError {
    /// The checkpoint file could not be used.
    Checkpoint(CheckpointError),
    /// One fold job kept panicking until its attempts ran out.
    FoldFailed {
        /// Job index (repeat × folds + fold).
        job: usize,
        /// Attempts that ran.
        attempts: usize,
        /// Last panic message.
        message: String,
    },
    /// The spilled (columnar on-disk) experiment data could not be
    /// read back — torn, corrupt, or unreadable row files.
    Data {
        /// What failed.
        message: String,
    },
}

impl fmt::Display for CvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CvError::Checkpoint(e) => write!(f, "{e}"),
            CvError::FoldFailed {
                job,
                attempts,
                message,
            } => write!(
                f,
                "cv fold job {job} failed after {attempts} attempt(s): {message}"
            ),
            CvError::Data { message } => write!(f, "cv experiment data unusable: {message}"),
        }
    }
}

impl std::error::Error for CvError {}

impl From<CheckpointError> for CvError {
    fn from(e: CheckpointError) -> Self {
        CvError::Checkpoint(e)
    }
}

/// Fingerprint stored in CV checkpoints: enough of the protocol to
/// refuse resuming a differently-configured run.
fn cv_fingerprint(
    config: &EvalConfig,
    mask: Option<MaskSpec>,
    run_baselines: bool,
    jobs: usize,
) -> String {
    format!(
        "cv folds={} repeats={} seed={} negs={} mask={:?} baselines={} jobs={} sampler={} k={}",
        config.folds,
        config.repeats,
        config.seed,
        config.negatives_per_positive,
        mask,
        run_baselines,
        jobs,
        config.extractor.lda.sampler,
        config.extractor.lda.num_topics
    )
}

/// Runs the paper's CV protocol (`repeats` × `folds` iterations,
/// stratified by user) over prepared experiment data, in parallel.
///
/// Equivalent to [`run_cv_resumable`] with default [`CvOptions`]
/// (bounded per-fold retry, no checkpoint); kept as the infallible
/// entry point for callers without a resume path.
///
/// # Panics
///
/// Panics when a fold job exhausts its retry attempts.
pub fn run_cv(
    data: &ExperimentData,
    config: &EvalConfig,
    mask: Option<MaskSpec>,
    run_baselines: bool,
) -> Vec<FoldOutcome> {
    run_cv_resumable(data, config, mask, run_baselines, &CvOptions::default())
        .unwrap_or_else(|e| panic!("cross-validation failed: {e}"))
}

/// [`run_cv`] with fault isolation and checkpoint/resume.
///
/// Each fold job runs under `catch_unwind` with bounded retry, and is
/// instrumented with the `fold-panic` fault site (unit = job index).
/// With a checkpoint configured, every completed fold is appended to
/// the file atomically; on a rerun, recorded folds are skipped and
/// merged back in job order, so an interrupted sweep resumes to
/// output bitwise-identical to an uninterrupted one at any thread
/// count.
///
/// With `snapshot_every > 0` on top of a checkpoint, resume is
/// *epoch*-granular: each in-flight fold persists its full trainer
/// state to `<checkpoint>.fold<job>.train.ckpt` at that cadence, a
/// re-run fold fast-forwards from the latest snapshot along a
/// bitwise-identical trajectory, and the snapshot file is discarded
/// when the fold completes. A corrupt or truncated snapshot is never
/// trusted — the fold recomputes from its start — while a snapshot
/// from a differently-configured run fails fast with the stale-
/// checkpoint remedy.
///
/// # Errors
///
/// Returns [`CvError::FoldFailed`] when a fold exhausts its attempts,
/// and [`CvError::Checkpoint`] when the checkpoint file (or a stale
/// sub-fold snapshot under it) is unusable — unreadable, corrupt, or
/// from a different configuration.
pub fn run_cv_resumable(
    data: &ExperimentData,
    config: &EvalConfig,
    mask: Option<MaskSpec>,
    run_baselines: bool,
    options: &CvOptions,
) -> Result<Vec<FoldOutcome>, CvError> {
    let _span = forumcast_obs::span("eval.run_cv");
    let mut jobs = Vec::new();
    for rep in 0..config.repeats {
        let mut rng = StdRng::seed_from_u64(config.seed ^ (0xC5 + rep as u64));
        let pos_groups: Vec<u32> = data.positives.iter().map(|p| p.user.0).collect();
        let pos_folds = stratified_folds(&pos_groups, config.folds, &mut rng);
        let neg_groups: Vec<u32> = data.negatives.iter().map(|p| p.user.0).collect();
        let neg_folds = stratified_folds(&neg_groups, config.folds, &mut rng);
        for fold in 0..config.folds {
            jobs.push((pos_folds.clone(), neg_folds.clone(), fold));
        }
    }

    let meta = cv_fingerprint(config, mask, run_baselines, jobs.len());
    let mut outcomes: Vec<Option<FoldOutcome>> = vec![None; jobs.len()];
    let checkpoint = match &options.checkpoint {
        Some(path) => {
            // A crash mid-save leaves `<path>.tmp` behind; the real
            // file (if any) is still the last complete save, so the
            // leftover is reclaimed (counted `ckpt.tmp.reclaimed`).
            reclaim_tmp(path);
            let cp = match Checkpoint::<FoldOutcome>::load(path, &meta) {
                Ok(found) => found.unwrap_or_else(|| Checkpoint::new(meta.clone())),
                // An unusable checkpoint was already quarantined to
                // `<path>.corrupt` by the loader: fall back to a
                // counted full recompute instead of aborting the run.
                Err(e @ CheckpointError::Corrupt { .. }) => {
                    forumcast_obs::counter_add("eval.checkpoint.corrupt_recovered", 1);
                    eprintln!("warning: checkpoint unusable, recomputing its folds: {e}");
                    Checkpoint::new(meta.clone())
                }
                Err(e) => return Err(e.into()),
            };
            for (unit, outcome) in &cp.entries {
                if let Some(slot) = outcomes.get_mut(*unit as usize) {
                    *slot = Some(*outcome);
                    forumcast_obs::mark("eval.checkpoint.hit", *unit);
                    forumcast_obs::counter_add("eval.checkpoint.folds_skipped", 1);
                }
            }
            Some((Mutex::new(cp), path.clone()))
        }
        None => None,
    };

    let pending: Vec<usize> = (0..jobs.len()).filter(|&i| outcomes[i].is_none()).collect();

    // Sub-fold (mid-training) snapshots: one handle per pending job,
    // nested under the fold-level checkpoint path. The kill-probe
    // unit space starts past the fold-job indices so fault plans can
    // target fold-start and mid-training crashes independently.
    let subfold_for = |job: usize| -> Option<SubfoldHandle> {
        options
            .checkpoint
            .as_deref()
            .filter(|_| options.snapshot_every > 0)
            .map(|base| {
                SubfoldHandle::new(
                    base,
                    job,
                    &meta,
                    options.snapshot_every,
                    (jobs.len() + job) as u64,
                    options.format,
                )
            })
    };
    // Fail fast on stale snapshots (from a differently-configured
    // run) before any fold work starts.
    for &job in &pending {
        if let Some(handle) = subfold_for(job) {
            handle.check()?;
        }
    }

    let fresh = parallel_try_map(&pending, config.worker_threads(), |&job| {
        // Detached span: its path roots at `eval.fold#job` whether the
        // job ran on a worker thread or inline, keeping canonical
        // event logs identical across thread counts.
        let _fold_span = forumcast_obs::task_span("eval.fold", job as u64);
        let (pf, nf, fold) = &jobs[job];
        let subfold = subfold_for(job);
        let outcome = with_retry(&format!("cv fold job {job}"), options.fold_attempts, || {
            fault::panic_point(FaultSite::FoldPanic, job as u64);
            run_fold(
                data,
                config,
                pf,
                nf,
                *fold,
                mask,
                run_baselines,
                subfold.as_ref(),
            )
        })
        .map_err(|e| CvError::FoldFailed {
            job,
            attempts: e.attempts,
            message: e.message,
        })?;
        if let Some((cp, path)) = &checkpoint {
            let mut cp = cp.lock().expect("checkpoint lock");
            cp.record(job as u64, outcome);
            cp.save_with(path, options.format)?;
        }
        // The fold's result is durable in the fold-level checkpoint;
        // its mid-training snapshot is no longer needed.
        if let Some(handle) = &subfold {
            handle.discard();
        }
        Ok::<FoldOutcome, CvError>(outcome)
    })?;
    for (&job, outcome) in pending.iter().zip(fresh) {
        outcomes[job] = Some(outcome);
    }
    Ok(outcomes
        .into_iter()
        .map(|o| o.expect("every job completed or restored"))
        .collect())
}

/// [`run_cv`] over a spilled (columnar on-disk) experiment: the same
/// `repeats × folds` protocol with identical per-repeat fold
/// assignment (the RNG seeding and consumption match [`run_cv`]
/// exactly), but folds run **sequentially** and each streams its
/// feature vectors from disk through
/// [`run_fold_streamed`](crate::fold::run_fold_streamed) — so peak
/// memory is one fold's working set instead of the full feature
/// matrix plus one training set per worker thread. Outcomes are
/// bitwise-identical to [`run_cv`] on the equivalent resident data.
///
/// Checkpoint/resume and sub-fold snapshots are not supported on
/// this path; at the scales it targets, a fold recompute is cheaper
/// than holding trainer snapshots alongside the spill.
///
/// # Errors
///
/// [`CvError::Data`] when a spilled row file is unreadable, torn, or
/// corrupt (a CRC-mismatched file is quarantined first).
pub fn run_cv_streamed(
    spilled: &crate::columnar::SpilledExperiment,
    config: &EvalConfig,
    mask: Option<MaskSpec>,
    run_baselines: bool,
) -> Result<Vec<FoldOutcome>, CvError> {
    let _span = forumcast_obs::span("eval.run_cv");
    let mut outcomes = Vec::with_capacity(config.repeats * config.folds);
    let mut job = 0u64;
    for rep in 0..config.repeats {
        let mut rng = StdRng::seed_from_u64(config.seed ^ (0xC5 + rep as u64));
        let pos_groups: Vec<u32> = spilled.pos.iter().map(|m| m.user.0).collect();
        let pos_folds = stratified_folds(&pos_groups, config.folds, &mut rng);
        let neg_groups: Vec<u32> = spilled.neg.iter().map(|m| m.user.0).collect();
        let neg_folds = stratified_folds(&neg_groups, config.folds, &mut rng);
        for fold in 0..config.folds {
            let _fold_span = forumcast_obs::task_span("eval.fold", job);
            job += 1;
            let outcome = crate::fold::run_fold_streamed(
                spilled,
                config,
                &pos_folds,
                &neg_folds,
                fold,
                mask,
                run_baselines,
            )
            .map_err(|e| CvError::Data {
                message: e.to_string(),
            })?;
            outcomes.push(outcome);
        }
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Armed fault plans are process-global: a concurrently running
    /// CV could consume another test's shots. Serialize CV tests.
    static CV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn run_cv_yields_repeats_times_folds_outcomes() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 2;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let outcomes = run_cv(&data, &cfg, None, false);
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.auc > 0.0));
    }

    #[test]
    fn run_cv_identical_across_thread_counts() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        cfg.threads = 1;
        let data = ExperimentData::build(&ds, &cfg);
        let serial = run_cv(&data, &cfg, None, false);
        for threads in [2, 7] {
            cfg.threads = threads;
            let par = run_cv(&data, &cfg, None, false);
            assert_eq!(serial, par, "fold outcomes changed with {threads} threads");
        }
    }

    /// The data-plane headline: a CV sweep over the spilled columnar
    /// experiment — sequential folds, features streamed from disk —
    /// reproduces the resident, parallel sweep bit for bit, across
    /// repeats (each repeat re-derives its fold assignment from the
    /// same seeds).
    #[test]
    fn streamed_cv_is_bitwise_identical_to_resident_cv() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 2;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let resident = run_cv(&data, &cfg, None, false);

        let dir =
            std::env::temp_dir().join(format!("forumcast-cv-streamed-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spilled = crate::columnar::SpilledExperiment::spill(&data, &cfg, &dir).unwrap();
        let streamed = run_cv_streamed(&spilled, &cfg, None, false).unwrap();
        let resident_bits: Vec<u64> = resident.iter().flat_map(outcome_bits).collect();
        let streamed_bits: Vec<u64> = streamed.iter().flat_map(outcome_bits).collect();
        assert_eq!(resident_bits, streamed_bits);

        // Damage a row file: the sweep surfaces a typed data error
        // instead of computing on a short experiment.
        let pos = dir.join("pos.fcr");
        let bytes = std::fs::read(&pos).unwrap();
        std::fs::write(&pos, &bytes[..bytes.len() - 7]).unwrap();
        let err = run_cv_streamed(&spilled, &cfg, None, false).unwrap_err();
        assert!(matches!(err, CvError::Data { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn temp_checkpoint(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("forumcast-cv-{name}-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn checkpointed_run_is_identical_and_skips_on_rerun() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let plain = run_cv(&data, &cfg, None, false);
        let path = temp_checkpoint("skip");
        let opts = CvOptions::with_checkpoint(&path);
        let first = run_cv_resumable(&data, &cfg, None, false, &opts).unwrap();
        assert_eq!(plain, first);
        // Rerun: every fold restored from the file. Corrupting the
        // recorded outcomes proves nothing was recomputed.
        let meta = cv_fingerprint(&cfg, None, false, 2);
        let mut cp = Checkpoint::<FoldOutcome>::load(&path, &meta)
            .unwrap()
            .unwrap();
        for (_, o) in cp.entries.iter_mut() {
            o.auc = 0.123;
        }
        cp.save(&path).unwrap();
        let resumed = run_cv_resumable(&data, &cfg, None, false, &opts).unwrap();
        assert!(resumed.iter().all(|o| o.auc == 0.123));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checkpoint_from_other_configuration_is_refused() {
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let path = temp_checkpoint("meta");
        Checkpoint::<FoldOutcome>::new("other run")
            .save(&path)
            .unwrap();
        let err = run_cv_resumable(&data, &cfg, None, false, &CvOptions::with_checkpoint(&path))
            .unwrap_err();
        assert!(
            matches!(
                err,
                CvError::Checkpoint(CheckpointError::MetaMismatch { .. })
            ),
            "{err}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// The headline determinism contract: a run killed mid-training
    /// (after a sub-fold snapshot hit disk) and then resumed produces
    /// outcomes bitwise-identical to an uninterrupted run — at one
    /// and two worker threads.
    #[test]
    fn mid_training_kill_then_resume_is_bitwise_identical() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        for threads in [1, 2] {
            cfg.threads = threads;
            let data = ExperimentData::build(&ds, &cfg);
            let clean = run_cv(&data, &cfg, None, false);

            let path = temp_checkpoint(&format!("midkill-t{threads}"));
            let mut opts = CvOptions::with_checkpoint(&path);
            opts.snapshot_every = 5;
            // fold_attempts = 1: the in-process retry is disabled, so
            // the injected mid-training panic (fired right after fold
            // job 1's first snapshot save, at the kill-probe unit
            // jobs + job = 2 + 1) kills the whole run — the injected
            // analogue of a SIGKILL — leaving the snapshot on disk.
            opts.fold_attempts = 1;
            {
                let _guard = forumcast_resilience::FaultPlan::parse("fold-panic:3")
                    .unwrap()
                    .arm();
                let err = run_cv_resumable(&data, &cfg, None, false, &opts).unwrap_err();
                assert!(matches!(err, CvError::FoldFailed { job: 1, .. }), "{err}");
            }
            let snapshot = std::path::PathBuf::from(format!("{}.fold1.train.ckpt", path.display()));
            assert!(
                snapshot.exists(),
                "mid-training snapshot must survive the crash"
            );

            // Resume: the crashed fold fast-forwards from its
            // snapshot; the completed fold replays from the fold-level
            // checkpoint.
            let resumed = run_cv_resumable(&data, &cfg, None, false, &opts).unwrap();
            let clean_bits: Vec<u64> = clean.iter().flat_map(outcome_bits).collect();
            let resumed_bits: Vec<u64> = resumed.iter().flat_map(outcome_bits).collect();
            assert_eq!(clean_bits, resumed_bits, "{threads} threads");
            assert!(
                !snapshot.exists(),
                "completed fold must discard its snapshot"
            );
            std::fs::remove_file(&path).unwrap();
        }
    }

    fn outcome_bits(o: &FoldOutcome) -> Vec<u64> {
        [
            o.auc,
            o.auc_baseline,
            o.rmse_votes,
            o.rmse_votes_baseline,
            o.rmse_time,
            o.rmse_time_baseline,
        ]
        .iter()
        .map(|x| x.to_bits())
        .collect()
    }

    /// A corrupted (truncated) sub-fold snapshot is detected at load
    /// and the fold recomputes from its start — still reproducing the
    /// uninterrupted run.
    #[test]
    fn corrupt_subfold_snapshot_falls_back_to_fold_start_recompute() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let clean = run_cv(&data, &cfg, None, false);

        let path = temp_checkpoint("corrupt-subfold");
        let mut opts = CvOptions::with_checkpoint(&path);
        opts.snapshot_every = 5;
        opts.fold_attempts = 1;
        {
            let _guard = forumcast_resilience::FaultPlan::parse("fold-panic:3")
                .unwrap()
                .arm();
            run_cv_resumable(&data, &cfg, None, false, &opts).unwrap_err();
        }
        let snapshot = std::path::PathBuf::from(format!("{}.fold1.train.ckpt", path.display()));
        let bytes = std::fs::read(&snapshot).unwrap();
        std::fs::write(&snapshot, &bytes[..bytes.len() / 2]).unwrap();

        let resumed = run_cv_resumable(&data, &cfg, None, false, &opts).unwrap();
        assert_eq!(clean, resumed);
        std::fs::remove_file(&path).unwrap();
        // A truncation that still scans as a valid store prefix is
        // silently truncated (not quarantined); one that breaks a
        // frame is moved aside. Clean up either way.
        let _ = std::fs::remove_file(format!("{}.corrupt", snapshot.display()));
    }

    /// A corrupted *fold-level* checkpoint is quarantined by the
    /// loader and the sweep recomputes (counted) instead of aborting.
    #[test]
    fn corrupt_fold_checkpoint_recomputes_instead_of_aborting() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let clean = run_cv(&data, &cfg, None, false);

        let path = temp_checkpoint("corrupt-fold-ckpt");
        let opts = CvOptions::with_checkpoint(&path);
        run_cv_resumable(&data, &cfg, None, false, &opts).unwrap();
        // Flip a bit in the last frame's CRC: the frame is complete
        // but its checksum no longer matches, so the next load
        // detects and quarantines it.
        let mut bytes = std::fs::read(&path).unwrap();
        *bytes.last_mut().unwrap() ^= 0x08;
        std::fs::write(&path, &bytes).unwrap();

        let resumed = run_cv_resumable(&data, &cfg, None, false, &opts).unwrap();
        assert_eq!(clean, resumed, "recomputed run must match the clean one");
        let quarantined = std::path::PathBuf::from(format!("{}.corrupt", path.display()));
        assert!(
            quarantined.exists(),
            "corrupt checkpoint must be moved aside, not deleted"
        );
        std::fs::remove_file(&quarantined).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    /// A stale `<path>.tmp` left by a crash mid-save is reclaimed
    /// when the run restarts, before the checkpoint is read.
    #[test]
    fn stale_checkpoint_tmp_is_reclaimed_on_restart() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let path = temp_checkpoint("tmp-reclaim");
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, b"half-written checkpoint junk").unwrap();
        let opts = CvOptions::with_checkpoint(&path);
        run_cv_resumable(&data, &cfg, None, false, &opts).unwrap();
        assert!(!tmp.exists(), "stale tmp must be reclaimed at startup");
        std::fs::remove_file(&path).unwrap();
    }

    /// Format migration: a run interrupted under the legacy JSON
    /// format resumes under the binary default — reading both the
    /// JSON fold-level checkpoint and the JSON sub-fold snapshot —
    /// to bits identical to an uninterrupted run.
    #[test]
    fn json_era_checkpoints_resume_under_binary_bitwise_identically() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let clean = run_cv(&data, &cfg, None, false);

        let path = temp_checkpoint("json-migration");
        let mut json_opts = CvOptions::with_checkpoint(&path).with_format(CkptFormat::Json);
        json_opts.snapshot_every = 5;
        json_opts.fold_attempts = 1;
        {
            let _guard = forumcast_resilience::FaultPlan::parse("fold-panic:3")
                .unwrap()
                .arm();
            run_cv_resumable(&data, &cfg, None, false, &json_opts).unwrap_err();
        }
        let snapshot = std::path::PathBuf::from(format!("{}.fold1.train.json", path.display()));
        assert!(snapshot.exists(), "JSON-era sub-fold snapshot on disk");
        assert!(
            std::fs::read(&path).unwrap().starts_with(b"{"),
            "fold-level checkpoint was written as JSON"
        );

        // Resume with the binary default: both JSON files are read
        // (sniffed / legacy fallback) and the result is bitwise
        // identical to the uninterrupted run.
        let mut bin_opts = CvOptions::with_checkpoint(&path);
        bin_opts.snapshot_every = 5;
        let resumed = run_cv_resumable(&data, &cfg, None, false, &bin_opts).unwrap();
        let clean_bits: Vec<u64> = clean.iter().flat_map(outcome_bits).collect();
        let resumed_bits: Vec<u64> = resumed.iter().flat_map(outcome_bits).collect();
        assert_eq!(clean_bits, resumed_bits);
        assert!(
            !snapshot.exists(),
            "completed fold discards the legacy snapshot too"
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// A sub-fold snapshot left by a differently-configured run fails
    /// fast with the stale-checkpoint remedy before any fold work.
    #[test]
    fn stale_subfold_snapshot_is_refused_with_the_remedy() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let path = temp_checkpoint("stale-subfold");
        let opts = CvOptions::with_checkpoint(&path);
        SubfoldHandle::new(&path, 0, "some other run", 5, 2, CkptFormat::Binary)
            .save(&forumcast_core::TrainProgress::default());
        let err = run_cv_resumable(&data, &cfg, None, false, &opts).unwrap_err();
        match &err {
            CvError::Checkpoint(CheckpointError::Stale { .. }) => {}
            other => panic!("expected Stale, got {other}"),
        }
        assert!(err.to_string().contains("--resume"), "{err}");
        let snapshot = std::path::PathBuf::from(format!("{}.fold0.train.ckpt", path.display()));
        std::fs::remove_file(&snapshot).unwrap();
    }

    #[test]
    fn exhausted_fold_retries_surface_the_job_index() {
        let _lock = CV_LOCK.lock().unwrap();
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let _guard = forumcast_resilience::FaultPlan::parse("fold-panic:1x3")
            .unwrap()
            .arm();
        let err = run_cv_resumable(&data, &cfg, None, false, &CvOptions::default()).unwrap_err();
        match err {
            CvError::FoldFailed { job, attempts, .. } => {
                assert_eq!(job, 1);
                assert_eq!(attempts, 3);
            }
            other => panic!("expected FoldFailed, got {other}"),
        }
    }
}
