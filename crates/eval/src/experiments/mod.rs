//! Runners for every table and figure in the paper's evaluation.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`table1`] | Table I — baselines vs. our models on all three tasks |
//! | [`fig3`] | Figure 3 — net votes vs. response time (no correlation) |
//! | [`fig4`] | Figure 4 — CDFs of selected features |
//! | [`fig5`] | Figure 5 — sensitivity to the number of topics `K` |
//! | [`fig6`] | Figure 6 — leave-one-feature-out importance |
//! | [`fig7`] | Figure 7 — feature groups × history length |
//!
//! (Figure 2's graph statistics are reproduced directly from
//! `forumcast_graph::GraphStats` by the `fig2` bench binary.)

pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod table1;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::EvalConfig;
use crate::data::ExperimentData;
use crate::fold::{run_fold, FoldOutcome, MaskSpec};
use crate::parallel::parallel_map;
use crate::split::stratified_folds;

/// Runs the paper's CV protocol (`repeats` × `folds` iterations,
/// stratified by user) over prepared experiment data, in parallel.
pub fn run_cv(
    data: &ExperimentData,
    config: &EvalConfig,
    mask: Option<MaskSpec>,
    run_baselines: bool,
) -> Vec<FoldOutcome> {
    let mut jobs = Vec::new();
    for rep in 0..config.repeats {
        let mut rng = StdRng::seed_from_u64(config.seed ^ (0xC5 + rep as u64));
        let pos_groups: Vec<u32> = data.positives.iter().map(|p| p.user.0).collect();
        let pos_folds = stratified_folds(&pos_groups, config.folds, &mut rng);
        let neg_groups: Vec<u32> = data.negatives.iter().map(|p| p.user.0).collect();
        let neg_folds = stratified_folds(&neg_groups, config.folds, &mut rng);
        for fold in 0..config.folds {
            jobs.push((pos_folds.clone(), neg_folds.clone(), fold));
        }
    }
    parallel_map(&jobs, config.worker_threads(), |(pf, nf, fold)| {
        run_fold(data, config, pf, nf, *fold, mask, run_baselines)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_cv_yields_repeats_times_folds_outcomes() {
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 2;
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let outcomes = run_cv(&data, &cfg, None, false);
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.auc > 0.0));
    }

    #[test]
    fn run_cv_identical_across_thread_counts() {
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        cfg.repeats = 1;
        let (ds, _) = cfg.synth.generate().preprocess();
        cfg.threads = 1;
        let data = ExperimentData::build(&ds, &cfg);
        let serial = run_cv(&data, &cfg, None, false);
        for threads in [2, 7] {
            cfg.threads = threads;
            let par = run_cv(&data, &cfg, None, false);
            assert_eq!(serial, par, "fold outcomes changed with {threads} threads");
        }
    }
}
