//! Figure 7: feature-group importance as a function of the amount of
//! historical data available for inference.
//!
//! Protocol (Section IV-D): evaluation targets are fixed to the last
//! days of the dataset (`Ω = D_25 ∪ … ∪ D_30`); the inference window
//! `F(q) = D_{25−i} ∪ … ∪ D_{25}` varies over
//! `i ∈ {5, 10, 15, 20, 25}`; for each window one of the four feature
//! groups is excluded and the model's RMSE is measured.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

use forumcast_data::DayPartition;
use forumcast_features::FeatureGroup;

use crate::config::EvalConfig;
use crate::data::ExperimentData;
use crate::experiments::{run_cv_resumable, sub_checkpoint, CvError, CvOptions};
use crate::fold::{mean_std, MaskSpec};

/// RMSEs for one (history window, excluded group) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Cell {
    /// Days of history `i`.
    pub history_days: usize,
    /// The excluded group (`None` = full feature set, for reference).
    pub excluded: Option<FeatureGroup>,
    /// Mean RMSE on the vote task.
    pub rmse_votes: f64,
    /// Mean RMSE on the timing task.
    pub rmse_time: f64,
}

/// The Figure 7 grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Report {
    /// All cells, grouped by window then exclusion.
    pub cells: Vec<Fig7Cell>,
}

impl Fig7Report {
    /// The most important group (largest RMSE when excluded) for a
    /// given window and task.
    pub fn most_important(&self, history_days: usize, timing: bool) -> Option<FeatureGroup> {
        self.cells
            .iter()
            .filter(|c| c.history_days == history_days && c.excluded.is_some())
            .max_by(|a, b| {
                let av = if timing { a.rmse_time } else { a.rmse_votes };
                let bv = if timing { b.rmse_time } else { b.rmse_votes };
                av.total_cmp(&bv)
            })
            .and_then(|c| c.excluded)
    }
}

impl fmt::Display for Fig7Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7 — RMSE with one feature group excluded, by history window"
        )?;
        writeln!(
            f,
            "{:>8} {:<16} {:>10} {:>10}",
            "History", "Excluded", "RMSE(v)", "RMSE(r)"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "{:>7}d {:<16} {:>10.3} {:>10.3}",
                c.history_days,
                c.excluded.map_or("(none)".to_string(), |g| g.to_string()),
                c.rmse_votes,
                c.rmse_time
            )?;
        }
        Ok(())
    }
}

/// Runs the Figure 7 experiment. `windows` are the history lengths
/// in days (paper: `[5, 10, 15, 20, 25]`); `eval_from_day` is the
/// first evaluation day (paper: 25).
///
/// # Panics
///
/// Panics when a CV run fails despite per-fold retries.
pub fn run(config: &EvalConfig, windows: &[usize], eval_from_day: usize) -> Fig7Report {
    run_with(config, windows, eval_from_day, None, &CvOptions::default())
        .unwrap_or_else(|e| panic!("fig7: {e}"))
}

/// [`run`] with an optional checkpoint base path and resilience
/// options (see [`CvOptions`]; `opts.checkpoint` itself is ignored):
/// the cell for window `w` with the full feature set checkpoints into
/// `<base>.w<w>.ref.json` and the cell excluding the `j`-th group
/// into `<base>.w<w>.g<j>.json`.
///
/// # Errors
///
/// Returns [`CvError`] when a fold exhausts its retries or a
/// checkpoint file is unusable.
pub fn run_with(
    config: &EvalConfig,
    windows: &[usize],
    eval_from_day: usize,
    checkpoint: Option<&Path>,
    opts: &CvOptions,
) -> Result<Fig7Report, CvError> {
    let (dataset, _) = config.synth.generate().preprocess();
    let days = DayPartition::new(&dataset);
    let last_day = days.num_days();
    let mut cells = Vec::new();

    for &w in windows {
        let from_day = eval_from_day.saturating_sub(w).max(1);
        // Contiguous index range: history days [from_day, eval_from_day)
        // followed by target days [eval_from_day, last_day].
        let history_idx = days.questions_in_days(from_day, eval_from_day - 1);
        let target_idx = days.questions_in_days(eval_from_day, last_day);
        if history_idx.is_empty() || target_idx.is_empty() {
            continue;
        }
        let mut selected = history_idx.clone();
        selected.extend(&target_idx);
        let sub = dataset.select(&selected);
        let warmup = history_idx.len();

        // One bucket: the extractor is fitted on exactly F(q).
        let mut cfg = config.clone();
        cfg.buckets = 1;
        let data = ExperimentData::build_with_ranges(&sub, &cfg, warmup, &cfg.extractor);

        let run_cell = |excluded: Option<FeatureGroup>, tag: String| -> Result<Fig7Cell, CvError> {
            let mask = excluded.map(MaskSpec::Group);
            let opts = opts.for_sub(sub_checkpoint(checkpoint, &tag));
            let outcomes = run_cv_resumable(&data, &cfg, mask, false, &opts)?;
            let v = mean_std(&outcomes.iter().map(|o| o.rmse_votes).collect::<Vec<_>>()).0;
            let t = mean_std(&outcomes.iter().map(|o| o.rmse_time).collect::<Vec<_>>()).0;
            Ok(Fig7Cell {
                history_days: w,
                excluded,
                rmse_votes: v,
                rmse_time: t,
            })
        };
        cells.push(run_cell(None, format!("w{w}.ref"))?);
        for (j, g) in FeatureGroup::ALL.into_iter().enumerate() {
            cells.push(run_cell(Some(g), format!("w{w}.g{j}"))?);
        }
    }
    Ok(Fig7Report { cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_important_picks_max_rmse() {
        let report = Fig7Report {
            cells: vec![
                Fig7Cell {
                    history_days: 5,
                    excluded: Some(FeatureGroup::User),
                    rmse_votes: 1.0,
                    rmse_time: 30.0,
                },
                Fig7Cell {
                    history_days: 5,
                    excluded: Some(FeatureGroup::Question),
                    rmse_votes: 2.0,
                    rmse_time: 10.0,
                },
                Fig7Cell {
                    history_days: 5,
                    excluded: None,
                    rmse_votes: 0.9,
                    rmse_time: 9.0,
                },
            ],
        };
        assert_eq!(
            report.most_important(5, true),
            Some(FeatureGroup::User),
            "timing should blame the user group"
        );
        assert_eq!(
            report.most_important(5, false),
            Some(FeatureGroup::Question)
        );
        assert_eq!(report.most_important(9, true), None);
        assert!(report.to_string().contains("(none)"));
    }

    #[test]
    #[ignore = "minutes-long: trains 5 models per history window"]
    fn quick_fig7_runs() {
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        let report = run(&cfg, &[10, 20], 25);
        assert!(!report.cells.is_empty());
    }
}
