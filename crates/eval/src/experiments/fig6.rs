//! Figure 6: leave-one-feature-out importance for `v̂` and `r̂`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

use forumcast_features::FeatureId;

use crate::config::EvalConfig;
use crate::data::ExperimentData;
use crate::experiments::{run_cv_resumable, sub_checkpoint, CvError, CvOptions};
use crate::fold::{mean_std, MaskSpec};

/// Importance of one feature: % increase in RMSE when it is removed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Bar {
    /// The excluded feature.
    pub feature: FeatureId,
    /// %ΔRMSE on the vote task (positive = feature was helping).
    pub votes_pct: f64,
    /// %ΔRMSE on the timing task.
    pub time_pct: f64,
}

/// The full Figure 6 report: one bar per logical feature.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Report {
    /// Full-feature-set reference RMSEs `(votes, time)`.
    pub reference: (f64, f64),
    /// Bars in paper feature order.
    pub bars: Vec<Fig6Bar>,
}

impl Fig6Report {
    /// Features sorted by importance for the given task
    /// (`true` = timing task).
    pub fn ranked(&self, timing: bool) -> Vec<(FeatureId, f64)> {
        let mut v: Vec<(FeatureId, f64)> = self
            .bars
            .iter()
            .map(|b| (b.feature, if timing { b.time_pct } else { b.votes_pct }))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v
    }
}

impl fmt::Display for Fig6Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6 — leave-one-feature-out %ΔRMSE (reference: v {:.3}, r {:.3})",
            self.reference.0, self.reference.1
        )?;
        writeln!(
            f,
            "{:<8} {:<14} {:>10} {:>10}",
            "Feature", "Group", "Δv %", "Δr %"
        )?;
        for b in &self.bars {
            writeln!(
                f,
                "{:<8} {:<14} {:>+10.2} {:>+10.2}",
                b.feature.symbol(),
                b.feature.group().to_string(),
                b.votes_pct,
                b.time_pct
            )?;
        }
        Ok(())
    }
}

/// Runs the leave-one-feature-out study: a full CV per excluded
/// feature (20 runs) plus one reference run, all without baselines.
///
/// # Panics
///
/// Panics when a CV run fails despite per-fold retries.
pub fn run(config: &EvalConfig) -> Fig6Report {
    let (dataset, _) = config.synth.generate().preprocess();
    let data = ExperimentData::build(&dataset, config);
    run_on(&data, config)
}

/// Runs the study on prebuilt experiment data (reused by benches).
///
/// # Panics
///
/// Panics when a CV run fails despite per-fold retries.
pub fn run_on(data: &ExperimentData, config: &EvalConfig) -> Fig6Report {
    run_on_with(data, config, None, &CvOptions::default()).unwrap_or_else(|e| panic!("fig6: {e}"))
}

/// [`run_on`] with an optional checkpoint base path and resilience
/// options (see [`CvOptions`]; `opts.checkpoint` itself is ignored):
/// the reference run checkpoints into `<base>.ref.json` and the run
/// excluding the `i`-th feature into `<base>.feat<i>.json`.
///
/// # Errors
///
/// Returns [`CvError`] when a fold exhausts its retries or a
/// checkpoint file is unusable.
pub fn run_on_with(
    data: &ExperimentData,
    config: &EvalConfig,
    checkpoint: Option<&Path>,
    opts: &CvOptions,
) -> Result<Fig6Report, CvError> {
    let ref_opts = opts.for_sub(sub_checkpoint(checkpoint, "ref"));
    let reference = run_cv_resumable(data, config, None, false, &ref_opts)?;
    let ref_v = mean_std(&reference.iter().map(|o| o.rmse_votes).collect::<Vec<_>>()).0;
    let ref_t = mean_std(&reference.iter().map(|o| o.rmse_time).collect::<Vec<_>>()).0;

    // The run_cv calls already parallelize folds internally; sweep
    // features sequentially to bound memory.
    let mut bars = Vec::with_capacity(FeatureId::ALL.len());
    for (i, &feature) in FeatureId::ALL.iter().enumerate() {
        let opts = opts.for_sub(sub_checkpoint(checkpoint, &format!("feat{i}")));
        let outcomes =
            run_cv_resumable(data, config, Some(MaskSpec::Feature(feature)), false, &opts)?;
        let v = mean_std(&outcomes.iter().map(|o| o.rmse_votes).collect::<Vec<_>>()).0;
        let t = mean_std(&outcomes.iter().map(|o| o.rmse_time).collect::<Vec<_>>()).0;
        bars.push(Fig6Bar {
            feature,
            votes_pct: (v - ref_v) / ref_v * 100.0,
            time_pct: (t - ref_t) / ref_t * 100.0,
        });
    }

    Ok(Fig6Report {
        reference: (ref_v, ref_t),
        bars,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranked_orders_by_importance() {
        let report = Fig6Report {
            reference: (1.0, 10.0),
            bars: vec![
                Fig6Bar {
                    feature: FeatureId::AnswersProvided,
                    votes_pct: 1.0,
                    time_pct: 40.0,
                },
                Fig6Bar {
                    feature: FeatureId::NetQuestionVotes,
                    votes_pct: 8.0,
                    time_pct: 2.0,
                },
            ],
        };
        assert_eq!(report.ranked(true)[0].0, FeatureId::AnswersProvided);
        assert_eq!(report.ranked(false)[0].0, FeatureId::NetQuestionVotes);
        assert!(report.to_string().contains("a_u"));
    }

    #[test]
    #[ignore = "minutes-long: 21 CV runs"]
    fn quick_study_runs() {
        let mut cfg = EvalConfig::quick();
        cfg.folds = 2;
        let report = run(&cfg);
        assert_eq!(report.bars.len(), 20);
    }
}
