//! Table I: performance on all three prediction tasks vs. baselines.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

use crate::columnar::SpilledExperiment;
use crate::config::EvalConfig;
use crate::data::ExperimentData;
use crate::experiments::{run_cv_resumable, run_cv_streamed, CvError, CvOptions};
use crate::fold::mean_std;

/// One row of Table I.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Prediction task (`a_uq`, `v_uq`, `r_uq`).
    pub task: String,
    /// Metric name (AUC or RMSE).
    pub metric: String,
    /// Baseline mean ± std across CV iterations.
    pub baseline: (f64, f64),
    /// Our model's mean ± std.
    pub ours: (f64, f64),
    /// Relative improvement over the baseline, in percent (higher
    /// AUC / lower RMSE is better).
    pub improvement_pct: f64,
}

/// The full Table I report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Report {
    /// The three task rows.
    pub rows: Vec<Table1Row>,
    /// CV iterations behind each mean.
    pub iterations: usize,
}

impl fmt::Display for Table1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table I — prediction performance over {} CV iterations",
            self.iterations
        )?;
        writeln!(
            f,
            "{:<6} {:<6} {:>18} {:>18} {:>12}",
            "Task", "Metric", "Baseline", "Our model", "Improvement"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:<6} {:>10.3} ±{:<6.3} {:>10.3} ±{:<6.3} {:>10.1}%",
                r.task, r.metric, r.baseline.0, r.baseline.1, r.ours.0, r.ours.1, r.improvement_pct
            )?;
        }
        Ok(())
    }
}

/// Runs the Table I experiment: full CV with baselines on the
/// standard protocol (`Ω = Q`, bucketed prior history).
///
/// # Panics
///
/// Panics when the CV sweep fails despite per-fold retries.
pub fn run(config: &EvalConfig) -> Table1Report {
    run_with(config, None, &CvOptions::default()).unwrap_or_else(|e| panic!("table1: {e}"))
}

/// [`run`] with an optional checkpoint file and resilience options:
/// completed folds are saved after each fold (in `opts.format`) and
/// skipped when rerun with the same path, and (with a checkpoint set)
/// every `opts.snapshot_every` training epochs the in-flight fold
/// persists its trainer state so even a mid-fold crash resumes
/// without losing the fold. `opts.checkpoint` itself is ignored — the
/// `checkpoint` argument names the file.
///
/// # Errors
///
/// Returns [`CvError`] when a fold exhausts its retries or the
/// checkpoint file is unusable.
pub fn run_with(
    config: &EvalConfig,
    checkpoint: Option<&Path>,
    opts: &CvOptions,
) -> Result<Table1Report, CvError> {
    let (dataset, _) = config.synth.generate().preprocess();
    let data = ExperimentData::build(&dataset, config);
    let opts = opts.for_sub(checkpoint.map(Path::to_path_buf));
    let outcomes = run_cv_resumable(&data, config, None, true, &opts)?;
    Ok(report_from(&outcomes))
}

/// [`run`] over the columnar on-disk store: the experiment is built
/// straight into `dir` (one bucket of records resident at a time,
/// never the full feature matrix) and folds stream back one at a
/// time, so peak memory is bounded by roughly one training fold.
/// Metrics are bitwise-identical to [`run`]'s. The streamed path has
/// no checkpoint/snapshot support — its durability story is the spill
/// itself.
///
/// # Errors
///
/// Returns [`CvError`] when the spill directory is unusable or a
/// streamed fold fails.
pub fn run_streamed(config: &EvalConfig, dir: &Path) -> Result<Table1Report, CvError> {
    let (dataset, _) = config.synth.generate().preprocess();
    let spilled = SpilledExperiment::build(&dataset, config, dir).map_err(|e| CvError::Data {
        message: e.to_string(),
    })?;
    drop(dataset);
    let outcomes = run_cv_streamed(&spilled, config, None, true)?;
    Ok(report_from(&outcomes))
}

/// Builds the report from raw fold outcomes (exposed for reuse by the
/// bench harness and tests).
pub fn report_from(outcomes: &[crate::fold::FoldOutcome]) -> Table1Report {
    let collect =
        |f: fn(&crate::fold::FoldOutcome) -> f64| -> Vec<f64> { outcomes.iter().map(f).collect() };
    let auc_ours = mean_std(&collect(|o| o.auc));
    let auc_base = mean_std(&collect(|o| o.auc_baseline));
    let votes_ours = mean_std(&collect(|o| o.rmse_votes));
    let votes_base = mean_std(&collect(|o| o.rmse_votes_baseline));
    let time_ours = mean_std(&collect(|o| o.rmse_time));
    let time_base = mean_std(&collect(|o| o.rmse_time_baseline));

    let rows = vec![
        Table1Row {
            task: "a_uq".into(),
            metric: "AUC".into(),
            baseline: auc_base,
            ours: auc_ours,
            improvement_pct: if auc_base.0 > 0.0 {
                (auc_ours.0 - auc_base.0) / auc_base.0 * 100.0
            } else {
                0.0
            },
        },
        Table1Row {
            task: "v_uq".into(),
            metric: "RMSE".into(),
            baseline: votes_base,
            ours: votes_ours,
            improvement_pct: if votes_base.0 > 0.0 {
                (votes_base.0 - votes_ours.0) / votes_base.0 * 100.0
            } else {
                0.0
            },
        },
        Table1Row {
            task: "r_uq".into(),
            metric: "RMSE".into(),
            baseline: time_base,
            ours: time_ours,
            improvement_pct: if time_base.0 > 0.0 {
                (time_base.0 - time_ours.0) / time_base.0 * 100.0
            } else {
                0.0
            },
        },
    ];
    Table1Report {
        rows,
        iterations: outcomes.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fold::FoldOutcome;

    #[test]
    fn report_math_is_correct() {
        let outcomes = vec![
            FoldOutcome {
                auc: 0.9,
                auc_baseline: 0.6,
                rmse_votes: 1.0,
                rmse_votes_baseline: 2.0,
                rmse_time: 10.0,
                rmse_time_baseline: 20.0,
            },
            FoldOutcome {
                auc: 0.8,
                auc_baseline: 0.7,
                rmse_votes: 1.2,
                rmse_votes_baseline: 1.8,
                rmse_time: 12.0,
                rmse_time_baseline: 18.0,
            },
        ];
        let report = report_from(&outcomes);
        assert_eq!(report.iterations, 2);
        // AUC: ours 0.85 vs base 0.65 → +30.77%.
        assert!((report.rows[0].improvement_pct - (0.2 / 0.65 * 100.0)).abs() < 1e-9);
        // Votes RMSE: base 1.9 vs ours 1.1 → +42.1%.
        assert!((report.rows[1].improvement_pct - (0.8 / 1.9 * 100.0)).abs() < 1e-9);
        let text = report.to_string();
        assert!(text.contains("a_uq"));
        assert!(text.contains("Improvement"));
    }

    #[test]
    #[ignore = "minutes-long: full quick-protocol CV with baselines"]
    fn quick_run_beats_baselines() {
        let report = run(&EvalConfig::quick());
        assert!(report.rows[0].improvement_pct > 0.0, "{report}");
    }
}
