//! Figure 3: net votes vs. response time across answered pairs —
//! the paper's "surprisingly, there is no correlation" finding.

use serde::{Deserialize, Serialize};
use std::fmt;

use forumcast_data::Dataset;

use crate::metrics::{pearson, spearman};

/// The Figure 3 reproduction: correlation statistics plus a sample of
/// scatter points `(response_time, votes)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Report {
    /// Number of answered `(u, q)` pairs.
    pub num_pairs: usize,
    /// Pearson correlation between `v_{u,q}` and `r_{u,q}`.
    pub pearson: f64,
    /// Spearman rank correlation.
    pub spearman: f64,
    /// Scatter sample (at most `max_points`), as `(hours, votes)`.
    pub scatter: Vec<(f64, f64)>,
}

impl fmt::Display for Fig3Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3 — votes vs. response time over {} pairs",
            self.num_pairs
        )?;
        writeln!(f, "pearson  = {:+.4}", self.pearson)?;
        writeln!(f, "spearman = {:+.4}", self.spearman)?;
        writeln!(
            f,
            "verdict: {}",
            if self.pearson.abs() < 0.1 {
                "uncorrelated (matches the paper's Figure 3)"
            } else {
                "CORRELATED — deviates from the paper"
            }
        )
    }
}

/// Computes the Figure 3 statistics over a preprocessed dataset.
pub fn run(dataset: &Dataset, max_points: usize) -> Fig3Report {
    let pairs = dataset.answered_pairs();
    let times: Vec<f64> = pairs.iter().map(|p| p.response_time).collect();
    let votes: Vec<f64> = pairs.iter().map(|p| p.votes as f64).collect();
    let stride = (pairs.len() / max_points.max(1)).max(1);
    let scatter = pairs
        .iter()
        .step_by(stride)
        .take(max_points)
        .map(|p| (p.response_time, p.votes as f64))
        .collect();
    Fig3Report {
        num_pairs: pairs.len(),
        pearson: pearson(&times, &votes),
        spearman: spearman(&times, &votes),
        scatter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forumcast_synth::SynthConfig;

    #[test]
    fn synthetic_data_reproduces_no_correlation() {
        let (ds, _) = SynthConfig::medium().with_seed(42).generate().preprocess();
        let report = run(&ds, 500);
        assert!(report.num_pairs > 1000);
        assert!(
            report.pearson.abs() < 0.1,
            "pearson {} should be ~0",
            report.pearson
        );
        assert!(report.scatter.len() <= 500);
        assert!(report.to_string().contains("uncorrelated"));
    }

    #[test]
    fn scatter_respects_max_points() {
        let (ds, _) = SynthConfig::small().with_seed(1).generate().preprocess();
        let report = run(&ds, 10);
        assert!(report.scatter.len() <= 10);
    }
}
