//! Figure 4: cumulative distribution functions of selected features
//! over the full dataset (panels a–f).

use serde::{Deserialize, Serialize};
use std::fmt;

use forumcast_data::{Dataset, UserId};
use forumcast_features::{ExtractorConfig, FeatureExtractor};

use crate::metrics::cdf_points;

/// One CDF series: a named curve of `(value, cumulative fraction)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CdfSeries {
    /// Series label (e.g. `"r_u | a_u >= 5"`).
    pub label: String,
    /// `(value, fraction)` points, non-decreasing in both.
    pub points: Vec<(f64, f64)>,
}

/// All six panels of Figure 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Report {
    /// (a) answers provided `a_u` (users with ≥ 1 answer).
    pub answers_provided: CdfSeries,
    /// (b) median response time `r_u`, split by activity level.
    pub response_time_by_activity: Vec<CdfSeries>,
    /// (c) average answer votes, split by activity level.
    pub votes_by_activity: Vec<CdfSeries>,
    /// (d) topic similarities `s_{u,q}` and `s_{u,v}`.
    pub topic_similarities: Vec<CdfSeries>,
    /// (e) question word/code lengths.
    pub question_lengths: Vec<CdfSeries>,
    /// (f) centralities (each normalized to max 1, as in the paper).
    pub centralities: Vec<CdfSeries>,
}

impl fmt::Display for Fig4Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 4 — feature CDFs (value @ fraction)")?;
        let mut show = |series: &CdfSeries| -> fmt::Result {
            let quartiles: Vec<String> = [0.25, 0.5, 0.75, 1.0]
                .iter()
                .map(|&q| {
                    series
                        .points
                        .iter()
                        .find(|(_, frac)| *frac >= q)
                        .map(|(v, _)| format!("{v:.3}@{q}"))
                        .unwrap_or_default()
                })
                .collect();
            writeln!(f, "  {:<24} {}", series.label, quartiles.join("  "))
        };
        show(&self.answers_provided)?;
        for s in self
            .response_time_by_activity
            .iter()
            .chain(&self.votes_by_activity)
            .chain(&self.topic_similarities)
            .chain(&self.question_lengths)
            .chain(&self.centralities)
        {
            show(s)?;
        }
        Ok(())
    }
}

/// Builds all Figure 4 panels. The extractor is fitted on the whole
/// dataset (`Ω = Q`), matching the paper's full-dataset feature
/// statistics (Section III-B). `cdf_resolution` is the number of
/// points per curve; `pair_sample` caps the number of user–question
/// pairs sampled for panel (d).
pub fn run(
    dataset: &Dataset,
    extractor_config: &ExtractorConfig,
    cdf_resolution: usize,
    pair_sample: usize,
) -> Fig4Report {
    let extractor = FeatureExtractor::fit(dataset.threads(), dataset.num_users(), extractor_config);
    let ctx = extractor.context();
    let users: Vec<UserId> = (0..dataset.num_users()).map(UserId).collect();

    // (a) answers provided, over users with at least one answer.
    let answers: Vec<f64> = users
        .iter()
        .map(|&u| ctx.answers_provided(u))
        .filter(|&a| a >= 1.0)
        .collect();
    let answers_provided = CdfSeries {
        label: "a_u (a_u>=1)".into(),
        points: cdf_points(&answers, cdf_resolution),
    };

    // (b)/(c) split users by activity thresholds, as in the paper.
    let thresholds = [1.0, 2.0, 5.0];
    let mut response_time_by_activity = Vec::new();
    let mut votes_by_activity = Vec::new();
    for &thr in &thresholds {
        let rs: Vec<f64> = users
            .iter()
            .filter(|&&u| ctx.answers_provided(u) >= thr)
            .map(|&u| ctx.median_response_time(u))
            .collect();
        response_time_by_activity.push(CdfSeries {
            label: format!("r_u | a_u>={thr}"),
            points: cdf_points(&rs, cdf_resolution),
        });
        let vs: Vec<f64> = users
            .iter()
            .filter(|&&u| ctx.answers_provided(u) >= thr)
            .map(|&u| ctx.net_answer_votes(u) / ctx.answers_provided(u))
            .collect();
        votes_by_activity.push(CdfSeries {
            label: format!("avg v_u | a_u>={thr}"),
            points: cdf_points(&vs, cdf_resolution),
        });
    }

    // (d) topic similarities over answered pairs.
    let pairs = dataset.answered_pairs();
    let stride = (pairs.len() / pair_sample.max(1)).max(1);
    let mut s_uq = Vec::new();
    let mut s_uv = Vec::new();
    for p in pairs.iter().step_by(stride).take(pair_sample) {
        let thread = &dataset.threads()[p.question_index];
        let d_q = extractor.question_topics(thread);
        let x = extractor.features(p.user, thread, &d_q);
        let layout = extractor.layout();
        s_uq.push(
            x[layout
                .range(forumcast_features::FeatureId::UserQuestionTopicSimilarity)
                .start],
        );
        s_uv.push(
            x[layout
                .range(forumcast_features::FeatureId::UserUserTopicSimilarity)
                .start],
        );
    }
    let topic_similarities = vec![
        CdfSeries {
            label: "s_uq".into(),
            points: cdf_points(&s_uq, cdf_resolution),
        },
        CdfSeries {
            label: "s_uv".into(),
            points: cdf_points(&s_uv, cdf_resolution),
        },
    ];

    // (e) question lengths.
    let word_lens: Vec<f64> = dataset
        .threads()
        .iter()
        .map(|t| t.question.body.word_len() as f64)
        .collect();
    let code_lens: Vec<f64> = dataset
        .threads()
        .iter()
        .map(|t| t.question.body.code_len() as f64)
        .collect();
    let question_lengths = vec![
        CdfSeries {
            label: "x_q".into(),
            points: cdf_points(&word_lens, cdf_resolution),
        },
        CdfSeries {
            label: "c_q".into(),
            points: cdf_points(&code_lens, cdf_resolution),
        },
    ];

    // (f) centralities, normalized to max 1 as in the paper.
    let normalized = |vals: Vec<f64>| -> Vec<f64> {
        let max = vals.iter().cloned().fold(0.0, f64::max);
        if max > 0.0 {
            vals.into_iter().map(|v| v / max).collect()
        } else {
            vals
        }
    };
    let centralities = vec![
        CdfSeries {
            label: "b_qa (norm)".into(),
            points: cdf_points(
                &normalized(users.iter().map(|&u| ctx.betweenness_qa(u)).collect()),
                cdf_resolution,
            ),
        },
        CdfSeries {
            label: "b_d (norm)".into(),
            points: cdf_points(
                &normalized(users.iter().map(|&u| ctx.betweenness_dense(u)).collect()),
                cdf_resolution,
            ),
        },
        CdfSeries {
            label: "l_qa (norm)".into(),
            points: cdf_points(
                &normalized(users.iter().map(|&u| ctx.closeness_qa(u)).collect()),
                cdf_resolution,
            ),
        },
        CdfSeries {
            label: "l_d (norm)".into(),
            points: cdf_points(
                &normalized(users.iter().map(|&u| ctx.closeness_dense(u)).collect()),
                cdf_resolution,
            ),
        },
    ];

    Fig4Report {
        answers_provided,
        response_time_by_activity,
        votes_by_activity,
        topic_similarities,
        question_lengths,
        centralities,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forumcast_synth::SynthConfig;

    #[test]
    fn panels_reproduce_paper_shapes() {
        let (ds, _) = SynthConfig::small().with_seed(9).generate().preprocess();
        let report = run(&ds, &ExtractorConfig::fast(), 20, 200);

        // (b): more active users respond faster — median r_u of the
        // a_u>=5 series should sit below the a_u>=1 series.
        let median_of = |s: &CdfSeries| {
            s.points
                .iter()
                .find(|(_, f)| *f >= 0.5)
                .map(|(v, _)| *v)
                .unwrap_or(f64::NAN)
        };
        let r1 = median_of(&report.response_time_by_activity[0]);
        let r5 = median_of(&report.response_time_by_activity[2]);
        assert!(r5 <= r1, "active users should answer faster: {r5} vs {r1}");

        // (e): median lengths near 300 chars.
        let xq = median_of(&report.question_lengths[0]);
        assert!((150.0..500.0).contains(&xq), "median x_q {xq}");

        // (f): normalized centralities are in [0, 1].
        for s in &report.centralities {
            for &(v, _) in &s.points {
                assert!((0.0..=1.0).contains(&v), "{} value {v}", s.label);
            }
        }

        // All CDFs monotone.
        for s in [&report.answers_provided]
            .into_iter()
            .chain(&report.topic_similarities)
        {
            for w in s.points.windows(2) {
                assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
            }
        }
        assert!(report.to_string().contains("s_uv"));
    }
}
