//! One cross-validation iteration: train our models + baselines on
//! the train folds, evaluate AUC/RMSE on the held-out fold.

use serde::{Deserialize, Serialize};

use forumcast_core::{ResponsePredictor, TrainingSet};
use forumcast_features::{FeatureGroup, FeatureId};

use crate::baselines::Baselines;
use crate::columnar::{ColumnarError, RowMeta, RowStream, SpilledExperiment};
use crate::config::EvalConfig;
use crate::data::ExperimentData;
use crate::metrics::{auc, rmse};
use crate::subfold::SubfoldHandle;

/// What to exclude from the feature vector in an importance study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaskSpec {
    /// Zero one logical feature (Figure 6).
    Feature(FeatureId),
    /// Zero a whole group (Figure 7).
    Group(FeatureGroup),
}

/// Metrics from one fold: ours and the baselines'.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FoldOutcome {
    /// AUC of the logistic `â` model.
    pub auc: f64,
    /// AUC of the SPARFA baseline.
    pub auc_baseline: f64,
    /// RMSE of the deep-network `v̂` model.
    pub rmse_votes: f64,
    /// RMSE of the MF baseline.
    pub rmse_votes_baseline: f64,
    /// RMSE of the point-process `r̂` model (hours).
    pub rmse_time: f64,
    /// RMSE of the Poisson-regression baseline (hours).
    pub rmse_time_baseline: f64,
}

/// Runs one CV iteration. `pos_folds` / `neg_folds` assign a fold id
/// to every positive / negative record; records with fold `test_fold`
/// are held out. `mask` optionally zeroes feature slots everywhere
/// (train and test), implementing the exclusion protocols of
/// Figures 6–7. `run_baselines` can be disabled for masking sweeps
/// (the baselines don't use features, so their numbers would not
/// change). `subfold` optionally binds the fold to an epoch-granular
/// training checkpoint: snapshots are persisted at the handle's
/// cadence, and a snapshot left by an interrupted attempt is loaded
/// back to fast-forward training along a bitwise-identical
/// trajectory.
#[allow(clippy::too_many_arguments)] // one knob per evaluation protocol axis
pub fn run_fold(
    data: &ExperimentData,
    config: &EvalConfig,
    pos_folds: &[usize],
    neg_folds: &[usize],
    test_fold: usize,
    mask: Option<MaskSpec>,
    run_baselines: bool,
    subfold: Option<&SubfoldHandle>,
) -> FoldOutcome {
    assert_eq!(pos_folds.len(), data.positives.len(), "pos fold map size");
    assert_eq!(neg_folds.len(), data.negatives.len(), "neg fold map size");

    let masked = |x: &[f64]| -> Vec<f64> {
        let mut v = x.to_vec();
        match mask {
            Some(MaskSpec::Feature(f)) => data.layout.mask_feature(&mut v, f),
            Some(MaskSpec::Group(g)) => data.layout.mask_group(&mut v, g),
            None => {}
        }
        v
    };

    let train_pos: Vec<usize> = (0..data.positives.len())
        .filter(|&i| pos_folds[i] != test_fold)
        .collect();
    let test_pos: Vec<usize> = (0..data.positives.len())
        .filter(|&i| pos_folds[i] == test_fold)
        .collect();
    let train_neg: Vec<usize> = (0..data.negatives.len())
        .filter(|&i| neg_folds[i] != test_fold)
        .collect();
    let test_neg: Vec<usize> = (0..data.negatives.len())
        .filter(|&i| neg_folds[i] == test_fold)
        .collect();

    // --- our models ---
    let mut ts = TrainingSet::new(data.dim);
    for &i in &train_pos {
        let p = &data.positives[i];
        ts.push_answer(masked(&p.x), true);
        ts.push_vote(masked(&p.x), p.votes);
    }
    for &i in &train_neg {
        ts.push_answer(masked(&data.negatives[i].x), false);
    }
    // Timing observations grouped per target thread.
    let mut pos_by_target = vec![Vec::new(); data.num_targets];
    for &i in &train_pos {
        pos_by_target[data.positives[i].target].push(i);
    }
    let mut neg_by_target = vec![Vec::new(); data.num_targets];
    for &i in &train_neg {
        neg_by_target[data.negatives[i].target].push(i);
    }
    for t in 0..data.num_targets {
        if pos_by_target[t].is_empty() {
            continue;
        }
        let answers: Vec<(Vec<f64>, f64)> = pos_by_target[t]
            .iter()
            .map(|&i| {
                let p = &data.positives[i];
                (masked(&p.x), p.response_time)
            })
            .collect();
        let non: Vec<Vec<f64>> = neg_by_target[t]
            .iter()
            .map(|&i| masked(&data.negatives[i].x))
            .collect();
        ts.push_timing_thread(answers, non, data.windows[t], data.num_users);
    }
    let model = match subfold {
        Some(handle) => {
            let resume = handle.load();
            if let Some(progress) = &resume {
                forumcast_obs::counter_add("eval.subfold.resume_hits", 1);
                forumcast_obs::counter_add(
                    "eval.subfold.epochs_skipped",
                    progress.epochs_done(&config.train),
                );
            }
            ResponsePredictor::train_resumable(
                &ts,
                &config.train,
                resume.as_ref(),
                handle.snapshot_every(),
                &mut |p| handle.save(p),
            )
        }
        None => ResponsePredictor::train(&ts, &config.train),
    };

    // --- evaluation ---
    let mut scores = Vec::with_capacity(test_pos.len() + test_neg.len());
    let mut labels = Vec::with_capacity(scores.capacity());
    for &i in &test_pos {
        scores.push(model.predict_answer(&masked(&data.positives[i].x)));
        labels.push(true);
    }
    for &i in &test_neg {
        scores.push(model.predict_answer(&masked(&data.negatives[i].x)));
        labels.push(false);
    }
    let our_auc = auc(&scores, &labels);

    let vote_pred: Vec<f64> = test_pos
        .iter()
        .map(|&i| model.predict_votes(&masked(&data.positives[i].x)))
        .collect();
    let vote_true: Vec<f64> = test_pos.iter().map(|&i| data.positives[i].votes).collect();
    let our_rmse_votes = rmse(&vote_pred, &vote_true);

    let time_pred: Vec<f64> = test_pos
        .iter()
        .map(|&i| {
            let p = &data.positives[i];
            model.predict_response_time(&masked(&p.x), data.windows[p.target])
        })
        .collect();
    let time_true: Vec<f64> = test_pos
        .iter()
        .map(|&i| data.positives[i].response_time)
        .collect();
    let our_rmse_time = rmse(&time_pred, &time_true);

    // --- baselines ---
    let (auc_b, rmse_v_b, rmse_t_b) = if run_baselines {
        let baselines = Baselines::train(data, &train_pos, &train_neg, config.seed ^ 0xBA5E);
        let mut scores_b = Vec::with_capacity(test_pos.len() + test_neg.len());
        for &i in &test_pos {
            scores_b.push(baselines.score_answer(&data.positives[i]));
        }
        for &i in &test_neg {
            scores_b.push(baselines.score_answer(&data.negatives[i]));
        }
        let auc_b = auc(&scores_b, &labels);
        let votes_b: Vec<f64> = test_pos
            .iter()
            .map(|&i| baselines.predict_votes(&data.positives[i]))
            .collect();
        let times_b: Vec<f64> = test_pos
            .iter()
            .map(|&i| baselines.predict_response_time(&data.positives[i]))
            .collect();
        (
            auc_b,
            rmse(&votes_b, &vote_true),
            rmse(&times_b, &time_true),
        )
    } else {
        (0.0, 0.0, 0.0)
    };

    FoldOutcome {
        auc: our_auc,
        auc_baseline: auc_b,
        rmse_votes: our_rmse_votes,
        rmse_votes_baseline: rmse_v_b,
        rmse_time: our_rmse_time,
        rmse_time_baseline: rmse_t_b,
    }
}

/// [`run_fold`] over a spilled (columnar on-disk) experiment: the
/// same CV iteration with the feature matrix streamed from disk one
/// row group at a time instead of held resident.
///
/// Produces a [`FoldOutcome`] bitwise-identical to [`run_fold`] on
/// the equivalent [`ExperimentData`]: the training set is assembled
/// with the exact same push sequence (answers + votes per training
/// positive in index order, answers per training negative, then one
/// timing thread per target) from three streaming passes — records
/// leave the build in non-decreasing target order, so each target's
/// rows form a contiguous run and a parallel merge walk over the two
/// row files reproduces the per-target grouping without an index.
///
/// Only the held-out fold's feature vectors (for evaluation) and —
/// when `run_baselines` is set — the training positives' raw vectors
/// (the Poisson regressor's design matrix) are kept resident; with
/// baselines off, peak memory is the active fold's training set.
///
/// Sub-fold (mid-training) snapshots are not supported on this path.
///
/// # Errors
///
/// [`ColumnarError`] when a row file is unreadable, torn, or corrupt.
pub fn run_fold_streamed(
    spilled: &SpilledExperiment,
    config: &EvalConfig,
    pos_folds: &[usize],
    neg_folds: &[usize],
    test_fold: usize,
    mask: Option<MaskSpec>,
    run_baselines: bool,
) -> Result<FoldOutcome, ColumnarError> {
    assert_eq!(pos_folds.len(), spilled.pos.len(), "pos fold map size");
    assert_eq!(neg_folds.len(), spilled.neg.len(), "neg fold map size");

    let masked = |x: &[f64]| -> Vec<f64> {
        let mut v = x.to_vec();
        match mask {
            Some(MaskSpec::Feature(f)) => spilled.layout.mask_feature(&mut v, f),
            Some(MaskSpec::Group(g)) => spilled.layout.mask_group(&mut v, g),
            None => {}
        }
        v
    };

    let test_pos: Vec<usize> = (0..spilled.pos.len())
        .filter(|&i| pos_folds[i] == test_fold)
        .collect();
    let test_neg: Vec<usize> = (0..spilled.neg.len())
        .filter(|&i| neg_folds[i] == test_fold)
        .collect();

    // --- our models ---
    // Pass A over the positives: push answer + vote observations for
    // training rows (rows stream in index order, so this is the same
    // sequence as run_fold's `for &i in &train_pos`), keep the
    // held-out rows' vectors for evaluation, and — for the Poisson
    // baseline — the training rows' raw vectors.
    let mut ts = TrainingSet::new(spilled.dim);
    let mut test_pos_x: Vec<Vec<f64>> = Vec::with_capacity(test_pos.len());
    let mut train_pos_raw: Vec<Vec<f64>> = Vec::new();
    {
        let mut stream = spilled.stream_pos()?;
        let mut i = 0usize;
        while let Some((meta, x)) = stream.next_row()? {
            if pos_folds[i] != test_fold {
                ts.push_answer(masked(&x), true);
                ts.push_vote(masked(&x), meta.votes);
                if run_baselines {
                    train_pos_raw.push(x);
                }
            } else {
                test_pos_x.push(x);
            }
            i += 1;
        }
    }
    // Pass B over the negatives: answer observations for training
    // rows, held-out vectors for evaluation.
    let mut test_neg_x: Vec<Vec<f64>> = Vec::with_capacity(test_neg.len());
    {
        let mut stream = spilled.stream_neg()?;
        let mut i = 0usize;
        while let Some((_, x)) = stream.next_row()? {
            if neg_folds[i] != test_fold {
                ts.push_answer(masked(&x), false);
            } else {
                test_neg_x.push(x);
            }
            i += 1;
        }
    }
    // Pass C: timing observations grouped per target thread, via a
    // merge walk over both row files in target order.
    {
        let mut pos_walk = TargetWalk::new(spilled.stream_pos()?, pos_folds, test_fold);
        let mut neg_walk = TargetWalk::new(spilled.stream_neg()?, neg_folds, test_fold);
        for t in 0..spilled.num_targets {
            let answer_rows = pos_walk.take_target(t)?;
            let non_rows = neg_walk.take_target(t)?;
            if answer_rows.is_empty() {
                continue;
            }
            let answers: Vec<(Vec<f64>, f64)> = answer_rows
                .iter()
                .map(|(m, x)| (masked(x), m.response_time))
                .collect();
            let non: Vec<Vec<f64>> = non_rows.iter().map(|(_, x)| masked(x)).collect();
            ts.push_timing_thread(answers, non, spilled.windows[t], spilled.num_users);
        }
    }
    let model = ResponsePredictor::train(&ts, &config.train);
    drop(ts);

    // --- evaluation ---
    let mut scores = Vec::with_capacity(test_pos.len() + test_neg.len());
    let mut labels = Vec::with_capacity(scores.capacity());
    for x in &test_pos_x {
        scores.push(model.predict_answer(&masked(x)));
        labels.push(true);
    }
    for x in &test_neg_x {
        scores.push(model.predict_answer(&masked(x)));
        labels.push(false);
    }
    let our_auc = auc(&scores, &labels);

    let vote_pred: Vec<f64> = test_pos_x
        .iter()
        .map(|x| model.predict_votes(&masked(x)))
        .collect();
    let vote_true: Vec<f64> = test_pos.iter().map(|&i| spilled.pos[i].votes).collect();
    let our_rmse_votes = rmse(&vote_pred, &vote_true);

    let time_pred: Vec<f64> = test_pos
        .iter()
        .zip(&test_pos_x)
        .map(|(&i, x)| {
            model.predict_response_time(&masked(x), spilled.windows[spilled.pos[i].target])
        })
        .collect();
    let time_true: Vec<f64> = test_pos
        .iter()
        .map(|&i| spilled.pos[i].response_time)
        .collect();
    let our_rmse_time = rmse(&time_pred, &time_true);

    // --- baselines ---
    let (auc_b, rmse_v_b, rmse_t_b) = if run_baselines {
        let pos_parts: Vec<(usize, usize, f64, f64)> = (0..spilled.pos.len())
            .filter(|&i| pos_folds[i] != test_fold)
            .map(|i| {
                let m = &spilled.pos[i];
                (m.user.index(), m.target, m.votes, m.response_time)
            })
            .collect();
        let neg_parts: Vec<(usize, usize)> = (0..spilled.neg.len())
            .filter(|&i| neg_folds[i] != test_fold)
            .map(|i| {
                let m = &spilled.neg[i];
                (m.user.index(), m.target)
            })
            .collect();
        let baselines = Baselines::train_from_parts(
            spilled.num_users,
            spilled.num_targets,
            spilled.dim,
            &pos_parts,
            &neg_parts,
            train_pos_raw,
            config.seed ^ 0xBA5E,
        );
        let mut scores_b = Vec::with_capacity(test_pos.len() + test_neg.len());
        for &i in &test_pos {
            scores_b.push(
                baselines.score_answer_at(spilled.pos[i].user.index(), spilled.pos[i].target),
            );
        }
        for &i in &test_neg {
            scores_b.push(
                baselines.score_answer_at(spilled.neg[i].user.index(), spilled.neg[i].target),
            );
        }
        let auc_b = auc(&scores_b, &labels);
        let votes_b: Vec<f64> = test_pos
            .iter()
            .map(|&i| {
                baselines.predict_votes_at(spilled.pos[i].user.index(), spilled.pos[i].target)
            })
            .collect();
        let times_b: Vec<f64> = test_pos_x
            .iter()
            .map(|x| baselines.predict_response_time_x(x))
            .collect();
        (
            auc_b,
            rmse(&votes_b, &vote_true),
            rmse(&times_b, &time_true),
        )
    } else {
        (0.0, 0.0, 0.0)
    };

    Ok(FoldOutcome {
        auc: our_auc,
        auc_baseline: auc_b,
        rmse_votes: our_rmse_votes,
        rmse_votes_baseline: rmse_v_b,
        rmse_time: our_rmse_time,
        rmse_time_baseline: rmse_t_b,
    })
}

/// Pulls one row file in target order: records spill in
/// non-decreasing target order, so each target's rows are one
/// contiguous run and a single forward pass can group them.
struct TargetWalk<'f> {
    stream: RowStream,
    folds: &'f [usize],
    test_fold: usize,
    row: usize,
    pending: Option<(RowMeta, Vec<f64>)>,
}

impl<'f> TargetWalk<'f> {
    fn new(stream: RowStream, folds: &'f [usize], test_fold: usize) -> Self {
        TargetWalk {
            stream,
            folds,
            test_fold,
            row: 0,
            pending: None,
        }
    }

    /// Consumes every row with target `t` (held-out rows included)
    /// and returns the *training* rows among them, in row order.
    /// Targets must be requested in increasing order.
    fn take_target(&mut self, t: usize) -> Result<Vec<(RowMeta, Vec<f64>)>, ColumnarError> {
        let mut out = Vec::new();
        loop {
            let (meta, x) = match self.pending.take() {
                Some(row) => row,
                None => match self.stream.next_row()? {
                    Some(row) => row,
                    None => return Ok(out),
                },
            };
            if meta.target > t {
                self.pending = Some((meta, x));
                return Ok(out);
            }
            if meta.target < t {
                return Err(ColumnarError::Malformed {
                    path: std::path::PathBuf::new(),
                    message: format!("row targets out of order: {} after group {t}", meta.target),
                });
            }
            if self.folds[self.row] != self.test_fold {
                out.push((meta, x));
            }
            self.row += 1;
        }
    }
}

/// Mean and standard deviation of a metric across fold outcomes.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::stratified_folds;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fold_run_produces_sane_metrics() {
        let cfg = EvalConfig::quick();
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let pos_groups: Vec<u32> = data.positives.iter().map(|p| p.user.0).collect();
        let pos_folds = stratified_folds(&pos_groups, cfg.folds, &mut rng);
        let neg_groups: Vec<u32> = data.negatives.iter().map(|p| p.user.0).collect();
        let neg_folds = stratified_folds(&neg_groups, cfg.folds, &mut rng);

        let out = run_fold(&data, &cfg, &pos_folds, &neg_folds, 0, None, true, None);
        assert!((0.0..=1.0).contains(&out.auc));
        assert!((0.0..=1.0).contains(&out.auc_baseline));
        assert!(out.rmse_votes > 0.0 && out.rmse_votes.is_finite());
        assert!(out.rmse_time > 0.0 && out.rmse_time.is_finite());
        // The whole point of the paper: features beat index-only
        // baselines on the answer task.
        assert!(out.auc > 0.6, "our AUC {}", out.auc);
    }

    #[test]
    fn masked_fold_runs_without_baselines() {
        let cfg = EvalConfig::quick();
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let pos_groups: Vec<u32> = data.positives.iter().map(|p| p.user.0).collect();
        let pos_folds = stratified_folds(&pos_groups, 3, &mut rng);
        let neg_groups: Vec<u32> = data.negatives.iter().map(|p| p.user.0).collect();
        let neg_folds = stratified_folds(&neg_groups, 3, &mut rng);
        let out = run_fold(
            &data,
            &cfg,
            &pos_folds,
            &neg_folds,
            1,
            Some(MaskSpec::Group(FeatureGroup::Social)),
            false,
            None,
        );
        assert_eq!(out.auc_baseline, 0.0);
        assert!(out.rmse_time.is_finite());
    }

    /// The streamed path's contract: identical fold maps in, a
    /// bitwise-identical outcome out — with baselines and with a
    /// feature mask.
    #[test]
    fn streamed_fold_is_bitwise_identical_to_resident() {
        let cfg = EvalConfig::quick();
        let (ds, _) = cfg.synth.generate().preprocess();
        let data = ExperimentData::build(&ds, &cfg);
        let dir =
            std::env::temp_dir().join(format!("forumcast-fold-streamed-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spilled = SpilledExperiment::spill(&data, &cfg, &dir).unwrap();

        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let pos_groups: Vec<u32> = data.positives.iter().map(|p| p.user.0).collect();
        let pos_folds = stratified_folds(&pos_groups, cfg.folds, &mut rng);
        let neg_groups: Vec<u32> = data.negatives.iter().map(|p| p.user.0).collect();
        let neg_folds = stratified_folds(&neg_groups, cfg.folds, &mut rng);

        for (mask, baselines) in [
            (None, true),
            (Some(MaskSpec::Group(FeatureGroup::Social)), false),
        ] {
            let resident = run_fold(
                &data, &cfg, &pos_folds, &neg_folds, 0, mask, baselines, None,
            );
            let streamed =
                run_fold_streamed(&spilled, &cfg, &pos_folds, &neg_folds, 0, mask, baselines)
                    .unwrap();
            let bits = |o: &FoldOutcome| {
                [
                    o.auc.to_bits(),
                    o.auc_baseline.to_bits(),
                    o.rmse_votes.to_bits(),
                    o.rmse_votes_baseline.to_bits(),
                    o.rmse_time.to_bits(),
                    o.rmse_time_baseline.to_bits(),
                ]
            };
            assert_eq!(bits(&resident), bits(&streamed), "mask {mask:?}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mean_std_known_values() {
        let (m, s) = mean_std(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(s, 1.0);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
