//! Observability integration tests over the real CV harness.
//!
//! The collector's determinism contract: the canonical event log —
//! `(path, unit, seq)`-ordered events with timings stripped — and the
//! counter table are identical for any worker-thread count, and
//! counters count *exactly* (one increment per logical occurrence,
//! retries included).

use std::sync::{Mutex, OnceLock};

use forumcast_eval::{run_cv, EvalConfig, ExperimentData};
use forumcast_resilience::FaultPlan;

/// Armed collectors and fault plans are process-global; serialize the
/// tests so one cannot pollute another's log.
static LOCK: Mutex<()> = Mutex::new(());

fn quick_config(threads: usize) -> EvalConfig {
    let mut cfg = EvalConfig::quick();
    cfg.folds = 2;
    cfg.repeats = 1;
    cfg.threads = threads;
    cfg
}

fn shared_data() -> &'static ExperimentData {
    static DATA: OnceLock<ExperimentData> = OnceLock::new();
    DATA.get_or_init(|| {
        let cfg = quick_config(1);
        let (ds, _) = cfg.synth.generate().preprocess();
        ExperimentData::build(&ds, &cfg)
    })
}

fn counter(log: &forumcast_obs::TraceLog, name: &str) -> u64 {
    log.counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

#[test]
fn canonical_event_log_is_thread_count_independent() {
    let _lock = LOCK.lock().unwrap();
    let data = shared_data();
    let mut logs = Vec::new();
    // 7 deliberately exceeds the 2 fold jobs: idle workers must not
    // perturb the canonical lines either.
    for threads in [1, 2, 7] {
        let cfg = quick_config(threads);
        let guard = forumcast_obs::arm();
        let _ = run_cv(data, &cfg, None, false);
        let log = forumcast_obs::drain().expect("collector armed");
        drop(guard);
        logs.push((threads, log.canonical_lines(), log.counters.clone()));
    }
    let (_, lines_1, counters_1) = &logs[0];
    for (threads, lines_n, counters_n) in &logs[1..] {
        assert_eq!(
            lines_1, lines_n,
            "event log diverged between 1 and {threads} threads"
        );
        assert_eq!(
            counters_1, counters_n,
            "counters diverged between 1 and {threads} threads"
        );
    }
    assert!(
        lines_1.iter().any(|l| l.contains("eval.run_cv")),
        "missing eval.run_cv span: {lines_1:?}"
    );
    assert!(
        lines_1.iter().any(|l| l.contains("eval.fold#0")),
        "missing eval.fold#0 span: {lines_1:?}"
    );
}

#[test]
fn fold_retry_and_fault_counters_are_exact() {
    let _lock = LOCK.lock().unwrap();
    let data = shared_data();
    let cfg = quick_config(1);

    // Fault-free: no retries, no fired faults, one span per fold.
    let clean = {
        let guard = forumcast_obs::arm();
        let _ = run_cv(data, &cfg, None, false);
        let log = forumcast_obs::drain().expect("collector armed");
        drop(guard);
        log
    };
    assert_eq!(counter(&clean, "retry.panics"), 0);
    assert_eq!(counter(&clean, "fault.fired.fold-panic"), 0);

    // One injected panic per fold job: each fires the fault counter
    // once and costs exactly one retry; the healed reruns add a
    // second eval.fold span occurrence (seq 1) per job.
    let faulted = {
        let _faults = FaultPlan::parse("fold-panic:0,fold-panic:1").unwrap().arm();
        let guard = forumcast_obs::arm();
        let _ = run_cv(data, &cfg, None, false);
        let log = forumcast_obs::drain().expect("collector armed");
        drop(guard);
        log
    };
    assert_eq!(counter(&faulted, "retry.panics"), 2);
    assert_eq!(counter(&faulted, "fault.fired.fold-panic"), 2);

    // The fold span wraps the whole retry ladder, so each job still
    // records exactly one eval.fold span; the per-attempt evidence is
    // the retry.panic mark nested under it.
    let count_events = |log: &forumcast_obs::TraceLog, path: &str, spans_only: bool| {
        log.events
            .iter()
            .filter(|e| {
                e.path == path
                    && (!spans_only || matches!(e.kind, forumcast_obs::EventKind::Span { .. }))
            })
            .count()
    };
    for unit in [0, 1] {
        let fold = format!("eval.fold#{unit}");
        assert_eq!(
            count_events(&clean, &fold, true),
            1,
            "clean run, fold {unit}"
        );
        assert_eq!(
            count_events(&faulted, &fold, true),
            1,
            "faulted run, fold {unit}"
        );
        let mark = format!("eval.fold#{unit}/retry.panic");
        assert_eq!(
            count_events(&clean, &mark, false),
            0,
            "clean run, fold {unit}"
        );
        assert_eq!(
            count_events(&faulted, &mark, false),
            1,
            "faulted run, fold {unit}"
        );
    }
}
