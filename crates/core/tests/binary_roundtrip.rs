//! The on-disk binary checkpoint path must be lossless for training
//! progress: every `TrainProgress` snapshot emitted mid-training has
//! to survive the store codec bitwise, and resuming from a snapshot
//! that went through the codec must reproduce the uninterrupted run
//! exactly.

use serde::{Deserialize, Serialize};

use forumcast_core::{ResponsePredictor, TrainConfig, TrainProgress, TrainingSet, VoteConfig};
use forumcast_store::{decode_value, encode_value};

/// A 2-feature world, mirroring the unit-test fixture: feature 0
/// drives answering & speed, feature 1 drives votes.
fn training_set() -> TrainingSet {
    let mut ts = TrainingSet::new(2);
    for i in 0..60 {
        let active = i % 2 == 0;
        let skilled = i % 3 == 0;
        let x = vec![
            if active { 500.0 } else { 100.0 },
            if skilled { 80.0 } else { 20.0 },
        ];
        ts.push_answer(x.clone(), active);
        ts.push_vote(x.clone(), if skilled { 5.0 } else { 0.0 });
        if active {
            ts.push_timing_thread(
                vec![(x, 2.0 + (i % 4) as f64)],
                vec![vec![100.0, 20.0]],
                100.0,
                30,
            );
        }
    }
    ts
}

fn config() -> TrainConfig {
    TrainConfig {
        votes: VoteConfig {
            epochs: 40,
            ..VoteConfig::fast()
        },
        ..TrainConfig::fast()
    }
}

fn model_bits(m: &ResponsePredictor) -> Vec<u64> {
    let (a, v, _) = m.parts();
    a.coefficients()
        .iter()
        .chain(v.network().params().iter())
        .map(|w| w.to_bits())
        .collect()
}

#[test]
fn every_train_progress_snapshot_roundtrips_bitwise_through_the_codec() {
    let ts = training_set();
    let cfg = config();
    let reference = ResponsePredictor::train(&ts, &cfg);

    let mut snapshots = Vec::new();
    let snapshotted =
        ResponsePredictor::train_resumable(&ts, &cfg, None, 7, &mut |p| snapshots.push(p.clone()));
    assert_eq!(model_bits(&reference), model_bits(&snapshotted));
    assert!(snapshots.iter().any(|p| p.answer_state.is_some()));
    assert!(snapshots.iter().any(|p| p.votes_state.is_some()));

    for (i, snap) in snapshots.iter().enumerate() {
        // Round-trip through the binary codec, as the on-disk binary
        // checkpoint does.
        let bytes = encode_value(&snap.to_value());
        let value =
            decode_value(&bytes).unwrap_or_else(|e| panic!("snapshot {i} failed to decode: {e}"));
        let back = TrainProgress::from_value(&value)
            .unwrap_or_else(|e| panic!("snapshot {i} failed validation: {e}"));

        // Canonical encoding: the decoded snapshot re-encodes to the
        // exact same bytes, so no field drifted in transit.
        assert_eq!(
            encode_value(&back.to_value()),
            bytes,
            "snapshot {i} is not bitwise stable through the codec"
        );

        // And resuming from the round-tripped snapshot reproduces the
        // uninterrupted run down to the last bit.
        let resumed = ResponsePredictor::train_resumable(&ts, &cfg, Some(&back), 0, &mut |_| {});
        assert_eq!(
            model_bits(&reference),
            model_bits(&resumed),
            "resume from codec-roundtripped snapshot {i}"
        );
    }
}

#[test]
fn binary_progress_is_smaller_than_json() {
    let ts = training_set();
    let cfg = config();
    let mut last = None;
    ResponsePredictor::train_resumable(&ts, &cfg, None, 7, &mut |p| last = Some(p.clone()));
    let progress = last.expect("at least one snapshot");
    let binary = encode_value(&progress.to_value());
    let json = serde_json::to_string(&progress).unwrap();
    assert!(
        binary.len() < json.len(),
        "binary ({}) should undercut JSON ({})",
        binary.len(),
        json.len()
    );
}
