//! Online forum state for the serving layer (ROADMAP item 1).
//!
//! The offline pipeline trains on a frozen [`Dataset`]; a deployed
//! predictor instead watches the forum *happen* — questions, answers,
//! and votes arriving as a [`ForumEvent`] stream, typically replayed
//! from (or tailed off) the durable WAL. [`OnlineState`] is that
//! consumer: a thin, crash-tolerant wrapper over the idempotent
//! [`Ingestor`] that keeps a live [`ForumState`] plus the two views
//! the predictors need — the open-question candidate set, and a
//! point-in-time [`Dataset`] snapshot for (re)training.
//!
//! Delivery hazards (duplicates after a producer crash-resume,
//! bounded reordering, poison events) are absorbed by the ingestor's
//! replay discipline and surfaced in its [`ReplayReport`]; the state
//! hash is a pure function of the id-ordered stream, so a restarted
//! consumer that replays the WAL lands on the identical state.

use forumcast_data::{Dataset, ForumEvent, ForumState, Ingestor, ReplayReport};

/// Live event-sourced forum state: offer events as they arrive, read
/// predictions-relevant views at any point.
#[derive(Debug, Default)]
pub struct OnlineState {
    ingestor: Ingestor,
}

impl OnlineState {
    /// Empty forum, cursor at event id 0.
    pub fn new() -> Self {
        OnlineState::default()
    }

    /// Offers one event. Duplicate ids are skipped, out-of-order ids
    /// buffered, invalid events quarantined — never a panic or error.
    pub fn offer(&mut self, id: u64, event: ForumEvent) {
        self.ingestor.offer_event(id, event);
    }

    /// Offers a raw WAL frame (id as the WAL parsed it, payload
    /// bytes).
    pub fn offer_frame(&mut self, id: Option<u64>, payload: &[u8]) {
        self.ingestor.offer_frame(id, payload);
    }

    /// Flushes any buffered out-of-order events (conceding missing
    /// ids as gaps) and returns the delivery tally. Call at stream
    /// end or before taking a consistent snapshot.
    pub fn finish(&mut self) -> &ReplayReport {
        self.ingestor.finish()
    }

    /// The live forum state.
    pub fn state(&self) -> &ForumState {
        self.ingestor.state()
    }

    /// The delivery tally so far.
    pub fn report(&self) -> &ReplayReport {
        self.ingestor.report()
    }

    /// Replay-equivalence fingerprint of the current state.
    pub fn hash(&self) -> u64 {
        self.ingestor.state().hash()
    }

    /// Question ids still awaiting a first answer — the candidate
    /// set for response-time prediction.
    pub fn open_questions(&self) -> Vec<u32> {
        self.ingestor.state().open_questions()
    }

    /// A point-in-time [`Dataset`] snapshot of the forum, suitable
    /// for feature extraction and (re)training.
    pub fn snapshot(&self) -> Dataset {
        self.ingestor.state().to_dataset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn question(q: u32, ts: f64) -> ForumEvent {
        ForumEvent::NewQuestion {
            question: q,
            author: q,
            timestamp: ts,
            text: format!("question {q}"),
            code: String::new(),
        }
    }

    fn answer(q: u32, author: u32, ts: f64) -> ForumEvent {
        ForumEvent::NewAnswer {
            question: q,
            author,
            timestamp: ts,
            text: "an answer".into(),
            code: String::new(),
        }
    }

    #[test]
    fn open_questions_shrink_as_answers_arrive() {
        let mut s = OnlineState::new();
        s.offer(0, question(0, 1.0));
        s.offer(1, question(1, 2.0));
        assert_eq!(s.open_questions(), vec![0, 1]);
        s.offer(2, answer(0, 5, 3.0));
        assert_eq!(s.open_questions(), vec![1]);
        let snapshot = s.snapshot();
        assert_eq!(snapshot.num_questions(), 2);
        assert_eq!(snapshot.num_answers(), 1);
    }

    #[test]
    fn restart_replay_reaches_the_same_hash() {
        let events = [question(0, 1.0), question(1, 2.0), answer(0, 5, 3.0)];
        let mut live = OnlineState::new();
        for (i, ev) in events.iter().enumerate() {
            live.offer(i as u64, ev.clone());
        }
        live.finish();

        // A restarted consumer re-reads the whole log, including a
        // duplicated suffix from the producer's crash-resume.
        let mut restarted = OnlineState::new();
        for (i, ev) in events.iter().enumerate() {
            restarted.offer(i as u64, ev.clone());
        }
        restarted.offer(2, answer(0, 5, 3.0));
        restarted.finish();
        assert_eq!(restarted.hash(), live.hash());
        assert_eq!(restarted.report().dup_skipped, 1);
    }

    #[test]
    fn poison_is_absorbed_not_fatal() {
        let mut s = OnlineState::new();
        s.offer(0, question(0, 1.0));
        s.offer(1, answer(42, 1, 2.0)); // unknown question
        s.offer_frame(Some(2), b"not an event");
        s.finish();
        assert_eq!(s.report().poison_total(), 2);
        assert_eq!(s.state().num_threads(), 1);
    }
}
