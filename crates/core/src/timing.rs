//! The `r̂_{u,q}` predictor: a point-process model of response time.
//!
//! The rate of user `u` answering question `q` at time `t` is
//! `λ_{u,q}(t) = μ_{u,q} e^{−ω_{u,q}(t − t(p_{q0}))}` (Section II-A3)
//! with `μ_{u,q} = f_Θ(x_{u,q})` a neural network and
//! `ω_{u,q} = g_Θ(x_{u,q})` either a second network or a constant
//! (the paper found a constant decay best on its dataset).
//!
//! Training maximizes the thread log-likelihood
//!
//! ```text
//! L_q = Σ_{n>0} ln μ(x_{u(p_qn),q}) − Σ_{n>0} ω(x)·(t_n − t_0)
//!       − Σ_{u∈U} μ(x_{u,q}) · (1 − e^{−ω(x)(T − t_0)}) / ω(x)
//! ```
//!
//! The survival sum over *all* users is intractable to materialize
//! (every user × every question), so each [`ThreadObservation`]
//! carries the thread's answerers plus a sample of non-answerers
//! whose survival contribution is importance-weighted up to the full
//! population — the standard estimator for sampled point-process
//! likelihoods. Gradients flow through [`forumcast_ml::Mlp::backward`]
//! exactly as TensorFlow's autodiff does for the paper's authors.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use forumcast_ml::{Activation, Adam, LayerSpec, Mlp, MlpScratch, Optimizer};

/// Lower clamp for the excitation μ inside logs and divisions.
const MU_FLOOR: f64 = 1e-8;
/// Lower clamp for the decay rate ω.
const OMEGA_FLOOR: f64 = 1e-4;

/// How the decay rate `ω_{u,q}` is modeled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DecayMode {
    /// A fixed constant for all pairs — the paper's final choice
    /// ("neural networks for the decay rate did not yield benefit
    /// over a constant value on this dataset").
    Constant(f64),
    /// A second neural network `g_Θ(x)` with the given hidden sizes;
    /// "significantly different from [Farajtabar et al.] where ω is
    /// set to a constant value" — the paper's generalization.
    Learned {
        /// Hidden-layer widths of `g`.
        hidden: Vec<usize>,
    },
}

/// How point predictions are derived from the fitted rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictionMode {
    /// The paper's formula (Section II-A3):
    /// `r̂ = μ/ω² (1 − e^{−ωΔ}(1 + ωΔ))`, the unnormalized first
    /// moment `∫ τ λ(τ) dτ` of the rate over the window.
    PaperExpectation,
    /// The conditional expectation `E[t − t₀ | answered within Δ]` —
    /// the paper formula normalized by the window mass
    /// `Λ(Δ) = μ(1 − e^{−ωΔ})/ω`. Requires a learned ω to vary
    /// across pairs; provided as a principled alternative. Like the
    /// paper's formula it treats events as rare (`Λ ≪ 1`).
    Conditional,
    /// The exact first-event expectation
    /// `E[t | event ≤ Δ] = ∫ t λ(t) e^{−Λ(t)} dt / (1 − e^{−Λ(Δ)})`,
    /// computed by Simpson integration. Unlike
    /// [`Conditional`](PredictionMode::Conditional) it accounts for
    /// the survival factor, which matters whenever the window hazard
    /// `Λ(Δ)` is not small — the regime of real forum threads.
    FirstEvent,
}

/// Everything the likelihood needs from one question thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadObservation {
    /// `(x_{u,q}, r_{u,q})` for each answering user.
    pub answers: Vec<(Vec<f64>, f64)>,
    /// Feature vectors of sampled non-answering users.
    pub non_answerers: Vec<Vec<f64>>,
    /// Observation window `Δ = T − t(p_{q0})` in hours.
    pub window: f64,
    /// Total population size `|U|` the sample represents.
    pub population: usize,
}

impl ThreadObservation {
    /// Importance weight applied to each sampled non-answerer's
    /// survival term so the sample represents the whole population:
    /// `(|U| − 1 − #answers) / #samples` (the asker and the answerers
    /// are excluded from the surviving population).
    ///
    /// Two edge cases degrade to a weight of `0.0` rather than
    /// producing a NaN or a negative weight:
    ///
    /// - **Empty sample** (`non_answerers` empty): there is no term to
    ///   weight, so the thread contributes only its answer terms to
    ///   the likelihood. The survival sum is silently dropped — the
    ///   estimator is biased for such threads, which is why
    ///   [`TimingPredictor::train`] debug-asserts population
    ///   consistency instead of asserting non-emptiness here.
    /// - **Saturated population** (`population < 1 + answers.len()`):
    ///   the declared population is too small to contain the asker
    ///   plus every answerer, so the "remaining users" count
    ///   saturates at zero. This indicates an inconsistent
    ///   observation; the weight collapses to `0.0` and any sampled
    ///   non-answerers contribute nothing.
    pub fn survival_weight(&self) -> f64 {
        if self.non_answerers.is_empty() {
            return 0.0;
        }
        let remaining = self.population.saturating_sub(1 + self.answers.len()) as f64;
        remaining / self.non_answerers.len() as f64
    }
}

/// Training configuration for [`TimingPredictor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Hidden widths of the excitation network `f` (paper: 100, 50).
    pub hidden: Vec<usize>,
    /// Hidden nonlinearity (paper: tanh).
    pub activation: Activation,
    /// Output nonlinearity of `f`. The paper uses ReLU; the default
    /// here is the smooth positive surrogate `Softplus`, which avoids
    /// dead zero-rate outputs inside `ln μ`.
    pub output_activation: Activation,
    /// Decay-rate model.
    pub decay: DecayMode,
    /// Prediction formula.
    pub prediction: PredictionMode,
    /// Training epochs (each epoch visits every thread once).
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Calibrate point predictions after likelihood training by
    /// isotonic regression (PAVA) from raw model expectations to
    /// observed delays on the training answers. The likelihood is a
    /// density objective, not a squared-error one; the monotone
    /// recalibration converts the model's (good) *ranking* of pairs
    /// into (good) *point estimates* without touching the fitted
    /// rate functions.
    pub calibrate: bool,
    /// Cap on the importance weight of each sampled non-answerer's
    /// survival term. The unbiased weight is
    /// `(|U| − 1 − #answers) / #samples`, which reaches the thousands
    /// when few non-answerers are sampled and makes single samples
    /// dominate a thread's gradient; clamping trades a little bias in
    /// the μ scale (which the conditional prediction does not use)
    /// for much lower gradient variance.
    pub max_survival_weight: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TimingConfig {
    /// The paper's architecture with a learned decay network, which
    /// lets the conditional prediction vary per pair.
    fn default() -> Self {
        TimingConfig {
            hidden: vec![100, 50],
            activation: Activation::Tanh,
            output_activation: Activation::Softplus,
            decay: DecayMode::Learned {
                hidden: vec![64, 32],
            },
            prediction: PredictionMode::FirstEvent,
            epochs: 200,
            learning_rate: 0.01,
            calibrate: true,
            max_survival_weight: 25.0,
            seed: 0x717E,
        }
    }
}

impl TimingConfig {
    /// Faster settings for tests.
    pub fn fast() -> Self {
        TimingConfig {
            hidden: vec![32, 16],
            epochs: 40,
            ..TimingConfig::default()
        }
    }

    /// The paper's constant-decay variant (`ω = c` for all pairs,
    /// paper expectation formula).
    pub fn constant_decay(c: f64) -> Self {
        TimingConfig {
            decay: DecayMode::Constant(c),
            prediction: PredictionMode::PaperExpectation,
            ..TimingConfig::default()
        }
    }
}

/// The fitted point-process response-time model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingPredictor {
    excitation: Mlp,
    decay_net: Option<Mlp>,
    constant_decay: f64,
    prediction: PredictionMode,
    max_survival_weight: f64,
    calibration: Option<IsotonicMap>,
}

impl TimingPredictor {
    /// Trains the model on thread observations.
    ///
    /// # Panics
    ///
    /// Panics when `threads` contains no answers at all, or when
    /// feature dimensions are inconsistent.
    pub fn train(threads: &[ThreadObservation], config: &TimingConfig) -> Self {
        let _span = forumcast_obs::span("ml.timing.train");
        let dim = threads
            .iter()
            .flat_map(|t| t.answers.first().map(|(x, _)| x.len()))
            .next()
            .expect("at least one answered thread required");
        // A population smaller than the asker plus the answerers means
        // the observation is internally inconsistent; survival_weight
        // would silently saturate to 0.0 and drop the thread's entire
        // survival sum from the likelihood. Catch it loudly in debug
        // builds. (Empty `non_answerers` with a consistent population
        // is allowed — it just omits the sampled survival terms.)
        for (i, t) in threads.iter().enumerate() {
            debug_assert!(
                t.population > t.answers.len(),
                "thread {i}: population {} cannot hold the asker plus {} answerers; \
                 its survival weight saturates to 0.0",
                t.population,
                t.answers.len(),
            );
        }
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut f_specs = Vec::new();
        let mut prev = dim;
        for &h in &config.hidden {
            f_specs.push(LayerSpec::new(prev, h, config.activation));
            prev = h;
        }
        f_specs.push(LayerSpec::new(prev, 1, config.output_activation));
        let mut excitation = Mlp::new(&f_specs, &mut rng);

        let (mut decay_net, constant_decay) = match &config.decay {
            DecayMode::Constant(c) => {
                assert!(*c > 0.0, "constant decay must be positive");
                (None, *c)
            }
            DecayMode::Learned { hidden } => {
                let mut g_specs = Vec::new();
                let mut prev = dim;
                for &h in hidden {
                    g_specs.push(LayerSpec::new(prev, h, config.activation));
                    prev = h;
                }
                g_specs.push(LayerSpec::new(prev, 1, Activation::Softplus));
                (Some(Mlp::new(&g_specs, &mut rng)), 0.0)
            }
        };

        let mut opt_f = Adam::new(config.learning_rate);
        let mut opt_g = Adam::new(config.learning_rate);
        let mut order: Vec<usize> = (0..threads.len()).collect();
        let mut grads_f = vec![0.0; excitation.num_params()];
        let mut grads_g = decay_net
            .as_ref()
            .map(|g| vec![0.0; g.num_params()])
            .unwrap_or_default();
        // One scratch per network, reused across every observation and
        // epoch — the hot loop performs no allocations.
        let mut scratch_f = MlpScratch::new();
        let mut scratch_g = MlpScratch::new();

        for _epoch in 0..config.epochs {
            order.shuffle(&mut rng);
            for &ti in &order {
                let t = &threads[ti];
                if t.answers.is_empty() {
                    continue;
                }
                grads_f.iter_mut().for_each(|v| *v = 0.0);
                grads_g.iter_mut().for_each(|v| *v = 0.0);
                accumulate_thread_grads(
                    t,
                    &excitation,
                    decay_net.as_ref(),
                    constant_decay,
                    config.max_survival_weight,
                    &mut scratch_f,
                    &mut scratch_g,
                    &mut grads_f,
                    &mut grads_g,
                );
                opt_f.step(excitation.params_mut(), &grads_f);
                if let Some(g) = decay_net.as_mut() {
                    opt_g.step(g.params_mut(), &grads_g);
                }
            }
        }

        let mut model = TimingPredictor {
            excitation,
            decay_net,
            constant_decay,
            prediction: config.prediction,
            max_survival_weight: config.max_survival_weight,
            calibration: None,
        };
        if config.calibrate {
            let mut raw = Vec::new();
            let mut observed = Vec::new();
            for t in threads {
                for (x, r) in &t.answers {
                    raw.push(model.predict(x, t.window));
                    observed.push(*r);
                }
            }
            model.calibration = IsotonicMap::fit(&raw, &observed);
        }
        model
    }

    /// The fitted rate parameters `(μ, ω)` for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics when `x` has the wrong dimension.
    pub fn rate(&self, x: &[f64]) -> (f64, f64) {
        let mu = self.excitation.forward(x)[0].max(MU_FLOOR);
        let omega = match &self.decay_net {
            Some(g) => g.forward(x)[0].max(OMEGA_FLOOR),
            None => self.constant_decay,
        };
        (mu, omega)
    }

    /// Predicted response time `r̂_{u,q}` (hours) for a pair whose
    /// question has an observation window of `window` hours,
    /// according to the configured [`PredictionMode`].
    pub fn predict(&self, x: &[f64], window: f64) -> f64 {
        let raw = self.predict_raw(x, window);
        match &self.calibration {
            Some(map) => map.apply(raw),
            None => raw,
        }
    }

    /// The uncalibrated model expectation under the configured
    /// [`PredictionMode`].
    pub fn predict_raw(&self, x: &[f64], window: f64) -> f64 {
        let (mu, omega) = self.rate(x);
        match self.prediction {
            PredictionMode::PaperExpectation => paper_expectation(mu, omega, window),
            PredictionMode::Conditional => conditional_expectation(omega, window),
            PredictionMode::FirstEvent => first_event_expectation(mu, omega, window),
        }
    }

    /// Total log-likelihood `Σ_q L_q` of a set of observations under
    /// the fitted model.
    pub fn log_likelihood(&self, threads: &[ThreadObservation]) -> f64 {
        let mut ll = 0.0;
        for t in threads {
            let w = t.survival_weight().min(self.max_survival_weight);
            for (x, r) in &t.answers {
                let (mu, omega) = self.rate(x);
                ll += mu.ln() - omega * r;
                ll -= survival(mu, omega, t.window);
            }
            for x in &t.non_answerers {
                let (mu, omega) = self.rate(x);
                ll -= w * survival(mu, omega, t.window);
            }
        }
        ll
    }

    /// The configured prediction mode.
    pub fn prediction_mode(&self) -> PredictionMode {
        self.prediction
    }

    /// Overrides the prediction mode (e.g. to compare the formulas
    /// with one fitted model). Any isotonic calibration is discarded:
    /// it was fitted to the previous mode's raw scale.
    pub fn set_prediction_mode(&mut self, mode: PredictionMode) {
        self.prediction = mode;
        self.calibration = None;
    }
}

/// A monotone non-decreasing map fitted by the pool-adjacent-violators
/// algorithm (isotonic regression), evaluated with linear
/// interpolation between knots and clamping outside them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct IsotonicMap {
    /// Knot inputs (strictly increasing).
    xs: Vec<f64>,
    /// Knot outputs (non-decreasing).
    ys: Vec<f64>,
}

impl IsotonicMap {
    /// Fits isotonic regression of `targets` on `scores`. Returns
    /// `None` when fewer than 2 distinct scores exist (no map to fit).
    fn fit(scores: &[f64], targets: &[f64]) -> Option<IsotonicMap> {
        debug_assert_eq!(scores.len(), targets.len());
        if scores.len() < 2 {
            return None;
        }
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
        // PAVA over blocks: (mean, weight, min_x, max_x).
        let mut blocks: Vec<(f64, f64, f64)> = Vec::with_capacity(scores.len());
        for &i in &order {
            blocks.push((targets[i], 1.0, scores[i]));
            while blocks.len() >= 2 {
                let n = blocks.len();
                if blocks[n - 2].0 <= blocks[n - 1].0 {
                    break;
                }
                let (m2, w2, _) = blocks.pop().expect("non-empty");
                let (m1, w1, x1) = blocks.pop().expect("non-empty");
                blocks.push(((m1 * w1 + m2 * w2) / (w1 + w2), w1 + w2, x1));
            }
        }
        // One knot per block at the block's first score; blocks that
        // share a score (tied inputs) are merged by weighted mean.
        let mut xs: Vec<f64> = Vec::with_capacity(blocks.len());
        let mut ys = Vec::with_capacity(blocks.len());
        let mut ws = Vec::with_capacity(blocks.len());
        for (m, w, x) in blocks {
            if xs.last().is_some_and(|&last| x <= last) {
                let i = xs.len() - 1;
                let total = ws[i] + w;
                ys[i] = (ys[i] * ws[i] + m * w) / total;
                ws[i] = total;
            } else {
                xs.push(x);
                ys.push(m);
                ws.push(w);
            }
        }
        if xs.is_empty() {
            return None;
        }
        // A single knot means the score was useless (fully pooled,
        // e.g. anti-correlated): the map degrades gracefully to the
        // training-mean predictor.
        Some(IsotonicMap { xs, ys })
    }

    /// Evaluates the map with interpolation and boundary clamping.
    fn apply(&self, x: f64) -> f64 {
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= *self.xs.last().expect("non-empty") {
            return *self.ys.last().expect("non-empty");
        }
        let i = self.xs.partition_point(|&k| k <= x);
        let (x0, x1) = (self.xs[i - 1], self.xs[i]);
        let (y0, y1) = (self.ys[i - 1], self.ys[i]);
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }
}

/// `Λ(Δ)`-style survival term `μ (1 − e^{−ωΔ}) / ω`.
fn survival(mu: f64, omega: f64, window: f64) -> f64 {
    mu * (1.0 - (-omega * window).exp()) / omega
}

/// The paper's expectation `μ/ω² (1 − e^{−ωΔ}(1 + ωΔ))`.
fn paper_expectation(mu: f64, omega: f64, window: f64) -> f64 {
    let x = omega * window;
    mu / (omega * omega) * (1.0 - (-x).exp() * (1.0 + x))
}

/// `E[t − t₀ | event within Δ] = (1/ω)·(1 − e^{−x}(1+x))/(1 − e^{−x})`
/// with `x = ωΔ`; series fallback `Δ/2 · (1 − x/6)` for tiny `x`.
fn conditional_expectation(omega: f64, window: f64) -> f64 {
    let x = omega * window;
    if x < 1e-4 {
        // Below this the exact form loses ~half its digits to
        // cancellation; the series is accurate to O(x²).
        return window / 2.0 * (1.0 - x / 6.0);
    }
    let ex = (-x).exp();
    (1.0 - ex * (1.0 + x)) / (omega * (1.0 - ex))
}

/// Exact conditional first-event time
/// `∫₀^Δ t λ(t) e^{−Λ(t)} dt / (1 − e^{−Λ(Δ)})` by composite Simpson
/// integration (129 nodes — the integrand is smooth).
fn first_event_expectation(mu: f64, omega: f64, window: f64) -> f64 {
    let h_of = |t: f64| mu * (1.0 - (-omega * t).exp()) / omega;
    let mass = 1.0 - (-h_of(window)).exp();
    if mass < 1e-12 {
        // Vanishing in-window probability: hazard is flat, fall back
        // to the rare-event conditional.
        return conditional_expectation(omega, window);
    }
    let n = 128; // even
    let step = window / n as f64;
    let integrand = |t: f64| t * mu * (-omega * t).exp() * (-h_of(t)).exp();
    let mut sum = integrand(0.0) + integrand(window);
    for i in 1..n {
        let t = i as f64 * step;
        sum += integrand(t) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    (sum * step / 3.0) / mass
}

/// Accumulates ∂(−L_q)/∂Θ for one thread into `grads_f` / `grads_g`,
/// running every forward/backward pass through the caller's pooled
/// scratches (no per-observation allocation).
#[allow(clippy::too_many_arguments)] // the two nets each carry grads plus scratch
fn accumulate_thread_grads(
    t: &ThreadObservation,
    f: &Mlp,
    g: Option<&Mlp>,
    constant_decay: f64,
    max_survival_weight: f64,
    scratch_f: &mut MlpScratch,
    scratch_g: &mut MlpScratch,
    grads_f: &mut [f64],
    grads_g: &mut [f64],
) {
    let w_non = t.survival_weight().min(max_survival_weight);
    let window = t.window;

    let mut handle = |x: &Vec<f64>, event: Option<f64>, weight: f64| {
        let mu_raw = f.forward_scratch(x, scratch_f)[0];
        let mu = mu_raw.max(MU_FLOOR);
        let (omega, omega_raw) = match g {
            Some(gn) => {
                let raw = gn.forward_scratch(x, scratch_g)[0];
                (raw.max(OMEGA_FLOOR), Some(raw))
            }
            None => (constant_decay, None),
        };
        let exd = (-omega * window).exp();
        // Survival term S = μ(1 − e^{−ωΔ})/ω appears for every user.
        let ds_dmu = (1.0 - exd) / omega;
        let ds_domega = mu * (window * exd / omega - (1.0 - exd) / (omega * omega));
        // Gradient of L (to be maximized).
        let mut dl_dmu = -weight * ds_dmu;
        let mut dl_domega = -weight * ds_domega;
        if let Some(r) = event {
            dl_dmu += 1.0 / mu;
            dl_domega -= r;
        }
        // Clamped region passes no gradient.
        if mu_raw < MU_FLOOR {
            dl_dmu = 0.0;
        }
        // Minimize −L → upstream gradient is −dL.
        f.backward_scratch(scratch_f, &[-dl_dmu], grads_f);
        if let (Some(gn), Some(raw)) = (g, omega_raw) {
            if raw >= OMEGA_FLOOR {
                gn.backward_scratch(scratch_g, &[-dl_domega], grads_g);
            }
        }
    };

    for (x, r) in &t.answers {
        handle(x, Some(*r), 1.0);
    }
    for x in &t.non_answerers {
        handle(x, None, w_non);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two user archetypes: "fast" users (feature +1) answer quickly,
    /// "slow" users (feature −1) answer late; non-answerers have
    /// feature −1 mostly.
    fn synthetic_threads(n: usize) -> Vec<ThreadObservation> {
        (0..n)
            .map(|i| {
                let fast = i % 2 == 0;
                let delay = if fast {
                    1.0 + (i % 3) as f64 * 0.3
                } else {
                    20.0 + (i % 5) as f64
                };
                ThreadObservation {
                    answers: vec![(vec![if fast { 1.0 } else { -1.0 }, 0.2], delay)],
                    non_answerers: vec![vec![-1.0, -0.5], vec![-0.8, 0.1]],
                    window: 100.0,
                    population: 50,
                }
            })
            .collect()
    }

    #[test]
    fn training_improves_log_likelihood() {
        let threads = synthetic_threads(60);
        let untrained = TimingPredictor::train(
            &threads,
            &TimingConfig {
                epochs: 0,
                ..TimingConfig::fast()
            },
        );
        let trained = TimingPredictor::train(&threads, &TimingConfig::fast());
        assert!(
            trained.log_likelihood(&threads) > untrained.log_likelihood(&threads),
            "likelihood should improve with training"
        );
    }

    #[test]
    fn fast_users_get_lower_predictions() {
        let threads = synthetic_threads(80);
        let model = TimingPredictor::train(&threads, &TimingConfig::fast());
        let fast = model.predict(&[1.0, 0.2], 100.0);
        let slow = model.predict(&[-1.0, 0.2], 100.0);
        assert!(fast < slow, "fast archetype {fast} should beat slow {slow}");
    }

    #[test]
    fn answerers_have_higher_excitation_than_non_answerers() {
        let threads = synthetic_threads(80);
        let model = TimingPredictor::train(&threads, &TimingConfig::fast());
        let (mu_ans, _) = model.rate(&[1.0, 0.2]);
        let (mu_non, _) = model.rate(&[-1.0, -0.5]);
        assert!(mu_ans > mu_non, "μ answerer {mu_ans} vs non {mu_non}");
    }

    #[test]
    fn constant_decay_mode_uses_fixed_omega() {
        let threads = synthetic_threads(20);
        let cfg = TimingConfig {
            epochs: 5,
            ..TimingConfig::constant_decay(0.25)
        };
        let model = TimingPredictor::train(&threads, &cfg);
        let (_, omega) = model.rate(&[1.0, 0.2]);
        assert_eq!(omega, 0.25);
        let (_, omega2) = model.rate(&[-1.0, -0.5]);
        assert_eq!(omega2, 0.25);
    }

    #[test]
    fn paper_expectation_formula_matches_closed_form() {
        // μ = 2, ω = 0.5, Δ = 10: r̂ = 2/0.25 · (1 − e^{−5}·6).
        let expected = 8.0 * (1.0 - (-5.0f64).exp() * 6.0);
        assert!((paper_expectation(2.0, 0.5, 10.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn conditional_expectation_is_within_window() {
        for &(omega, window) in &[(0.01, 100.0), (0.5, 10.0), (5.0, 2.0), (1e-9, 50.0)] {
            let e = conditional_expectation(omega, window);
            assert!(e > 0.0 && e < window, "ω={omega} Δ={window} → {e}");
        }
    }

    #[test]
    fn conditional_expectation_series_matches_exact_at_boundary() {
        // Just above and below the series cutoff should agree to a
        // relative tolerance dominated by the exact form's
        // cancellation error.
        let a = conditional_expectation(1.0001e-4 / 50.0, 50.0);
        let b = conditional_expectation(0.9999e-4 / 50.0, 50.0);
        assert!((a - b).abs() / a.abs() < 1e-5, "{a} vs {b}");
    }

    #[test]
    fn conditional_decreases_with_faster_decay() {
        assert!(
            conditional_expectation(1.0, 24.0) < conditional_expectation(0.01, 24.0),
            "higher ω concentrates mass earlier"
        );
    }

    #[test]
    fn survival_weight_scales_to_population() {
        let t = ThreadObservation {
            answers: vec![(vec![0.0], 1.0)],
            non_answerers: vec![vec![0.0]; 4],
            window: 10.0,
            population: 100,
        };
        // (100 − 1 − 1) / 4 = 24.5.
        assert!((t.survival_weight() - 24.5).abs() < 1e-12);
        let empty = ThreadObservation {
            non_answerers: vec![],
            ..t
        };
        assert_eq!(empty.survival_weight(), 0.0);
    }

    #[test]
    fn survival_weight_empty_sample_is_zero_not_nan() {
        // No sampled non-answerers: the weight must be exactly 0.0
        // (not 98/0 = inf or 0/0 = NaN) so the likelihood simply
        // omits the sampled survival terms.
        let t = ThreadObservation {
            answers: vec![(vec![0.0], 1.0)],
            non_answerers: vec![],
            window: 10.0,
            population: 100,
        };
        let w = t.survival_weight();
        assert_eq!(w, 0.0);
        assert!(!w.is_nan());
    }

    #[test]
    fn survival_weight_saturates_for_undersized_population() {
        // population < 1 + answers.len(): "remaining users" saturates
        // at zero instead of wrapping, so the weight is 0.0 rather
        // than a huge positive value from an underflowed subtraction.
        let t = ThreadObservation {
            answers: vec![(vec![0.0], 1.0), (vec![0.1], 2.0), (vec![0.2], 3.0)],
            non_answerers: vec![vec![0.0]; 2],
            window: 10.0,
            population: 2,
        };
        assert_eq!(t.survival_weight(), 0.0);
        // The boundary case population == 1 + answers.len() is
        // consistent (nobody remains) and also yields 0.0.
        let boundary = ThreadObservation { population: 4, ..t };
        assert_eq!(boundary.survival_weight(), 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cannot hold the asker")]
    fn training_rejects_inconsistent_population_in_debug() {
        // population 1 cannot hold the asker plus one answerer; the
        // consistency debug-assert in train() should fire.
        TimingPredictor::train(
            &[ThreadObservation {
                answers: vec![(vec![0.0, 0.0], 1.0)],
                non_answerers: vec![vec![0.1, 0.1]],
                window: 10.0,
                population: 1,
            }],
            &TimingConfig {
                epochs: 1,
                ..TimingConfig::fast()
            },
        );
    }

    #[test]
    fn training_accepts_empty_non_answerer_samples() {
        // A consistent population with no sampled non-answerers is
        // legal (e.g. serialized fixtures): the survival sum is
        // omitted and training proceeds on the answer terms alone.
        let threads: Vec<ThreadObservation> = synthetic_threads(20)
            .into_iter()
            .map(|t| ThreadObservation {
                non_answerers: vec![],
                ..t
            })
            .collect();
        let cfg = TimingConfig {
            epochs: 3,
            ..TimingConfig::fast()
        };
        let model = TimingPredictor::train(&threads, &cfg);
        let p = model.predict(&[1.0, 0.2], 100.0);
        assert!(p.is_finite() && p > 0.0, "prediction {p}");
    }

    /// Finite-difference check of the thread-gradient accumulation.
    #[test]
    fn thread_gradients_match_finite_differences() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let mut f = Mlp::new(
            &[
                LayerSpec::new(2, 6, Activation::Tanh),
                LayerSpec::new(6, 1, Activation::Softplus),
            ],
            &mut rng,
        );
        let g = Mlp::new(
            &[
                LayerSpec::new(2, 4, Activation::Tanh),
                LayerSpec::new(4, 1, Activation::Softplus),
            ],
            &mut rng,
        );
        let t = ThreadObservation {
            answers: vec![(vec![0.4, -0.2], 3.0), (vec![-0.6, 0.9], 7.0)],
            non_answerers: vec![vec![0.1, 0.1]],
            window: 30.0,
            population: 20,
        };
        let neg_ll = |f: &Mlp, g: &Mlp| -> f64 {
            let model = TimingPredictor {
                excitation: f.clone(),
                decay_net: Some(g.clone()),
                constant_decay: 0.0,
                prediction: PredictionMode::Conditional,
                max_survival_weight: f64::INFINITY,
                calibration: None,
            };
            -model.log_likelihood(std::slice::from_ref(&t))
        };
        let mut grads_f = vec![0.0; f.num_params()];
        let mut grads_g = vec![0.0; g.num_params()];
        let mut scratch_f = MlpScratch::new();
        let mut scratch_g = MlpScratch::new();
        accumulate_thread_grads(
            &t,
            &f,
            Some(&g),
            0.0,
            f64::INFINITY,
            &mut scratch_f,
            &mut scratch_g,
            &mut grads_f,
            &mut grads_g,
        );
        let eps = 1e-6;
        for i in (0..f.num_params()).step_by(7) {
            let orig = f.params()[i];
            f.params_mut()[i] = orig + eps;
            let up = neg_ll(&f, &g);
            f.params_mut()[i] = orig - eps;
            let down = neg_ll(&f, &g);
            f.params_mut()[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grads_f[i]).abs() < 1e-4 * (1.0 + numeric.abs()),
                "f param {i}: numeric {numeric} vs analytic {}",
                grads_f[i]
            );
        }
        let mut g = g;
        for i in (0..g.num_params()).step_by(5) {
            let orig = g.params()[i];
            g.params_mut()[i] = orig + eps;
            let up = neg_ll(&f, &g);
            g.params_mut()[i] = orig - eps;
            let down = neg_ll(&f, &g);
            g.params_mut()[i] = orig;
            let numeric = (up - down) / (2.0 * eps);
            // Recompute analytic grads for the restored g.
            assert!(
                (numeric - grads_g[i]).abs() < 1e-4 * (1.0 + numeric.abs()),
                "g param {i}: numeric {numeric} vs analytic {}",
                grads_g[i]
            );
        }
    }

    #[test]
    fn isotonic_fit_recovers_monotone_steps() {
        // Scores 1..6, targets with one violation (4 > 2).
        let scores = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let targets = [1.0, 1.0, 4.0, 2.0, 5.0, 6.0];
        let map = IsotonicMap::fit(&scores, &targets).expect("fits");
        // Violating pair pooled to mean 3.
        assert!((map.apply(3.0) - 3.0).abs() < 1e-12);
        assert!((map.apply(4.0) - 3.0).abs() < 1e-9 || map.apply(4.0) >= 3.0);
        // Monotone overall.
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=70 {
            let v = map.apply(i as f64 / 10.0);
            assert!(v >= prev - 1e-12, "not monotone at {i}");
            prev = v;
        }
        // Clamped outside the knots.
        assert_eq!(map.apply(-100.0), map.apply(0.9));
        assert_eq!(map.apply(100.0), map.apply(6.1));
    }

    #[test]
    fn isotonic_fit_degenerate_inputs() {
        assert!(IsotonicMap::fit(&[1.0], &[2.0]).is_none());
        // All-equal scores collapse to one knot → constant map at the
        // target mean.
        let m = IsotonicMap::fit(&[3.0, 3.0, 3.0], &[1.0, 2.0, 3.0]).expect("constant map");
        assert!((m.apply(0.0) - 2.0).abs() < 1e-12);
        assert!((m.apply(9.0) - 2.0).abs() < 1e-12);
        // Anti-correlated scores also pool to the mean.
        let m = IsotonicMap::fit(&[1.0, 2.0, 3.0], &[30.0, 20.0, 10.0]).expect("pooled");
        assert!((m.apply(2.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn first_event_matches_conditional_in_rare_limit() {
        // Tiny μ → Λ ≪ 1 → survival factor ≈ 1.
        let fe = first_event_expectation(1e-6, 0.1, 50.0);
        let cond = conditional_expectation(0.1, 50.0);
        assert!((fe - cond).abs() / cond < 1e-3, "{fe} vs {cond}");
    }

    #[test]
    fn first_event_is_earlier_for_hot_threads() {
        // Large μ concentrates the first event early.
        let hot = first_event_expectation(5.0, 0.05, 100.0);
        let cold = first_event_expectation(0.01, 0.05, 100.0);
        assert!(hot < cold, "hot {hot} vs cold {cold}");
        assert!(hot > 0.0 && cold < 100.0);
    }

    #[test]
    fn calibrated_model_predictions_track_observed_scale() {
        let threads = synthetic_threads(80);
        let model = TimingPredictor::train(&threads, &TimingConfig::fast());
        // Calibration maps into the observed delay range.
        let fast = model.predict(&[1.0, 0.2], 100.0);
        let slow = model.predict(&[-1.0, 0.2], 100.0);
        let min_obs = 1.0;
        let max_obs = 25.0;
        assert!(
            fast >= min_obs - 1.0 && slow <= max_obs + 1.0,
            "{fast} {slow}"
        );
        assert!(fast < slow);
    }

    #[test]
    #[should_panic(expected = "at least one answered thread")]
    fn training_without_answers_panics() {
        TimingPredictor::train(
            &[ThreadObservation {
                answers: vec![],
                non_answerers: vec![vec![0.0]],
                window: 1.0,
                population: 5,
            }],
            &TimingConfig::fast(),
        );
    }

    #[test]
    fn serde_roundtrip() {
        let threads = synthetic_threads(10);
        let model = TimingPredictor::train(
            &threads,
            &TimingConfig {
                epochs: 3,
                ..TimingConfig::fast()
            },
        );
        let json = serde_json::to_string(&model).unwrap();
        let back: TimingPredictor = serde_json::from_str(&json).unwrap();
        let (a, b) = (
            back.predict(&[1.0, 0.2], 50.0),
            model.predict(&[1.0, 0.2], 50.0),
        );
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}
