//! The primary contribution of Hansen et al. (ICDCS 2019): joint
//! prediction of **who** will answer a forum question (`â_{u,q}`),
//! the **quality** (net votes, `v̂_{u,q}`) and the **timing**
//! (`r̂_{u,q}`) of the response, all learned over the 20-feature
//! vectors of `forumcast-features`.
//!
//! Three models (Section II-A):
//!
//! * [`AnswerPredictor`] — logistic regression on `x_{u,q}`; kept
//!   linear deliberately because the answer matrix is ~99.97% sparse
//!   and nonlinear models overfit;
//! * [`VotePredictor`] — a deep fully-connected network (the paper's
//!   configuration: 4 layers of 20 ReLU units) trained with MSE/Adam;
//! * [`TimingPredictor`] — a point-process model with rate
//!   `λ_{u,q}(t) = μ_{u,q} e^{−ω_{u,q}(t − t(p_{q0}))}` where the
//!   initial excitation `μ = f_Θ(x)` is a neural network (100/50 tanh
//!   hidden units, positive output) and the decay `ω` is either a
//!   constant (the paper's final choice) or a second network. The
//!   model is trained by maximizing the thread log-likelihood with
//!   Adam, with the survival term's sum over all users approximated
//!   by importance-weighted sampled non-answerers.
//!
//! [`ResponsePredictor`] bundles all three behind one train/predict
//! API with shared feature normalization.
//!
//! # Example
//!
//! ```
//! use forumcast_core::{ResponsePredictor, TrainConfig, TrainingSet};
//!
//! // Two users; user 0 answers fast with good votes when the single
//! // feature is high.
//! let mut ts = TrainingSet::new(1);
//! for i in 0..40 {
//!     let x = if i % 2 == 0 { 1.0 } else { -1.0 };
//!     ts.push_answer(vec![x], i % 2 == 0);
//!     ts.push_vote(vec![x], if i % 2 == 0 { 3.0 } else { -1.0 });
//! }
//! ts.push_timing_thread(
//!     vec![(vec![1.0], 2.0)],  // an answer after 2 h
//!     vec![vec![-1.0]],        // one sampled non-answerer
//!     24.0,                    // observation window
//!     10,                      // population size
//! );
//! let model = ResponsePredictor::train(&ts, &TrainConfig::fast());
//! assert!(model.predict_answer(&[1.0]) > model.predict_answer(&[-1.0]));
//! ```

pub mod answer;
pub mod online;
pub mod predictor;
pub mod timing;
pub mod votes;

pub use answer::{AnswerConfig, AnswerPredictor};
pub use online::OnlineState;
pub use predictor::{ResponsePredictor, TrainConfig, TrainProgress, TrainingSet};
pub use timing::{DecayMode, PredictionMode, ThreadObservation, TimingConfig, TimingPredictor};
pub use votes::{VoteConfig, VotePredictor, VoteTrainState};
