//! The `v̂_{u,q}` predictor: net votes a user's answer will receive.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use forumcast_ml::{Activation, Adam, LayerSpec, Mlp, TrainError, TrainState, Trainer};

/// Training configuration for [`VotePredictor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoteConfig {
    /// Hidden-layer widths. The paper's configuration is `L = 4` with
    /// 20 units per layer.
    pub hidden: Vec<usize>,
    /// Hidden-layer nonlinearity (the paper uses ReLU).
    pub activation: Activation,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 weight decay (guards against memorizing small training
    /// sets; the answer matrix sparsity makes this essential).
    pub weight_decay: f64,
    /// Fraction of the training set held out for early stopping
    /// (0 disables early stopping).
    pub validation_frac: f64,
    /// Early-stopping patience: epochs without validation improvement
    /// before training stops (the best parameters are restored).
    pub patience: usize,
    /// RNG seed (initialization and shuffling).
    pub seed: u64,
}

impl Default for VoteConfig {
    /// The paper's network: 4 hidden layers × 20 ReLU units.
    fn default() -> Self {
        VoteConfig {
            hidden: vec![20, 20, 20, 20],
            activation: Activation::Relu,
            epochs: 300,
            learning_rate: 0.01,
            batch_size: 32,
            weight_decay: 1e-3,
            validation_frac: 0.15,
            patience: 40,
            seed: 0x707E5,
        }
    }
}

impl VoteConfig {
    /// Smaller/faster settings for tests.
    pub fn fast() -> Self {
        VoteConfig {
            hidden: vec![16, 16],
            epochs: 200,
            ..VoteConfig::default()
        }
    }
}

/// Fully-connected regression network for net votes (Section II-A2,
/// Equation (1)): hidden layers with nonlinearity `σ`, linear output,
/// MSE loss, Adam.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VotePredictor {
    mlp: Mlp,
}

/// Epoch-boundary snapshot of an in-progress vote-network run: the
/// full [`TrainState`] plus the early-stopping bookkeeping that lives
/// outside the trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VoteTrainState {
    /// Trainer snapshot (parameters, Adam moments, RNG state).
    pub train: TrainState,
    /// Best-so-far parameters by validation MSE.
    pub best_params: Vec<f64>,
    /// Best validation MSE, `None` when no validation split is in use
    /// (the in-memory sentinel is `+∞`, which JSON cannot carry).
    pub best_val: Option<f64>,
    /// Epochs since the last validation improvement.
    pub stale: u64,
}

impl VotePredictor {
    /// Trains on normalized feature vectors and observed net votes,
    /// recovering deterministically from divergence: a first diverged
    /// attempt (e.g. an injected one-shot `nan-grad` fault) is
    /// retrained with the *same* configuration — which reproduces the
    /// fault-free result bit for bit — and a second divergence (a
    /// genuinely unstable configuration) is retrained once at a 10×
    /// reduced learning rate.
    ///
    /// # Panics
    ///
    /// Panics when `xs` is empty, lengths mismatch, `hidden` is
    /// empty, or training still diverges at the reduced learning
    /// rate.
    pub fn train(xs: &[Vec<f64>], ys: &[f64], config: &VoteConfig) -> Self {
        Self::train_resumable(xs, ys, config, None, 0, &mut |_| {})
    }

    /// [`Self::train`] with epoch-granular checkpointing: when
    /// `resume` is given, training continues from that snapshot and
    /// finishes bitwise-identically to an uninterrupted run; every
    /// `snapshot_every` completed epochs (0 disables) `on_snapshot`
    /// receives a fresh [`VoteTrainState`] to persist. Divergence
    /// retries always restart from scratch (never from `resume`), so
    /// the healed trajectory matches an uninterrupted run's retry bit
    /// for bit.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::train`].
    pub fn train_resumable(
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &VoteConfig,
        resume: Option<&VoteTrainState>,
        snapshot_every: usize,
        on_snapshot: &mut dyn FnMut(&VoteTrainState),
    ) -> Self {
        match Self::try_train_resumable(xs, ys, config, resume, snapshot_every, on_snapshot) {
            Ok(p) => p,
            // Injected faults fire a bounded number of times, so a
            // clean retrain at the same configuration is the healed,
            // bitwise-identical path.
            Err(first) => {
                if let TrainError::Diverged { epoch } = first {
                    forumcast_obs::mark("ml.vote.divergence-retry", epoch as u64);
                }
                match Self::try_train_resumable(xs, ys, config, None, snapshot_every, on_snapshot) {
                    Ok(p) => p,
                    Err(TrainError::Diverged { epoch }) => {
                        forumcast_obs::mark("ml.vote.divergence-retry", epoch as u64);
                        let damped = VoteConfig {
                            learning_rate: config.learning_rate * 0.1,
                            ..config.clone()
                        };
                        Self::try_train(xs, ys, &damped).unwrap_or_else(|e| {
                            panic!(
                                "vote training diverged at epoch {epoch}, and again at \
                                 reduced learning rate {}: {e}",
                                damped.learning_rate
                            )
                        })
                    }
                    Err(e) => panic!("vote training failed: {e}"),
                }
            }
        }
    }

    /// Trains like [`Self::train`] but surfaces divergence to the
    /// caller instead of retrying.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Diverged`] when an epoch's loss or the
    /// network parameters become non-finite.
    ///
    /// # Panics
    ///
    /// Panics when `xs` is empty, lengths mismatch, or `hidden` is
    /// empty.
    pub fn try_train(xs: &[Vec<f64>], ys: &[f64], config: &VoteConfig) -> Result<Self, TrainError> {
        Self::try_train_resumable(xs, ys, config, None, 0, &mut |_| {})
    }

    /// [`Self::try_train`] with epoch-granular checkpointing; see
    /// [`Self::train_resumable`] for the snapshot contract. A `resume`
    /// snapshot that does not fit this configuration (it cannot, when
    /// checkpoint fingerprints are checked upstream) is counted under
    /// `ml.resume.invalid` and ignored — training restarts from
    /// scratch rather than trusting it.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::Diverged`] when an epoch's loss or the
    /// network parameters become non-finite.
    ///
    /// # Panics
    ///
    /// Panics when `xs` is empty, lengths mismatch, or `hidden` is
    /// empty.
    pub fn try_train_resumable(
        xs: &[Vec<f64>],
        ys: &[f64],
        config: &VoteConfig,
        resume: Option<&VoteTrainState>,
        snapshot_every: usize,
        on_snapshot: &mut dyn FnMut(&VoteTrainState),
    ) -> Result<Self, TrainError> {
        let _span = forumcast_obs::span("ml.vote.train");
        assert!(!xs.is_empty(), "need at least one training sample");
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!config.hidden.is_empty(), "need at least one hidden layer");
        let dim = xs[0].len();
        // The preamble below (network init, validation split) replays
        // deterministically from the seed on every attempt; a resume
        // snapshot then overwrites parameters, optimizer moments, and
        // RNG state, making the continuation bitwise-identical to the
        // uninterrupted run.
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut specs = Vec::with_capacity(config.hidden.len() + 1);
        let mut prev = dim;
        for &h in &config.hidden {
            specs.push(LayerSpec::new(prev, h, config.activation));
            prev = h;
        }
        specs.push(LayerSpec::new(prev, 1, Activation::Identity));
        let mut mlp = Mlp::new(&specs, &mut rng);
        let mut trainer = Trainer::new(Adam::new(config.learning_rate), config.batch_size)
            .with_weight_decay(config.weight_decay);

        // Split off a validation set for early stopping; deep nets on
        // small folds memorize within tens of epochs otherwise.
        let n_val = if config.validation_frac > 0.0 && xs.len() >= 20 {
            ((xs.len() as f64 * config.validation_frac) as usize).max(1)
        } else {
            0
        };
        let mut order: Vec<usize> = (0..xs.len()).collect();
        use rand::seq::SliceRandom;
        order.shuffle(&mut rng);
        let (val_idx, train_idx) = order.split_at(n_val);
        let train_xs: Vec<Vec<f64>> = train_idx.iter().map(|&i| xs[i].clone()).collect();
        let train_ys: Vec<f64> = train_idx.iter().map(|&i| ys[i]).collect();

        let val_mse = |m: &Mlp| -> f64 {
            val_idx
                .iter()
                .map(|&i| {
                    let e = m.forward(&xs[i])[0] - ys[i];
                    e * e
                })
                .sum::<f64>()
                / val_idx.len().max(1) as f64
        };
        let mut best_params = mlp.params().to_vec();
        let mut best_val = if n_val > 0 {
            val_mse(&mlp)
        } else {
            f64::INFINITY
        };
        let mut stale = 0usize;
        if let Some(state) = resume {
            if state.best_params.len() == mlp.num_params()
                && trainer.restore(&state.train, &mut mlp, &mut rng).is_ok()
            {
                best_params.copy_from_slice(&state.best_params);
                best_val = state.best_val.unwrap_or(f64::INFINITY);
                stale = state.stale as usize;
            } else {
                forumcast_obs::counter_add("ml.resume.invalid", 1);
            }
        }
        while trainer.epochs_run() < config.epochs {
            trainer.try_epoch(&mut mlp, &train_xs, &train_ys, &mut rng)?;
            if n_val > 0 {
                let v = val_mse(&mlp);
                if v < best_val {
                    best_val = v;
                    best_params.copy_from_slice(mlp.params());
                    stale = 0;
                } else {
                    stale += 1;
                    if stale >= config.patience {
                        break;
                    }
                }
            }
            let done = trainer.epochs_run();
            if snapshot_every > 0 && done < config.epochs && done.is_multiple_of(snapshot_every) {
                on_snapshot(&VoteTrainState {
                    train: trainer.snapshot(&mlp, &rng),
                    best_params: best_params.clone(),
                    best_val: (n_val > 0).then_some(best_val),
                    stale: stale as u64,
                });
            }
        }
        if n_val > 0 {
            mlp.params_mut().copy_from_slice(&best_params);
        }
        Ok(VotePredictor { mlp })
    }

    /// Predicted net votes for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics when `x` has the wrong dimension.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.mlp.forward(x)[0]
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.mlp.input_dim()
    }

    /// The underlying network (for inspection).
    pub fn network(&self) -> &Mlp {
        &self.mlp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Nonlinear target: v = 3·x₀² − 1 (a linear model cannot fit it).
    fn toy() -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 40.0 - 1.0, 0.3]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x[0] * x[0] - 1.0).collect();
        (xs, ys)
    }

    #[test]
    fn fits_nonlinear_vote_surface() {
        let (xs, ys) = toy();
        let cfg = VoteConfig {
            epochs: 400,
            ..VoteConfig::fast()
        };
        let p = VotePredictor::train(&xs, &ys, &cfg);
        let rmse = (xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (p.predict(x) - y).powi(2))
            .sum::<f64>()
            / xs.len() as f64)
            .sqrt();
        assert!(rmse < 0.4, "rmse {rmse}");
        // Check the curvature: prediction at 0 below prediction at ±1.
        assert!(p.predict(&[0.0, 0.3]) < p.predict(&[1.0, 0.3]) - 1.0);
    }

    #[test]
    fn paper_architecture_has_four_hidden_layers() {
        let (xs, ys) = toy();
        let p = VotePredictor::train(
            &xs,
            &ys,
            &VoteConfig {
                epochs: 1,
                ..VoteConfig::default()
            },
        );
        // 4 hidden + 1 output.
        assert_eq!(p.network().specs().len(), 5);
        assert_eq!(p.network().specs()[0].outputs, 20);
        assert_eq!(p.network().specs()[4].outputs, 1);
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = toy();
        let a = VotePredictor::train(&xs, &ys, &VoteConfig::fast());
        let b = VotePredictor::train(&xs, &ys, &VoteConfig::fast());
        assert_eq!(a.predict(&[0.5, 0.3]), b.predict(&[0.5, 0.3]));
    }

    #[test]
    #[should_panic(expected = "at least one training sample")]
    fn empty_training_panics() {
        VotePredictor::train(&[], &[], &VoteConfig::fast());
    }

    #[test]
    fn injected_nan_gradient_heals_bitwise_identically() {
        let (xs, ys) = toy();
        let cfg = VoteConfig {
            epochs: 30,
            ..VoteConfig::fast()
        };
        let clean = VotePredictor::train(&xs, &ys, &cfg);
        let _guard = forumcast_resilience::FaultPlan::parse("nan-grad:5")
            .unwrap()
            .arm();
        let healed = VotePredictor::train(&xs, &ys, &cfg);
        for (a, b) in clean
            .network()
            .params()
            .iter()
            .zip(healed.network().params())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn try_train_surfaces_divergence() {
        let (xs, ys) = toy();
        let cfg = VoteConfig {
            epochs: 30,
            ..VoteConfig::fast()
        };
        let _guard = forumcast_resilience::FaultPlan::parse("nan-grad:5")
            .unwrap()
            .arm();
        assert!(matches!(
            VotePredictor::try_train(&xs, &ys, &cfg),
            Err(forumcast_ml::TrainError::Diverged { .. })
        ));
    }

    #[test]
    fn serde_roundtrip() {
        let (xs, ys) = toy();
        let p = VotePredictor::train(&xs, &ys, &VoteConfig::fast());
        let json = serde_json::to_string(&p).unwrap();
        let back: VotePredictor = serde_json::from_str(&json).unwrap();
        assert_eq!(back.predict(&[0.1, 0.3]), p.predict(&[0.1, 0.3]));
    }

    fn param_bits(p: &VotePredictor) -> Vec<u64> {
        p.network().params().iter().map(|w| w.to_bits()).collect()
    }

    #[test]
    fn resume_from_every_snapshot_is_bitwise_identical() {
        let (xs, ys) = toy();
        let cfg = VoteConfig {
            epochs: 40,
            ..VoteConfig::fast()
        };
        let reference = VotePredictor::train(&xs, &ys, &cfg);
        let mut snapshots = Vec::new();
        let snapshotted = VotePredictor::train_resumable(&xs, &ys, &cfg, None, 9, &mut |s| {
            snapshots.push(s.clone())
        });
        // Snapshotting itself must not perturb training.
        assert_eq!(param_bits(&reference), param_bits(&snapshotted));
        assert!(!snapshots.is_empty());
        for snap in &snapshots {
            // Round-trip through JSON, as the on-disk checkpoint does.
            let json = serde_json::to_string(snap).unwrap();
            let snap: VoteTrainState = serde_json::from_str(&json).unwrap();
            let resumed =
                VotePredictor::train_resumable(&xs, &ys, &cfg, Some(&snap), 0, &mut |_| {});
            assert_eq!(
                param_bits(&reference),
                param_bits(&resumed),
                "resume from epoch {}",
                snap.train.epoch
            );
        }
    }

    #[test]
    fn mismatched_resume_snapshot_falls_back_to_scratch() {
        let (xs, ys) = toy();
        let cfg = VoteConfig {
            epochs: 20,
            ..VoteConfig::fast()
        };
        let mut snapshots = Vec::new();
        VotePredictor::train_resumable(&xs, &ys, &cfg, None, 5, &mut |s| snapshots.push(s.clone()));
        // A snapshot from a different architecture must be ignored,
        // not trusted.
        let other_cfg = VoteConfig {
            hidden: vec![4],
            epochs: 20,
            ..VoteConfig::fast()
        };
        let reference = VotePredictor::train(&xs, &ys, &other_cfg);
        let resumed = VotePredictor::train_resumable(
            &xs,
            &ys,
            &other_cfg,
            Some(&snapshots[0]),
            0,
            &mut |_| {},
        );
        assert_eq!(param_bits(&reference), param_bits(&resumed));
    }

    #[test]
    fn interrupted_divergence_retry_still_heals_bitwise() {
        // Snapshots + injected divergence: the retry restarts from
        // scratch and reproduces the clean result bit for bit.
        let (xs, ys) = toy();
        let cfg = VoteConfig {
            epochs: 30,
            ..VoteConfig::fast()
        };
        let clean = VotePredictor::train(&xs, &ys, &cfg);
        let _guard = forumcast_resilience::FaultPlan::parse("nan-grad:5")
            .unwrap()
            .arm();
        let healed = VotePredictor::train_resumable(&xs, &ys, &cfg, None, 7, &mut |_| {});
        assert_eq!(param_bits(&clean), param_bits(&healed));
    }
}
