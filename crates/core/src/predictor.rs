//! The joint response predictor: `â`, `v̂`, `r̂` behind one API.

use serde::{Deserialize, Serialize};

use forumcast_features::Normalizer;

use forumcast_ml::TrainState;

use crate::answer::{AnswerConfig, AnswerPredictor};
use crate::timing::{ThreadObservation, TimingConfig, TimingPredictor};
use crate::votes::{VoteConfig, VotePredictor, VoteTrainState};

/// Labeled training data for all three tasks, in raw (unnormalized)
/// feature space. The evaluation harness builds this from a dataset
/// partition; see `forumcast-eval`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingSet {
    dim: usize,
    answer_xs: Vec<Vec<f64>>,
    answer_ys: Vec<bool>,
    vote_xs: Vec<Vec<f64>>,
    vote_ys: Vec<f64>,
    timing_threads: Vec<ThreadObservation>,
}

impl TrainingSet {
    /// Creates an empty training set for `dim`-dimensional features.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        TrainingSet {
            dim,
            ..TrainingSet::default()
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Adds an answer-task sample (`a_{u,q}` label).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn push_answer(&mut self, x: Vec<f64>, answered: bool) {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        self.answer_xs.push(x);
        self.answer_ys.push(answered);
    }

    /// Adds a vote-task sample (`v_{u,q}` target).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn push_vote(&mut self, x: Vec<f64>, votes: f64) {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        self.vote_xs.push(x);
        self.vote_ys.push(votes);
    }

    /// Adds one thread's timing observation: answerer features with
    /// delays, sampled non-answerer features, observation window, and
    /// population size.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn push_timing_thread(
        &mut self,
        answers: Vec<(Vec<f64>, f64)>,
        non_answerers: Vec<Vec<f64>>,
        window: f64,
        population: usize,
    ) {
        for (x, _) in &answers {
            assert_eq!(x.len(), self.dim, "dimension mismatch");
        }
        for x in &non_answerers {
            assert_eq!(x.len(), self.dim, "dimension mismatch");
        }
        self.timing_threads.push(ThreadObservation {
            answers,
            non_answerers,
            window,
            population,
        });
    }

    /// Number of answer / vote / timing samples.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.answer_xs.len(),
            self.vote_xs.len(),
            self.timing_threads.len(),
        )
    }
}

/// Configuration for [`ResponsePredictor::train`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Answer-task (logistic regression) settings.
    pub answer: AnswerConfig,
    /// Vote-task (deep network) settings.
    pub votes: VoteConfig,
    /// Timing-task (point process) settings.
    pub timing: TimingConfig,
    /// Apply `sign(x)·ln(1+|x|)` to every feature slot before
    /// z-scoring. Most of the 20 features are heavy-tailed counts
    /// (answers, votes, lengths, centralities); compressing them keeps
    /// a handful of power users from dominating the linear model and
    /// the network inputs.
    pub signed_log: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            answer: AnswerConfig::default(),
            votes: VoteConfig::default(),
            timing: TimingConfig::default(),
            signed_log: true,
        }
    }
}

impl TrainConfig {
    /// Faster settings for tests and examples.
    pub fn fast() -> Self {
        TrainConfig {
            answer: AnswerConfig {
                epochs: 30,
                ..AnswerConfig::default()
            },
            votes: VoteConfig::fast(),
            timing: TimingConfig::fast(),
            signed_log: true,
        }
    }
}

/// Resumable training progress for [`ResponsePredictor::train_resumable`]:
/// completed stages carry the finished predictor, the in-flight stage
/// carries its mid-training snapshot. The (cheap) timing stage is
/// always recomputed, so it never appears here.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainProgress {
    /// Finished answer predictor, once that stage completes.
    pub answer: Option<AnswerPredictor>,
    /// Mid-training answer snapshot while that stage is in flight.
    pub answer_state: Option<TrainState>,
    /// Finished vote predictor, once that stage completes.
    pub votes: Option<VotePredictor>,
    /// Mid-training vote snapshot while that stage is in flight.
    pub votes_state: Option<VoteTrainState>,
}

impl TrainProgress {
    /// Number of training epochs this progress makes skippable under
    /// `config` — completed stages count in full, in-flight stages by
    /// their snapshot epoch.
    pub fn epochs_done(&self, config: &TrainConfig) -> u64 {
        let answer = if self.answer.is_some() {
            config.answer.epochs as u64
        } else {
            self.answer_state.as_ref().map_or(0, |s| s.epoch)
        };
        let votes = if self.votes.is_some() {
            config.votes.epochs as u64
        } else {
            self.votes_state.as_ref().map_or(0, |s| s.train.epoch)
        };
        answer + votes
    }
}

/// The paper's full system: all three predictors sharing one
/// preprocessing pipeline (optional signed-log compression followed
/// by z-scoring) fitted on the training features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponsePredictor {
    signed_log: bool,
    normalizer: Normalizer,
    answer: AnswerPredictor,
    votes: VotePredictor,
    timing: TimingPredictor,
}

/// `sign(x)·ln(1+|x|)` applied element-wise.
fn signed_log(x: &[f64]) -> Vec<f64> {
    x.iter()
        .map(|&v| v.signum() * (1.0 + v.abs()).ln())
        .collect()
}

impl ResponsePredictor {
    /// Trains all three models on `ts`.
    ///
    /// # Panics
    ///
    /// Panics when any task has no training data.
    pub fn train(ts: &TrainingSet, config: &TrainConfig) -> Self {
        Self::train_resumable(ts, config, None, 0, &mut |_| {})
    }

    /// [`train`](Self::train) with stage- and epoch-granular
    /// checkpointing. `resume` restarts from a prior [`TrainProgress`]
    /// snapshot; `snapshot_every > 0` invokes `save` with fresh
    /// progress every that many epochs within the answer and vote
    /// stages, plus once as each stage completes.
    ///
    /// Resuming from any snapshot emitted by this method reproduces
    /// the uninterrupted run bitwise: the preprocessing preamble is
    /// deterministically recomputed, then parameters, optimizer
    /// moments, and the shuffle-RNG state are restored.
    ///
    /// # Panics
    ///
    /// Panics when any task has no training data.
    pub fn train_resumable(
        ts: &TrainingSet,
        config: &TrainConfig,
        resume: Option<&TrainProgress>,
        snapshot_every: usize,
        save: &mut dyn FnMut(&TrainProgress),
    ) -> Self {
        assert!(
            !ts.answer_xs.is_empty() && !ts.vote_xs.is_empty() && !ts.timing_threads.is_empty(),
            "all three tasks need training data"
        );
        let pre = |x: &[f64]| -> Vec<f64> {
            if config.signed_log {
                signed_log(x)
            } else {
                x.to_vec()
            }
        };
        // Normalizer fitted on the union of task inputs.
        let mut all: Vec<Vec<f64>> = Vec::new();
        all.extend(ts.answer_xs.iter().map(|x| pre(x)));
        all.extend(ts.vote_xs.iter().map(|x| pre(x)));
        let normalizer = Normalizer::fit(&all);
        let tf = |x: &[f64]| normalizer.transform(&pre(x));

        let mut progress = resume.cloned().unwrap_or_default();

        let answer = if let Some(a) = progress.answer.clone() {
            a
        } else {
            let answer_xs: Vec<Vec<f64>> = ts.answer_xs.iter().map(|x| tf(x)).collect();
            let resume_state = progress.answer_state.take();
            let a = AnswerPredictor::train_resumable(
                &answer_xs,
                &ts.answer_ys,
                &config.answer,
                resume_state.as_ref(),
                snapshot_every,
                &mut |s| {
                    save(&TrainProgress {
                        answer_state: Some(s.clone()),
                        ..TrainProgress::default()
                    })
                },
            );
            progress.answer = Some(a.clone());
            progress.answer_state = None;
            if snapshot_every > 0 {
                save(&progress);
            }
            a
        };

        let votes = if let Some(v) = progress.votes.clone() {
            v
        } else {
            let vote_xs: Vec<Vec<f64>> = ts.vote_xs.iter().map(|x| tf(x)).collect();
            let resume_state = progress.votes_state.take();
            let answer_done = progress.answer.clone();
            let v = VotePredictor::train_resumable(
                &vote_xs,
                &ts.vote_ys,
                &config.votes,
                resume_state.as_ref(),
                snapshot_every,
                &mut |s| {
                    save(&TrainProgress {
                        answer: answer_done.clone(),
                        votes_state: Some(s.clone()),
                        ..TrainProgress::default()
                    })
                },
            );
            progress.votes = Some(v.clone());
            progress.votes_state = None;
            if snapshot_every > 0 {
                save(&progress);
            }
            v
        };

        // The timing stage is a closed-form accumulation pass — cheap
        // enough to always recompute rather than checkpoint.
        let timing_threads: Vec<ThreadObservation> = ts
            .timing_threads
            .iter()
            .map(|t| ThreadObservation {
                answers: t.answers.iter().map(|(x, r)| (tf(x), *r)).collect(),
                non_answerers: t.non_answerers.iter().map(|x| tf(x)).collect(),
                window: t.window,
                population: t.population,
            })
            .collect();
        let timing = TimingPredictor::train(&timing_threads, &config.timing);

        ResponsePredictor {
            signed_log: config.signed_log,
            normalizer,
            answer,
            votes,
            timing,
        }
    }

    /// Applies the fitted preprocessing pipeline to a raw feature
    /// vector.
    fn preprocess(&self, x: &[f64]) -> Vec<f64> {
        if self.signed_log {
            self.normalizer.transform(&signed_log(x))
        } else {
            self.normalizer.transform(x)
        }
    }

    /// `â_{u,q}` — probability the user answers (raw feature space).
    pub fn predict_answer(&self, x: &[f64]) -> f64 {
        self.answer.predict(&self.preprocess(x))
    }

    /// `v̂_{u,q}` — predicted net votes (raw feature space).
    pub fn predict_votes(&self, x: &[f64]) -> f64 {
        self.votes.predict(&self.preprocess(x))
    }

    /// `r̂_{u,q}` — predicted response time in hours, for a question
    /// with `window` observable hours (raw feature space).
    pub fn predict_response_time(&self, x: &[f64], window: f64) -> f64 {
        self.timing.predict(&self.preprocess(x), window)
    }

    /// All three predictions at once: `(â, v̂, r̂)`.
    pub fn predict(&self, x: &[f64], window: f64) -> (f64, f64, f64) {
        let z = self.preprocess(x);
        (
            self.answer.predict(&z),
            self.votes.predict(&z),
            self.timing.predict(&z, window),
        )
    }

    /// The individual predictors (normalized feature space).
    pub fn parts(&self) -> (&AnswerPredictor, &VotePredictor, &TimingPredictor) {
        (&self.answer, &self.votes, &self.timing)
    }

    /// The fitted feature normalizer.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-feature world: feature 0 drives answering & speed, feature
    /// 1 drives votes. Both raw features are on a large scale to
    /// exercise normalization.
    fn training_set() -> TrainingSet {
        let mut ts = TrainingSet::new(2);
        for i in 0..60 {
            let active = i % 2 == 0;
            let skilled = i % 3 == 0;
            let x = vec![
                if active { 500.0 } else { 100.0 },
                if skilled { 80.0 } else { 20.0 },
            ];
            ts.push_answer(x.clone(), active);
            ts.push_vote(x.clone(), if skilled { 5.0 } else { 0.0 });
            if active {
                ts.push_timing_thread(
                    vec![(x, 2.0 + (i % 4) as f64)],
                    vec![vec![100.0, 20.0]],
                    100.0,
                    30,
                );
            }
        }
        ts
    }

    #[test]
    fn joint_training_learns_all_three_tasks() {
        let ts = training_set();
        let model = ResponsePredictor::train(&ts, &TrainConfig::fast());
        // Answer: active archetype scores higher.
        assert!(model.predict_answer(&[500.0, 20.0]) > model.predict_answer(&[100.0, 20.0]));
        // Votes: skilled archetype scores higher.
        assert!(model.predict_votes(&[100.0, 80.0]) > model.predict_votes(&[100.0, 20.0]) + 1.0);
        // Timing: finite, positive, within the window.
        let r = model.predict_response_time(&[500.0, 20.0], 100.0);
        assert!(r > 0.0 && r < 100.0, "r̂ = {r}");
    }

    #[test]
    fn predict_returns_all_three() {
        let ts = training_set();
        let model = ResponsePredictor::train(&ts, &TrainConfig::fast());
        let (a, v, r) = model.predict(&[500.0, 80.0], 50.0);
        assert!((0.0..=1.0).contains(&a));
        assert!(v.is_finite());
        assert!(r > 0.0);
    }

    #[test]
    fn counts_reflect_pushes() {
        let ts = training_set();
        let (a, v, t) = ts.counts();
        assert_eq!(a, 60);
        assert_eq!(v, 60);
        assert_eq!(t, 30);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_push_panics() {
        TrainingSet::new(2).push_answer(vec![1.0], true);
    }

    #[test]
    #[should_panic(expected = "all three tasks")]
    fn missing_task_data_panics() {
        let mut ts = TrainingSet::new(1);
        ts.push_answer(vec![1.0], true);
        ResponsePredictor::train(&ts, &TrainConfig::fast());
    }

    #[test]
    fn serde_roundtrip() {
        let ts = training_set();
        let model = ResponsePredictor::train(&ts, &TrainConfig::fast());
        let json = serde_json::to_string(&model).unwrap();
        let back: ResponsePredictor = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.predict_votes(&[100.0, 80.0]),
            model.predict_votes(&[100.0, 80.0])
        );
    }

    fn model_bits(m: &ResponsePredictor) -> Vec<u64> {
        let (a, v, _) = m.parts();
        a.coefficients()
            .iter()
            .chain(v.network().params().iter())
            .map(|w| w.to_bits())
            .collect()
    }

    #[test]
    fn resume_from_every_progress_snapshot_is_bitwise_identical() {
        let ts = training_set();
        let cfg = TrainConfig {
            votes: VoteConfig {
                epochs: 40,
                ..VoteConfig::fast()
            },
            ..TrainConfig::fast()
        };
        let reference = ResponsePredictor::train(&ts, &cfg);
        let mut snapshots = Vec::new();
        let snapshotted = ResponsePredictor::train_resumable(&ts, &cfg, None, 7, &mut |p| {
            snapshots.push(p.clone())
        });
        assert_eq!(model_bits(&reference), model_bits(&snapshotted));
        // Both stages must have produced in-flight snapshots, plus the
        // two stage-completion snapshots.
        assert!(snapshots.iter().any(|p| p.answer_state.is_some()));
        assert!(snapshots.iter().any(|p| p.votes_state.is_some()));
        assert!(snapshots.iter().any(|p| p.votes.is_some()));
        for (i, snap) in snapshots.iter().enumerate() {
            // Round-trip through JSON, as the on-disk checkpoint does.
            let json = serde_json::to_string(snap).unwrap();
            let snap: TrainProgress = serde_json::from_str(&json).unwrap();
            let resumed =
                ResponsePredictor::train_resumable(&ts, &cfg, Some(&snap), 0, &mut |_| {});
            assert_eq!(
                model_bits(&reference),
                model_bits(&resumed),
                "resume from snapshot {i}"
            );
        }
    }

    #[test]
    fn epochs_done_tracks_progress() {
        let ts = training_set();
        let cfg = TrainConfig {
            votes: VoteConfig {
                epochs: 40,
                ..VoteConfig::fast()
            },
            ..TrainConfig::fast()
        };
        let mut snapshots = Vec::new();
        ResponsePredictor::train_resumable(&ts, &cfg, None, 7, &mut |p| snapshots.push(p.clone()));
        assert_eq!(TrainProgress::default().epochs_done(&cfg), 0);
        let mut prev = 0;
        for snap in &snapshots {
            let done = snap.epochs_done(&cfg);
            assert!(done >= prev, "progress must be monotone");
            prev = done;
        }
        // The final snapshot has both stages complete.
        assert_eq!(prev, (cfg.answer.epochs + cfg.votes.epochs) as u64);
    }
}
