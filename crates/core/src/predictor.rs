//! The joint response predictor: `â`, `v̂`, `r̂` behind one API.

use serde::{Deserialize, Serialize};

use forumcast_features::Normalizer;

use crate::answer::{AnswerConfig, AnswerPredictor};
use crate::timing::{ThreadObservation, TimingConfig, TimingPredictor};
use crate::votes::{VoteConfig, VotePredictor};

/// Labeled training data for all three tasks, in raw (unnormalized)
/// feature space. The evaluation harness builds this from a dataset
/// partition; see `forumcast-eval`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingSet {
    dim: usize,
    answer_xs: Vec<Vec<f64>>,
    answer_ys: Vec<bool>,
    vote_xs: Vec<Vec<f64>>,
    vote_ys: Vec<f64>,
    timing_threads: Vec<ThreadObservation>,
}

impl TrainingSet {
    /// Creates an empty training set for `dim`-dimensional features.
    ///
    /// # Panics
    ///
    /// Panics when `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "feature dimension must be positive");
        TrainingSet {
            dim,
            ..TrainingSet::default()
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Adds an answer-task sample (`a_{u,q}` label).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn push_answer(&mut self, x: Vec<f64>, answered: bool) {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        self.answer_xs.push(x);
        self.answer_ys.push(answered);
    }

    /// Adds a vote-task sample (`v_{u,q}` target).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn push_vote(&mut self, x: Vec<f64>, votes: f64) {
        assert_eq!(x.len(), self.dim, "dimension mismatch");
        self.vote_xs.push(x);
        self.vote_ys.push(votes);
    }

    /// Adds one thread's timing observation: answerer features with
    /// delays, sampled non-answerer features, observation window, and
    /// population size.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn push_timing_thread(
        &mut self,
        answers: Vec<(Vec<f64>, f64)>,
        non_answerers: Vec<Vec<f64>>,
        window: f64,
        population: usize,
    ) {
        for (x, _) in &answers {
            assert_eq!(x.len(), self.dim, "dimension mismatch");
        }
        for x in &non_answerers {
            assert_eq!(x.len(), self.dim, "dimension mismatch");
        }
        self.timing_threads.push(ThreadObservation {
            answers,
            non_answerers,
            window,
            population,
        });
    }

    /// Number of answer / vote / timing samples.
    pub fn counts(&self) -> (usize, usize, usize) {
        (
            self.answer_xs.len(),
            self.vote_xs.len(),
            self.timing_threads.len(),
        )
    }
}

/// Configuration for [`ResponsePredictor::train`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Answer-task (logistic regression) settings.
    pub answer: AnswerConfig,
    /// Vote-task (deep network) settings.
    pub votes: VoteConfig,
    /// Timing-task (point process) settings.
    pub timing: TimingConfig,
    /// Apply `sign(x)·ln(1+|x|)` to every feature slot before
    /// z-scoring. Most of the 20 features are heavy-tailed counts
    /// (answers, votes, lengths, centralities); compressing them keeps
    /// a handful of power users from dominating the linear model and
    /// the network inputs.
    pub signed_log: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            answer: AnswerConfig::default(),
            votes: VoteConfig::default(),
            timing: TimingConfig::default(),
            signed_log: true,
        }
    }
}

impl TrainConfig {
    /// Faster settings for tests and examples.
    pub fn fast() -> Self {
        TrainConfig {
            answer: AnswerConfig {
                epochs: 30,
                ..AnswerConfig::default()
            },
            votes: VoteConfig::fast(),
            timing: TimingConfig::fast(),
            signed_log: true,
        }
    }
}

/// The paper's full system: all three predictors sharing one
/// preprocessing pipeline (optional signed-log compression followed
/// by z-scoring) fitted on the training features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponsePredictor {
    signed_log: bool,
    normalizer: Normalizer,
    answer: AnswerPredictor,
    votes: VotePredictor,
    timing: TimingPredictor,
}

/// `sign(x)·ln(1+|x|)` applied element-wise.
fn signed_log(x: &[f64]) -> Vec<f64> {
    x.iter()
        .map(|&v| v.signum() * (1.0 + v.abs()).ln())
        .collect()
}

impl ResponsePredictor {
    /// Trains all three models on `ts`.
    ///
    /// # Panics
    ///
    /// Panics when any task has no training data.
    pub fn train(ts: &TrainingSet, config: &TrainConfig) -> Self {
        assert!(
            !ts.answer_xs.is_empty() && !ts.vote_xs.is_empty() && !ts.timing_threads.is_empty(),
            "all three tasks need training data"
        );
        let pre = |x: &[f64]| -> Vec<f64> {
            if config.signed_log {
                signed_log(x)
            } else {
                x.to_vec()
            }
        };
        // Normalizer fitted on the union of task inputs.
        let mut all: Vec<Vec<f64>> = Vec::new();
        all.extend(ts.answer_xs.iter().map(|x| pre(x)));
        all.extend(ts.vote_xs.iter().map(|x| pre(x)));
        let normalizer = Normalizer::fit(&all);
        let tf = |x: &[f64]| normalizer.transform(&pre(x));

        let answer_xs: Vec<Vec<f64>> = ts.answer_xs.iter().map(|x| tf(x)).collect();
        let answer = AnswerPredictor::train(&answer_xs, &ts.answer_ys, &config.answer);

        let vote_xs: Vec<Vec<f64>> = ts.vote_xs.iter().map(|x| tf(x)).collect();
        let votes = VotePredictor::train(&vote_xs, &ts.vote_ys, &config.votes);

        let timing_threads: Vec<ThreadObservation> = ts
            .timing_threads
            .iter()
            .map(|t| ThreadObservation {
                answers: t.answers.iter().map(|(x, r)| (tf(x), *r)).collect(),
                non_answerers: t.non_answerers.iter().map(|x| tf(x)).collect(),
                window: t.window,
                population: t.population,
            })
            .collect();
        let timing = TimingPredictor::train(&timing_threads, &config.timing);

        ResponsePredictor {
            signed_log: config.signed_log,
            normalizer,
            answer,
            votes,
            timing,
        }
    }

    /// Applies the fitted preprocessing pipeline to a raw feature
    /// vector.
    fn preprocess(&self, x: &[f64]) -> Vec<f64> {
        if self.signed_log {
            self.normalizer.transform(&signed_log(x))
        } else {
            self.normalizer.transform(x)
        }
    }

    /// `â_{u,q}` — probability the user answers (raw feature space).
    pub fn predict_answer(&self, x: &[f64]) -> f64 {
        self.answer.predict(&self.preprocess(x))
    }

    /// `v̂_{u,q}` — predicted net votes (raw feature space).
    pub fn predict_votes(&self, x: &[f64]) -> f64 {
        self.votes.predict(&self.preprocess(x))
    }

    /// `r̂_{u,q}` — predicted response time in hours, for a question
    /// with `window` observable hours (raw feature space).
    pub fn predict_response_time(&self, x: &[f64], window: f64) -> f64 {
        self.timing.predict(&self.preprocess(x), window)
    }

    /// All three predictions at once: `(â, v̂, r̂)`.
    pub fn predict(&self, x: &[f64], window: f64) -> (f64, f64, f64) {
        let z = self.preprocess(x);
        (
            self.answer.predict(&z),
            self.votes.predict(&z),
            self.timing.predict(&z, window),
        )
    }

    /// The individual predictors (normalized feature space).
    pub fn parts(&self) -> (&AnswerPredictor, &VotePredictor, &TimingPredictor) {
        (&self.answer, &self.votes, &self.timing)
    }

    /// The fitted feature normalizer.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2-feature world: feature 0 drives answering & speed, feature
    /// 1 drives votes. Both raw features are on a large scale to
    /// exercise normalization.
    fn training_set() -> TrainingSet {
        let mut ts = TrainingSet::new(2);
        for i in 0..60 {
            let active = i % 2 == 0;
            let skilled = i % 3 == 0;
            let x = vec![
                if active { 500.0 } else { 100.0 },
                if skilled { 80.0 } else { 20.0 },
            ];
            ts.push_answer(x.clone(), active);
            ts.push_vote(x.clone(), if skilled { 5.0 } else { 0.0 });
            if active {
                ts.push_timing_thread(
                    vec![(x, 2.0 + (i % 4) as f64)],
                    vec![vec![100.0, 20.0]],
                    100.0,
                    30,
                );
            }
        }
        ts
    }

    #[test]
    fn joint_training_learns_all_three_tasks() {
        let ts = training_set();
        let model = ResponsePredictor::train(&ts, &TrainConfig::fast());
        // Answer: active archetype scores higher.
        assert!(model.predict_answer(&[500.0, 20.0]) > model.predict_answer(&[100.0, 20.0]));
        // Votes: skilled archetype scores higher.
        assert!(model.predict_votes(&[100.0, 80.0]) > model.predict_votes(&[100.0, 20.0]) + 1.0);
        // Timing: finite, positive, within the window.
        let r = model.predict_response_time(&[500.0, 20.0], 100.0);
        assert!(r > 0.0 && r < 100.0, "r̂ = {r}");
    }

    #[test]
    fn predict_returns_all_three() {
        let ts = training_set();
        let model = ResponsePredictor::train(&ts, &TrainConfig::fast());
        let (a, v, r) = model.predict(&[500.0, 80.0], 50.0);
        assert!((0.0..=1.0).contains(&a));
        assert!(v.is_finite());
        assert!(r > 0.0);
    }

    #[test]
    fn counts_reflect_pushes() {
        let ts = training_set();
        let (a, v, t) = ts.counts();
        assert_eq!(a, 60);
        assert_eq!(v, 60);
        assert_eq!(t, 30);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dimension_push_panics() {
        TrainingSet::new(2).push_answer(vec![1.0], true);
    }

    #[test]
    #[should_panic(expected = "all three tasks")]
    fn missing_task_data_panics() {
        let mut ts = TrainingSet::new(1);
        ts.push_answer(vec![1.0], true);
        ResponsePredictor::train(&ts, &TrainConfig::fast());
    }

    #[test]
    fn serde_roundtrip() {
        let ts = training_set();
        let model = ResponsePredictor::train(&ts, &TrainConfig::fast());
        let json = serde_json::to_string(&model).unwrap();
        let back: ResponsePredictor = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back.predict_votes(&[100.0, 80.0]),
            model.predict_votes(&[100.0, 80.0])
        );
    }
}
