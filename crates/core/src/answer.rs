//! The `â_{u,q}` predictor: will user `u` answer question `q`?

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use forumcast_ml::{LogisticRegression, TrainState};

/// Training configuration for [`AnswerPredictor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnswerConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// RNG seed for mini-batch shuffling.
    pub seed: u64,
}

impl Default for AnswerConfig {
    fn default() -> Self {
        AnswerConfig {
            epochs: 150,
            learning_rate: 0.05,
            l2: 1e-4,
            seed: 0xA05,
        }
    }
}

/// Logistic-regression classifier
/// `P(a_{u,q} = 1 | x_{u,q}) = 1 / (1 + e^{−x^T β})` (Section II-A1).
///
/// The linear form is a design decision from the paper: it measures
/// the predictive power of the features themselves and resists
/// overfitting under the extreme sparsity of the answer matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnswerPredictor {
    model: LogisticRegression,
}

impl AnswerPredictor {
    /// Trains on normalized feature vectors and answer labels.
    ///
    /// The evaluation harness supplies a balanced sample: all positive
    /// `(u, q)` pairs plus an equal number of negative pairs drawn
    /// across questions (the paper's protocol, Section IV-A).
    ///
    /// # Panics
    ///
    /// Panics when `xs` is empty or lengths mismatch.
    pub fn train(xs: &[Vec<f64>], ys: &[bool], config: &AnswerConfig) -> Self {
        Self::train_resumable(xs, ys, config, None, 0, &mut |_| {})
    }

    /// [`train`](Self::train) with epoch-granular checkpointing: an
    /// optional snapshot to resume from and a cadence (`0` disables)
    /// at which `on_snapshot` receives mid-training state.
    ///
    /// Resuming from a snapshot taken by this method reproduces the
    /// uninterrupted run bitwise. A snapshot that does not match the
    /// model shape (or fails validation) is ignored — training
    /// restarts from scratch — and counted under `ml.resume.invalid`.
    ///
    /// # Panics
    ///
    /// Panics when `xs` is empty or lengths mismatch.
    pub fn train_resumable(
        xs: &[Vec<f64>],
        ys: &[bool],
        config: &AnswerConfig,
        resume: Option<&TrainState>,
        snapshot_every: usize,
        on_snapshot: &mut dyn FnMut(&TrainState),
    ) -> Self {
        let _span = forumcast_obs::span("ml.answer.train");
        assert!(!xs.is_empty(), "need at least one training sample");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut model = LogisticRegression::new(xs[0].len());
        let fit = model.fit_resumable(
            xs,
            ys,
            config.epochs,
            config.learning_rate,
            config.l2,
            &mut rng,
            resume,
            snapshot_every,
            on_snapshot,
        );
        if fit.is_err() {
            // Invalid snapshot: fall back to a from-scratch fit. The
            // failed resume left model and rng untouched.
            forumcast_obs::counter_add("ml.resume.invalid", 1);
            model.fit(
                xs,
                ys,
                config.epochs,
                config.learning_rate,
                config.l2,
                &mut rng,
            );
        }
        AnswerPredictor { model }
    }

    /// Predicted probability that the user answers.
    ///
    /// # Panics
    ///
    /// Panics when `x` has the wrong dimension.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.model.predict_proba(x)
    }

    /// The learned coefficients `β` (one per feature slot), useful
    /// for the feature-importance analyses.
    pub fn coefficients(&self) -> &[f64] {
        self.model.weights()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.model.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..100 {
            let pos = i % 2 == 0;
            let v = if pos { 1.0 } else { -1.0 };
            xs.push(vec![v, 0.5 * v]);
            ys.push(pos);
        }
        (xs, ys)
    }

    #[test]
    fn separates_toy_data() {
        let (xs, ys) = toy();
        let p = AnswerPredictor::train(&xs, &ys, &AnswerConfig::default());
        assert!(p.predict(&[1.0, 0.5]) > 0.9);
        assert!(p.predict(&[-1.0, -0.5]) < 0.1);
    }

    #[test]
    fn coefficients_have_feature_dimension() {
        let (xs, ys) = toy();
        let p = AnswerPredictor::train(&xs, &ys, &AnswerConfig::default());
        assert_eq!(p.coefficients().len(), 2);
        assert_eq!(p.dim(), 2);
        // Positive class sits at positive feature values.
        assert!(p.coefficients()[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one training sample")]
    fn empty_training_panics() {
        AnswerPredictor::train(&[], &[], &AnswerConfig::default());
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let (xs, ys) = toy();
        let cfg = AnswerConfig::default();
        let a = AnswerPredictor::train(&xs, &ys, &cfg);
        let b = AnswerPredictor::train(&xs, &ys, &cfg);
        assert_eq!(a.coefficients(), b.coefficients());
    }

    #[test]
    fn serde_roundtrip() {
        let (xs, ys) = toy();
        let p = AnswerPredictor::train(&xs, &ys, &AnswerConfig::default());
        let json = serde_json::to_string(&p).unwrap();
        let back: AnswerPredictor = serde_json::from_str(&json).unwrap();
        assert_eq!(back.predict(&[1.0, 0.5]), p.predict(&[1.0, 0.5]));
    }

    fn bits(p: &AnswerPredictor) -> Vec<u64> {
        p.coefficients().iter().map(|w| w.to_bits()).collect()
    }

    #[test]
    fn resume_from_every_snapshot_is_bitwise_identical() {
        let (xs, ys) = toy();
        let cfg = AnswerConfig {
            epochs: 40,
            ..AnswerConfig::default()
        };
        let reference = AnswerPredictor::train(&xs, &ys, &cfg);
        let mut snapshots = Vec::new();
        let snapshotted = AnswerPredictor::train_resumable(&xs, &ys, &cfg, None, 9, &mut |s| {
            snapshots.push(s.clone())
        });
        assert_eq!(bits(&reference), bits(&snapshotted));
        assert!(!snapshots.is_empty());
        for snap in &snapshots {
            let snap = TrainState::from_json(&snap.to_json()).unwrap();
            let resumed =
                AnswerPredictor::train_resumable(&xs, &ys, &cfg, Some(&snap), 0, &mut |_| {});
            assert_eq!(
                bits(&reference),
                bits(&resumed),
                "resume from epoch {}",
                snap.epoch
            );
        }
    }

    #[test]
    fn mismatched_resume_snapshot_falls_back_to_scratch() {
        let (xs, ys) = toy();
        let cfg = AnswerConfig::default();
        let mut snapshots = Vec::new();
        AnswerPredictor::train_resumable(&xs, &ys, &cfg, None, 10, &mut |s| {
            snapshots.push(s.clone())
        });
        // Three-feature inputs: the two-feature snapshot above no
        // longer fits and must be ignored.
        let xs3: Vec<Vec<f64>> = xs.iter().map(|x| vec![x[0], x[1], 0.0]).collect();
        let reference = AnswerPredictor::train(&xs3, &ys, &cfg);
        let resumed =
            AnswerPredictor::train_resumable(&xs3, &ys, &cfg, Some(&snapshots[0]), 0, &mut |_| {});
        assert_eq!(bits(&reference), bits(&resumed));
    }
}
