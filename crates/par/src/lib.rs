//! Deterministic scoped-thread parallelism for forumcast's hot
//! paths: centrality accumulation, LDA fold-in, feature extraction,
//! and cross-validation folds.
//!
//! # Determinism contract
//!
//! Every helper here produces **bitwise-identical** output for any
//! thread count, including 1. [`parallel_map`] guarantees this by
//! construction (independent items, output in input order).
//! [`parallel_chunk_fold`] guarantees it by fixing the reduction
//! tree: items are split into fixed-size chunks *independent of the
//! thread count*, each chunk is folded serially in item order, and
//! chunk results merge in chunk order — so floating-point sums
//! associate identically no matter how many workers ran.
//!
//! # Thread-count resolution
//!
//! The worker count flows from (highest priority first) an explicit
//! `--threads` CLI flag, the `FORUMCAST_THREADS` environment
//! variable, then [`std::thread::available_parallelism`]. Library
//! APIs take the count as an explicit argument so tests can pin it;
//! entry points resolve it once via [`resolve_threads`].

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "FORUMCAST_THREADS";

/// The `FORUMCAST_THREADS` override, when set to a positive integer.
pub fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
}

/// Default worker-thread count: the `FORUMCAST_THREADS` override,
/// else the machine's available parallelism.
pub fn configured_threads() -> usize {
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Resolves a requested thread count: `0` means "auto"
/// ([`configured_threads`]), anything else is taken as-is.
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        configured_threads()
    } else {
        requested
    }
}

/// Auto thread count capped at `cap` — for coarse work like CV folds
/// where oversubscription wastes memory. An explicit
/// `FORUMCAST_THREADS` wins over the cap.
pub fn default_threads(cap: usize) -> usize {
    match env_threads() {
        Some(n) => n,
        None => configured_threads().min(cap.max(1)),
    }
}

/// Runs `f` over `items` on up to `max_threads` scoped worker
/// threads, returning results in input order. Work is claimed item
/// by item from a shared counter, so uneven item costs balance
/// across workers; output order (and therefore every downstream
/// result) is independent of the thread count. Falls back to plain
/// iteration for a single item or `max_threads <= 1`.
///
/// # Example
///
/// ```
/// use forumcast_par::parallel_map;
/// let squares = parallel_map(&[1, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: &[T], max_threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    forumcast_obs::counter_add("par.tasks", items.len() as u64);
    if items.len() <= 1 || max_threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let threads = max_threads.min(items.len());
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    let slots = parking_lot::Mutex::new(&mut results);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                // Claim a telemetry shard for this worker's lifetime:
                // registration cost lands here (before any timed
                // item), and the shard returns to the pool when the
                // scope ends instead of at thread exit.
                let _obs = forumcast_obs::worker_shard();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = f(&items[i]);
                    slots.lock()[i] = Some(out);
                }
            });
        }
    })
    .expect("worker thread panicked");

    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

/// Fallible version of [`parallel_map`]: runs `f` over `items` and
/// short-circuits on failure. When any item fails, in-flight items
/// finish, pending items are skipped, and the error with the
/// **lowest item index** is returned — so which error a caller sees
/// never depends on thread interleaving. On success the results come
/// back in input order, bitwise-identical to a sequential run.
///
/// # Errors
///
/// Returns the lowest-index `Err` produced by `f`.
pub fn parallel_try_map<T, U, E, F>(items: &[T], max_threads: usize, f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    forumcast_obs::counter_add("par.tasks", items.len() as u64);
    if items.len() <= 1 || max_threads <= 1 {
        return items.iter().map(&f).collect();
    }
    let threads = max_threads.min(items.len());
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let mut results: Vec<Option<Result<U, E>>> = (0..items.len()).map(|_| None).collect();
    let slots = parking_lot::Mutex::new(&mut results);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let _obs = forumcast_obs::worker_shard();
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let out = f(&items[i]);
                    if out.is_err() {
                        stop.store(true, Ordering::Relaxed);
                    }
                    slots.lock()[i] = Some(out);
                }
            });
        }
    })
    .expect("worker thread panicked");

    // Items are claimed in index order, so every unprocessed slot
    // sits *after* the first error — scanning in order finds the
    // lowest-index error before any empty slot.
    let mut out = Vec::with_capacity(items.len());
    for slot in results {
        match slot {
            Some(Ok(v)) => out.push(v),
            Some(Err(e)) => return Err(e),
            None => unreachable!("empty slot before the first error"),
        }
    }
    Ok(out)
}

/// Number of items per chunk in [`parallel_chunk_fold`]. Fixed (not
/// derived from the thread count) so the floating-point reduction
/// tree — and therefore the bitwise result — never depends on how
/// many workers ran.
pub const CHUNK_SIZE: usize = 64;

/// The fixed chunk decomposition of `0..num_items` used by
/// [`parallel_chunk_fold`]: [`CHUNK_SIZE`]-item ranges in item order,
/// the last one short. A pure function of `num_items`, so serial
/// fallbacks that fold these ranges and merge them in order are
/// bitwise-identical to the parallel reduction — callers that must
/// match the parallel tree (e.g. gradient accumulation in
/// `forumcast-ml`) iterate this instead of re-deriving the split.
pub fn chunk_ranges(num_items: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    (0..num_items)
        .step_by(CHUNK_SIZE)
        .map(move |start| start..(start + CHUNK_SIZE).min(num_items))
}

/// Deterministic parallel fold: splits `0..num_items` into
/// [`CHUNK_SIZE`]-item chunks, folds each chunk serially in item
/// order with `fold_chunk` (producing a per-chunk accumulator), and
/// merges accumulators **in chunk order** with `merge`.
///
/// Because the chunk structure is a pure function of `num_items`,
/// the same reduction tree runs for 1 thread and N threads, making
/// non-associative accumulations (floating-point sums) bitwise
/// reproducible.
///
/// `fold_chunk` receives the chunk's item range and returns its
/// accumulator; `merge` folds accumulators into the final value.
pub fn parallel_chunk_fold<A, F, M, R>(
    num_items: usize,
    max_threads: usize,
    fold_chunk: F,
    merge: M,
) -> R
where
    A: Send,
    F: Fn(std::ops::Range<usize>) -> A + Sync,
    M: FnOnce(Vec<A>) -> R,
{
    let chunks: Vec<std::ops::Range<usize>> = chunk_ranges(num_items).collect();
    let partials = parallel_map(&chunks, max_threads, |r| fold_chunk(r.clone()));
    merge(partials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_fallback() {
        assert_eq!(parallel_map(&[5], 4, |&x: &i32| x + 1), vec![6]);
        assert_eq!(parallel_map(&[1, 2], 1, |&x: &i32| x + 1), vec![2, 3]);
        assert_eq!(
            parallel_map::<i32, i32, _>(&[], 4, |&x| x),
            Vec::<i32>::new()
        );
    }

    #[test]
    fn actually_uses_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..64).collect();
        parallel_map(&items, 4, |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert!(ids.lock().unwrap().len() > 1);
    }

    #[test]
    fn try_map_success_matches_parallel_map() {
        let items: Vec<usize> = (0..50).collect();
        for threads in [1, 4] {
            let out: Result<Vec<usize>, ()> = parallel_try_map(&items, threads, |&x| Ok(x * 3));
            assert_eq!(out.unwrap(), parallel_map(&items, threads, |&x| x * 3));
        }
    }

    #[test]
    fn try_map_returns_lowest_index_error_for_any_thread_count() {
        let items: Vec<usize> = (0..40).collect();
        for threads in [1, 2, 8] {
            let out: Result<Vec<usize>, usize> = parallel_try_map(&items, threads, |&x| {
                if x == 7 || x == 23 {
                    Err(x)
                } else {
                    Ok(x)
                }
            });
            assert_eq!(out.unwrap_err(), 7, "threads={threads}");
        }
    }

    #[test]
    fn try_map_stops_claiming_after_an_error() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<usize> = (0..1000).collect();
        let ran = AtomicUsize::new(0);
        let out: Result<Vec<()>, ()> = parallel_try_map(&items, 4, |&x| {
            ran.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_micros(100));
            if x == 0 {
                Err(())
            } else {
                Ok(())
            }
        });
        assert!(out.is_err());
        assert!(
            ran.load(Ordering::Relaxed) < items.len(),
            "all items ran despite an early error"
        );
    }

    #[test]
    fn worker_shards_recycle_across_parallel_sections() {
        let _g = forumcast_obs::arm();
        let items: Vec<usize> = (0..8).collect();
        for _ in 0..4 {
            parallel_map(&items, 2, |&x| {
                forumcast_obs::counter_add("par.test.hits", 1);
                x
            });
        }
        let log = forumcast_obs::drain().unwrap();
        assert!(
            log.counters
                .iter()
                .any(|(n, v)| n == "par.test.hits" && *v == 32),
            "{:?}",
            log.counters
        );
        // Main thread + at most 2 concurrent workers; later sections
        // must reuse pooled shards instead of growing the registry.
        let (created, reused) = forumcast_obs::shard_stats();
        assert!(created <= 3, "created {created} shards for 2 workers");
        assert!(reused >= 1, "no pool reuse across sections");
    }

    #[test]
    fn default_threads_is_positive_and_capped() {
        assert!(default_threads(4) >= 1);
        if env_threads().is_none() {
            assert!(default_threads(4) <= 4);
            assert_eq!(default_threads(0), 1);
        }
    }

    #[test]
    fn resolve_threads_zero_means_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn chunk_fold_sums_match_serial_for_any_thread_count() {
        // Floating-point values chosen to make association visible:
        // widely varying magnitudes.
        let values: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.7391).sin() * 10f64.powi((i % 7) - 3))
            .collect();
        let fold = |threads: usize| {
            parallel_chunk_fold(
                values.len(),
                threads,
                |range| values[range].iter().sum::<f64>(),
                |partials| partials.into_iter().sum::<f64>(),
            )
        };
        let serial = fold(1);
        for threads in [2, 3, 7, 16] {
            let par = fold(threads);
            assert_eq!(
                serial.to_bits(),
                par.to_bits(),
                "thread count {threads} changed the reduction"
            );
        }
    }

    #[test]
    fn chunk_ranges_cover_items_exactly_once_in_order() {
        for n in [0, 1, 63, 64, 65, 128, 1000] {
            let ranges: Vec<_> = chunk_ranges(n).collect();
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "n={n}");
                assert!(r.len() <= CHUNK_SIZE && !r.is_empty(), "n={n} range {r:?}");
                next = r.end;
            }
            assert_eq!(next, n);
        }
    }

    #[test]
    fn chunk_fold_handles_empty_and_small_inputs() {
        let sum = parallel_chunk_fold(0, 4, |_| 0.0f64, |p| p.into_iter().sum::<f64>());
        assert_eq!(sum, 0.0);
        let sum = parallel_chunk_fold(3, 4, |r| r.len() as f64, |p| p.into_iter().sum::<f64>());
        assert_eq!(sum, 3.0);
    }
}
