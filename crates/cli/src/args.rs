//! Hand-rolled argument parsing for the `forumcast` CLI (no external
//! dependencies; the allowed-crate list has no argument parser).

use std::fmt;

use forumcast_features::LdaSampler;
use forumcast_resilience::CkptFormat;
use forumcast_wal::FsyncPolicy;

/// Usage text printed on parse errors and `--help`.
pub const USAGE: &str = "\
usage: forumcast <command> [options]

commands:
  generate   --scale <small|medium|paper> [--seed N] [--topics K]
             [--threads N] --out <file>
  stats      --data <file> [--gate]
  train      --data <file> [--fast] [--seed N]
             [--lda-sampler <dense|sparse>] --out <model-file>
  predict    --data <file> --model <model-file> --question <id> --user <id>
  route      --data <file> --model <model-file> --question <id>
             [--lambda X] [--epsilon X] [--capacity X] [--top N]
  evaluate   [--scale <quick|standard|paper>] [--threads N]
             [--lda-sampler <dense|sparse>] [--topics K]
             [--data-dir <dir>]
             [--resume <checkpoint-file>] [--snapshot-every N]
             [--ckpt-format <binary|json>]
             [--faults <spec>] [--trace <trace-file>] [--metrics]
             [--bench-json <report-file>]
  ckpt       <inspect|verify|repair> --file <checkpoint-file>
  wal        <inspect|verify|repair|replay> --dir <wal-dir> [--threads N]
  ingest     --wal <wal-dir> [--scale <small|medium|paper>] [--seed N]
             [--threads N] [--fsync <always|rotate|N>] [--segment-bytes N]
             [--faults <spec>] [--trace <trace-file>] [--metrics]
             [--bench-json <report-file>]
  bench      compare <baseline.json> <current.json>
             [--tolerance X] [--p99-tolerance X] [--min-ms MS]
  abtest     [--scale <quick|standard>] [--lambda X]
  help

`generate --threads` fans the sharded synthesizer out over N workers
(0 = auto); output is bitwise-identical at any thread count. `stats
--gate` additionally checks the dataset's shape statistics
(unanswered fraction, answers per answered question, posts per user,
response-delay quantiles) against the paper's Section III ranges and
exits non-zero on drift. `evaluate --data-dir` spills the experiment
to a columnar on-disk store in the given directory and streams folds
back one at a time — metrics are bitwise-identical to the in-memory
path while peak RSS stays around one fold; this path has no
checkpoint support, so it rejects `--resume`.
`--resume` saves completed cross-validation folds to the given file
and skips them on restart; `--snapshot-every` additionally snapshots
the in-flight fold's full trainer state every N epochs so a mid-fold
crash resumes without recomputing the fold (0 disables).
`--ckpt-format` picks the checkpoint encoding: `binary` (default) is
the framed, CRC-checksummed store, `json` the legacy text files;
loading sniffs the content, so either build resumes the other's
files. `ckpt inspect` prints a checkpoint's header and frame layout,
`ckpt verify` exits non-zero naming the first damaged frame, and
`ckpt repair` truncates the file to its last valid frame. `--faults`
arms the deterministic fault injector (same grammar as the
FORUMCAST_FAULTS env var, e.g. `fold-panic:1`). `--trace` writes a
Chrome trace-event JSON file of pipeline spans (open in Perfetto;
FORUMCAST_TRACE sets a default path, also honoured by `train` and
`stats`) and `--metrics` prints a per-span wall/self-time summary.
`wal` operates on a durable event log directory: `inspect` lists
segments with their event-id ranges and any damage, `verify` exits
non-zero naming the first damaged segment, `repair` heals the log in
place (reclaims stale `.tmp` files, truncates torn tails to the valid
frame prefix, quarantines CRC-damaged segments to `.corrupt` slots),
and `replay` folds the log into a forum state and prints its hash —
identical at any `--threads` count. `ingest` generates the synthetic
event stream for `--scale`/`--seed` and appends it to the WAL at
`--wal`, resuming idempotently from the log's first missing event id
(so a killed run converges when re-run); `--fsync` picks the append
durability cadence (`always`, `rotate`, or every-N) and
`--segment-bytes` the rotation threshold.
`--lda-sampler` picks the Gibbs kernel: `dense` is the reference
O(K)-per-token sampler, `sparse` the bucket-decomposed fast path
(same model, different — still seed-deterministic — chain). On
`evaluate`, `--topics` overrides the scale preset's LDA topic count
(priors re-derive from K; iterations/seed/sampler are kept).
`--bench-json` writes a machine-readable bench report (versioned
`forumcast-bench` schema: wall time, per-span totals and
p50/p90/p99/max latencies, counter throughputs). `bench compare`
diffs two such reports and exits non-zero when the current run
regressed past tolerance: `--tolerance` bounds the wall-time and
per-span total ratio (default 1.5), `--p99-tolerance` the per-span
p99 ratio (default 2.0), and `--min-ms` is the noise floor below
which baseline durations never gate (default 20).
";

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic dataset and write native JSON.
    Generate {
        /// Dataset scale preset.
        scale: String,
        /// RNG seed.
        seed: Option<u64>,
        /// Latent topic count.
        topics: Option<usize>,
        /// Worker threads for sharded generation (0 = auto); output
        /// is bitwise-identical at any count.
        threads: usize,
        /// Output path.
        out: String,
    },
    /// Print dataset + SLN statistics.
    Stats {
        /// Dataset path (native JSON).
        data: String,
        /// Gate the shape statistics against the paper's Section III
        /// ranges, exiting non-zero on drift.
        gate: bool,
    },
    /// Train the joint predictor and save it.
    Train {
        /// Dataset path.
        data: String,
        /// Use fast training settings.
        fast: bool,
        /// Sampling seed.
        seed: Option<u64>,
        /// LDA Gibbs sampler implementation.
        lda_sampler: LdaSampler,
        /// Output model path.
        out: String,
    },
    /// Predict (â, v̂, r̂) for one user/question pair.
    Predict {
        /// Dataset path.
        data: String,
        /// Model path.
        model: String,
        /// Question id.
        question: u32,
        /// User id.
        user: u32,
    },
    /// Recommend answerers for a question.
    Route {
        /// Dataset path.
        data: String,
        /// Model path.
        model: String,
        /// Question id.
        question: u32,
        /// Quality/timing tradeoff λ.
        lambda: f64,
        /// Eligibility threshold ε.
        epsilon: f64,
        /// Per-user capacity.
        capacity: f64,
        /// How many recommendations to print.
        top: usize,
    },
    /// Run the Table-I evaluation.
    Evaluate {
        /// Protocol scale.
        scale: String,
        /// Worker threads (0 = auto: `FORUMCAST_THREADS` env var,
        /// else available parallelism).
        threads: usize,
        /// LDA Gibbs sampler implementation.
        lda_sampler: LdaSampler,
        /// Latent topic count override (`None` keeps the scale
        /// preset's default).
        topics: Option<usize>,
        /// Spill directory for the columnar on-disk experiment store:
        /// when set, folds stream from disk one at a time instead of
        /// holding the whole feature matrix resident.
        data_dir: Option<String>,
        /// Checkpoint file: completed folds are saved here and
        /// skipped when the run restarts with the same path.
        resume: Option<String>,
        /// Sub-fold snapshot cadence: with `--resume`, the in-flight
        /// fold persists its full trainer state every N epochs
        /// (0 disables mid-fold snapshots).
        snapshot_every: usize,
        /// On-disk checkpoint encoding (framed binary store or the
        /// legacy JSON).
        ckpt_format: CkptFormat,
        /// Fault-injection spec (same grammar as `FORUMCAST_FAULTS`).
        faults: Option<String>,
        /// Chrome trace-event JSON output path (`FORUMCAST_TRACE`
        /// supplies a default when the flag is absent).
        trace: Option<String>,
        /// Print the per-span timing summary after the run.
        metrics: bool,
        /// Machine-readable bench report output path (versioned
        /// `forumcast-bench` schema).
        bench_json: Option<String>,
    },
    /// Inspect, verify, or repair a checkpoint file.
    Ckpt {
        /// What to do with the file.
        action: CkptAction,
        /// The checkpoint file.
        file: String,
    },
    /// Inspect, verify, repair, or replay a write-ahead event log.
    Wal {
        /// What to do with the log.
        action: WalAction,
        /// The WAL directory.
        dir: String,
        /// Worker threads for replay decoding (0 = auto).
        threads: usize,
    },
    /// Append a synthetic event stream into a WAL, folding it into a
    /// forum state and reporting the state hash.
    Ingest {
        /// The WAL directory.
        wal: String,
        /// Synthetic dataset scale preset.
        scale: String,
        /// Generator seed.
        seed: Option<u64>,
        /// Worker threads for the replay check (0 = auto).
        threads: usize,
        /// Append-path fsync cadence.
        fsync: FsyncPolicy,
        /// Segment rotation threshold in bytes.
        segment_bytes: u64,
        /// Fault-injection spec (same grammar as `FORUMCAST_FAULTS`).
        faults: Option<String>,
        /// Chrome trace-event JSON output path.
        trace: Option<String>,
        /// Print the per-span timing summary after the run.
        metrics: bool,
        /// Machine-readable bench report output path.
        bench_json: Option<String>,
    },
    /// Diff two bench reports and gate on regressions.
    BenchCompare {
        /// Committed baseline report path.
        baseline: String,
        /// Freshly emitted report path.
        current: String,
        /// Max allowed current/baseline ratio for wall time and
        /// per-span totals.
        tolerance: f64,
        /// Max allowed ratio for per-span p99.
        p99_tolerance: f64,
        /// Baseline durations below this (ms) never gate.
        min_ms: f64,
    },
    /// Run the simulated A/B test.
    AbTest {
        /// Scale preset.
        scale: String,
        /// Router λ.
        lambda: f64,
    },
    /// Print usage.
    Help,
}

/// Sub-action of the `ckpt` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptAction {
    /// Print the header and frame layout.
    Inspect,
    /// Exit non-zero naming the first damaged frame, if any.
    Verify,
    /// Truncate the file to its last valid frame.
    Repair,
}

/// Sub-action of the `wal` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalAction {
    /// List segments, event-id ranges, and any damage.
    Inspect,
    /// Exit non-zero naming the first damaged segment, if any.
    Verify,
    /// Heal the log in place (tmp reclaim, torn-tail truncation,
    /// segment quarantine).
    Repair,
    /// Fold the log into a forum state and print its hash.
    Replay,
}

/// Argument-parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parses `argv` (without the program name) into a [`Command`].
///
/// # Errors
///
/// Returns [`ParseError`] on unknown commands/flags, missing required
/// options, or malformed values.
pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Command, ParseError> {
    let mut args = argv.into_iter();
    let cmd = args
        .next()
        .ok_or_else(|| ParseError("missing command".into()))?;
    let rest: Vec<String> = args.collect();
    // `ckpt` takes a positional action word before its options.
    if cmd == "ckpt" {
        let action = match rest.first().map(String::as_str) {
            Some("inspect") => CkptAction::Inspect,
            Some("verify") => CkptAction::Verify,
            Some("repair") => CkptAction::Repair,
            Some(other) => {
                return Err(ParseError(format!(
                    "unknown ckpt action `{other}` (inspect|verify|repair)"
                )))
            }
            None => {
                return Err(ParseError(
                    "ckpt requires an action: inspect|verify|repair".into(),
                ))
            }
        };
        let opts = Options::parse(&rest[1..])?;
        let file = opts.require("file")?;
        opts.reject_unknown(&["file"])?;
        return Ok(Command::Ckpt { action, file });
    }
    // `wal` likewise takes a positional action word.
    if cmd == "wal" {
        let action = match rest.first().map(String::as_str) {
            Some("inspect") => WalAction::Inspect,
            Some("verify") => WalAction::Verify,
            Some("repair") => WalAction::Repair,
            Some("replay") => WalAction::Replay,
            Some(other) => {
                return Err(ParseError(format!(
                    "unknown wal action `{other}` (inspect|verify|repair|replay)"
                )))
            }
            None => {
                return Err(ParseError(
                    "wal requires an action: inspect|verify|repair|replay".into(),
                ))
            }
        };
        let opts = Options::parse(&rest[1..])?;
        let c = Command::Wal {
            action,
            dir: opts.require("dir")?,
            threads: opts.get_parsed_or("threads", 0)?,
        };
        opts.reject_unknown(&["dir", "threads"])?;
        return Ok(c);
    }
    // `bench` takes an action word plus two positional report paths.
    if cmd == "bench" {
        match rest.first().map(String::as_str) {
            Some("compare") => {}
            Some(other) => {
                return Err(ParseError(format!(
                    "unknown bench action `{other}` (compare)"
                )))
            }
            None => return Err(ParseError("bench requires an action: compare".into())),
        }
        let is_path = |s: &&String| !s.starts_with("--");
        let baseline = rest
            .get(1)
            .filter(is_path)
            .ok_or_else(|| ParseError("bench compare requires <baseline> <current>".into()))?
            .clone();
        let current = rest
            .get(2)
            .filter(is_path)
            .ok_or_else(|| ParseError("bench compare requires <baseline> <current>".into()))?
            .clone();
        let defaults = forumcast_obs::CompareOptions::default();
        let opts = Options::parse(&rest[3..])?;
        let c = Command::BenchCompare {
            baseline,
            current,
            tolerance: opts.get_parsed_or("tolerance", defaults.tolerance)?,
            p99_tolerance: opts.get_parsed_or("p99-tolerance", defaults.p99_tolerance)?,
            min_ms: opts.get_parsed_or("min-ms", defaults.min_ms)?,
        };
        opts.reject_unknown(&["tolerance", "p99-tolerance", "min-ms"])?;
        return Ok(c);
    }
    let opts = Options::parse(&rest)?;
    match cmd.as_str() {
        "generate" => {
            let c = Command::Generate {
                scale: opts.get_or("scale", "small")?,
                seed: opts.get_parsed_opt("seed")?,
                topics: opts.get_parsed_opt("topics")?,
                threads: opts.get_parsed_or("threads", 0)?,
                out: opts.require("out")?,
            };
            opts.reject_unknown(&["scale", "seed", "topics", "threads", "out"])?;
            Ok(c)
        }
        "stats" => {
            let c = Command::Stats {
                data: opts.require("data")?,
                gate: opts.flag("gate"),
            };
            opts.reject_unknown(&["data", "gate"])?;
            Ok(c)
        }
        "train" => {
            let c = Command::Train {
                data: opts.require("data")?,
                fast: opts.flag("fast"),
                seed: opts.get_parsed_opt("seed")?,
                lda_sampler: opts.get_parsed_or("lda-sampler", LdaSampler::Dense)?,
                out: opts.require("out")?,
            };
            opts.reject_unknown(&["data", "fast", "seed", "lda-sampler", "out"])?;
            Ok(c)
        }
        "predict" => {
            let c = Command::Predict {
                data: opts.require("data")?,
                model: opts.require("model")?,
                question: opts.get_parsed("question")?,
                user: opts.get_parsed("user")?,
            };
            opts.reject_unknown(&["data", "model", "question", "user"])?;
            Ok(c)
        }
        "route" => {
            let c = Command::Route {
                data: opts.require("data")?,
                model: opts.require("model")?,
                question: opts.get_parsed("question")?,
                lambda: opts.get_parsed_or("lambda", 0.5)?,
                epsilon: opts.get_parsed_or("epsilon", 0.3)?,
                capacity: opts.get_parsed_or("capacity", 1.0)?,
                top: opts.get_parsed_or("top", 5)?,
            };
            opts.reject_unknown(&[
                "data", "model", "question", "lambda", "epsilon", "capacity", "top",
            ])?;
            Ok(c)
        }
        "evaluate" => {
            let c = Command::Evaluate {
                scale: opts.get_or("scale", "quick")?,
                threads: opts.get_parsed_or("threads", 0)?,
                lda_sampler: opts.get_parsed_or("lda-sampler", LdaSampler::Dense)?,
                topics: opts.get_parsed_opt("topics")?,
                data_dir: opts.get("data-dir").map(str::to_owned),
                resume: opts.get("resume").map(str::to_owned),
                snapshot_every: opts.get_parsed_or(
                    "snapshot-every",
                    forumcast_eval::CvOptions::default().snapshot_every,
                )?,
                ckpt_format: match opts.get("ckpt-format") {
                    None => CkptFormat::default(),
                    Some(raw) => CkptFormat::parse(raw)
                        .map_err(|e| ParseError(format!("invalid --ckpt-format: {e}")))?,
                },
                faults: opts.get("faults").map(str::to_owned),
                trace: opts.get("trace").map(str::to_owned),
                metrics: opts.flag("metrics"),
                bench_json: opts.get("bench-json").map(str::to_owned),
            };
            opts.reject_unknown(&[
                "scale",
                "threads",
                "lda-sampler",
                "topics",
                "data-dir",
                "resume",
                "snapshot-every",
                "ckpt-format",
                "faults",
                "trace",
                "metrics",
                "bench-json",
            ])?;
            Ok(c)
        }
        "ingest" => {
            let c = Command::Ingest {
                wal: opts.require("wal")?,
                scale: opts.get_or("scale", "small")?,
                seed: opts.get_parsed_opt("seed")?,
                threads: opts.get_parsed_or("threads", 0)?,
                fsync: match opts.get("fsync") {
                    None => FsyncPolicy::default(),
                    Some(raw) => FsyncPolicy::parse(raw)
                        .map_err(|e| ParseError(format!("invalid --fsync: {e}")))?,
                },
                segment_bytes: opts
                    .get_parsed_or("segment-bytes", forumcast_wal::DEFAULT_SEGMENT_BYTES)?,
                faults: opts.get("faults").map(str::to_owned),
                trace: opts.get("trace").map(str::to_owned),
                metrics: opts.flag("metrics"),
                bench_json: opts.get("bench-json").map(str::to_owned),
            };
            opts.reject_unknown(&[
                "wal",
                "scale",
                "seed",
                "threads",
                "fsync",
                "segment-bytes",
                "faults",
                "trace",
                "metrics",
                "bench-json",
            ])?;
            Ok(c)
        }
        "abtest" => {
            let c = Command::AbTest {
                scale: opts.get_or("scale", "quick")?,
                lambda: opts.get_parsed_or("lambda", 0.5)?,
            };
            opts.reject_unknown(&["scale", "lambda"])?;
            Ok(c)
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!("unknown command `{other}`"))),
    }
}

/// Flat `--key value` / `--flag` option bag.
struct Options {
    pairs: Vec<(String, Option<String>)>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Options, ParseError> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| ParseError(format!("expected an option, got `{arg}`")))?;
            // A following token that is not an option is this option's
            // value; otherwise it is a boolean flag.
            let value = args.get(i + 1).filter(|v| !v.starts_with("--"));
            match value {
                Some(v) => {
                    pairs.push((key.to_owned(), Some(v.clone())));
                    i += 2;
                }
                None => {
                    pairs.push((key.to_owned(), None));
                    i += 1;
                }
            }
        }
        Ok(Options { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    fn flag(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }

    fn require(&self, key: &str) -> Result<String, ParseError> {
        self.get(key)
            .map(str::to_owned)
            .ok_or_else(|| ParseError(format!("missing required option --{key}")))
    }

    fn get_or(&self, key: &str, default: &str) -> Result<String, ParseError> {
        Ok(self.get(key).unwrap_or(default).to_owned())
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str) -> Result<T, ParseError> {
        let raw = self.require(key)?;
        raw.parse()
            .map_err(|_| ParseError(format!("invalid value `{raw}` for --{key}")))
    }

    fn get_parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ParseError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ParseError(format!("invalid value `{raw}` for --{key}"))),
        }
    }

    fn get_parsed_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, ParseError> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .parse()
                .map(Some)
                .map_err(|_| ParseError(format!("invalid value `{raw}` for --{key}"))),
        }
    }

    fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ParseError> {
        for (k, _) in &self.pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(ParseError(format!("unknown option --{k}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn parses_generate() {
        let cmd = parse(argv("generate --scale medium --seed 9 --out x.json")).unwrap();
        assert_eq!(
            cmd,
            Command::Generate {
                scale: "medium".into(),
                seed: Some(9),
                topics: None,
                threads: 0,
                out: "x.json".into()
            }
        );
    }

    #[test]
    fn generate_defaults_scale() {
        let cmd = parse(argv("generate --out y.json")).unwrap();
        match cmd {
            Command::Generate { scale, seed, .. } => {
                assert_eq!(scale, "small");
                assert_eq!(seed, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn missing_required_option_errors() {
        let err = parse(argv("generate --scale small")).unwrap_err();
        assert!(err.to_string().contains("--out"));
    }

    #[test]
    fn unknown_option_rejected() {
        let err = parse(argv("stats --data d.json --bogus 1")).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
    }

    #[test]
    fn unknown_command_rejected() {
        let err = parse(argv("frobnicate")).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn parses_route_with_defaults() {
        let cmd = parse(argv("route --data d.json --model m.json --question 4")).unwrap();
        match cmd {
            Command::Route {
                lambda,
                epsilon,
                capacity,
                top,
                question,
                ..
            } => {
                assert_eq!(question, 4);
                assert_eq!(lambda, 0.5);
                assert_eq!(epsilon, 0.3);
                assert_eq!(capacity, 1.0);
                assert_eq!(top, 5);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_evaluate_threads() {
        let cmd = parse(argv("evaluate --scale quick --threads 4")).unwrap();
        assert_eq!(
            cmd,
            Command::Evaluate {
                scale: "quick".into(),
                threads: 4,
                lda_sampler: LdaSampler::Dense,
                topics: None,
                data_dir: None,
                resume: None,
                snapshot_every: 25,
                ckpt_format: CkptFormat::Binary,
                faults: None,
                trace: None,
                metrics: false,
                bench_json: None,
            }
        );
        // Default: 0 = auto.
        let cmd = parse(argv("evaluate")).unwrap();
        assert_eq!(
            cmd,
            Command::Evaluate {
                scale: "quick".into(),
                threads: 0,
                lda_sampler: LdaSampler::Dense,
                topics: None,
                data_dir: None,
                resume: None,
                snapshot_every: 25,
                ckpt_format: CkptFormat::Binary,
                faults: None,
                trace: None,
                metrics: false,
                bench_json: None,
            }
        );
    }

    #[test]
    fn parses_evaluate_resume_and_faults() {
        let cmd = parse(argv("evaluate --resume cv.json --faults fold-panic:1")).unwrap();
        assert_eq!(
            cmd,
            Command::Evaluate {
                scale: "quick".into(),
                threads: 0,
                lda_sampler: LdaSampler::Dense,
                topics: None,
                data_dir: None,
                resume: Some("cv.json".into()),
                snapshot_every: 25,
                ckpt_format: CkptFormat::Binary,
                faults: Some("fold-panic:1".into()),
                trace: None,
                metrics: false,
                bench_json: None,
            }
        );
    }

    #[test]
    fn parses_evaluate_snapshot_every() {
        let cmd = parse(argv("evaluate --resume cv.json --snapshot-every 2")).unwrap();
        match cmd {
            Command::Evaluate { snapshot_every, .. } => assert_eq!(snapshot_every, 2),
            other => panic!("{other:?}"),
        }
        // 0 explicitly disables mid-fold snapshots.
        let cmd = parse(argv("evaluate --snapshot-every 0")).unwrap();
        match cmd {
            Command::Evaluate { snapshot_every, .. } => assert_eq!(snapshot_every, 0),
            other => panic!("{other:?}"),
        }
        let err = parse(argv("evaluate --snapshot-every lots")).unwrap_err();
        assert!(err.to_string().contains("lots"));
    }

    #[test]
    fn parses_evaluate_trace_and_metrics() {
        let cmd = parse(argv("evaluate --trace out.json --metrics")).unwrap();
        assert_eq!(
            cmd,
            Command::Evaluate {
                scale: "quick".into(),
                threads: 0,
                lda_sampler: LdaSampler::Dense,
                topics: None,
                data_dir: None,
                resume: None,
                snapshot_every: 25,
                ckpt_format: CkptFormat::Binary,
                faults: None,
                trace: Some("out.json".into()),
                metrics: true,
                bench_json: None,
            }
        );
    }

    #[test]
    fn parses_evaluate_bench_json() {
        let cmd = parse(argv("evaluate --bench-json bench.json")).unwrap();
        match cmd {
            Command::Evaluate { bench_json, .. } => {
                assert_eq!(bench_json.as_deref(), Some("bench.json"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_bench_compare() {
        let cmd = parse(argv("bench compare base.json cur.json")).unwrap();
        assert_eq!(
            cmd,
            Command::BenchCompare {
                baseline: "base.json".into(),
                current: "cur.json".into(),
                tolerance: 1.5,
                p99_tolerance: 2.0,
                min_ms: 20.0,
            }
        );
        let cmd = parse(argv(
            "bench compare a.json b.json --tolerance 1.2 --p99-tolerance 3 --min-ms 5",
        ))
        .unwrap();
        match cmd {
            Command::BenchCompare {
                tolerance,
                p99_tolerance,
                min_ms,
                ..
            } => {
                assert_eq!(tolerance, 1.2);
                assert_eq!(p99_tolerance, 3.0);
                assert_eq!(min_ms, 5.0);
            }
            other => panic!("{other:?}"),
        }
        let err = parse(argv("bench compare only-one.json")).unwrap_err();
        assert!(err.to_string().contains("<baseline> <current>"), "{err}");
        let err = parse(argv("bench diff a b")).unwrap_err();
        assert!(err.to_string().contains("diff"), "{err}");
        let err = parse(argv("bench")).unwrap_err();
        assert!(err.to_string().contains("compare"), "{err}");
    }

    #[test]
    fn parses_lda_sampler_spellings() {
        let cmd = parse(argv("evaluate --lda-sampler sparse")).unwrap();
        match cmd {
            Command::Evaluate { lda_sampler, .. } => assert_eq!(lda_sampler, LdaSampler::Sparse),
            other => panic!("{other:?}"),
        }
        let cmd = parse(argv("train --data d.json --lda-sampler dense --out m.json")).unwrap();
        match cmd {
            Command::Train { lda_sampler, .. } => assert_eq!(lda_sampler, LdaSampler::Dense),
            other => panic!("{other:?}"),
        }
        let err = parse(argv("evaluate --lda-sampler turbo")).unwrap_err();
        assert!(err.to_string().contains("turbo"), "{err}");
    }

    #[test]
    fn parses_flags_without_values() {
        let cmd = parse(argv("train --data d.json --fast --out m.json")).unwrap();
        match cmd {
            Command::Train { fast, .. } => assert!(fast),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_numbers_error() {
        let err = parse(argv("predict --data d --model m --question abc --user 1")).unwrap_err();
        assert!(err.to_string().contains("abc"));
    }

    #[test]
    fn parses_ckpt_format() {
        let cmd = parse(argv("evaluate --resume cv.ckpt --ckpt-format json")).unwrap();
        match cmd {
            Command::Evaluate { ckpt_format, .. } => assert_eq!(ckpt_format, CkptFormat::Json),
            other => panic!("{other:?}"),
        }
        let err = parse(argv("evaluate --ckpt-format yaml")).unwrap_err();
        assert!(err.to_string().contains("yaml"), "{err}");
    }

    #[test]
    fn parses_ckpt_subcommand() {
        let cmd = parse(argv("ckpt verify --file cv.ckpt")).unwrap();
        assert_eq!(
            cmd,
            Command::Ckpt {
                action: CkptAction::Verify,
                file: "cv.ckpt".into()
            }
        );
        for (word, action) in [
            ("inspect", CkptAction::Inspect),
            ("repair", CkptAction::Repair),
        ] {
            match parse(argv(&format!("ckpt {word} --file x"))).unwrap() {
                Command::Ckpt { action: a, .. } => assert_eq!(a, action),
                other => panic!("{other:?}"),
            }
        }
        let err = parse(argv("ckpt --file x")).unwrap_err();
        assert!(err.to_string().contains("action"), "{err}");
        let err = parse(argv("ckpt defrag --file x")).unwrap_err();
        assert!(err.to_string().contains("defrag"), "{err}");
        let err = parse(argv("ckpt verify")).unwrap_err();
        assert!(err.to_string().contains("--file"), "{err}");
    }

    #[test]
    fn parses_wal_subcommand() {
        let cmd = parse(argv("wal replay --dir events.wal --threads 4")).unwrap();
        assert_eq!(
            cmd,
            Command::Wal {
                action: WalAction::Replay,
                dir: "events.wal".into(),
                threads: 4,
            }
        );
        for (word, action) in [
            ("inspect", WalAction::Inspect),
            ("verify", WalAction::Verify),
            ("repair", WalAction::Repair),
        ] {
            match parse(argv(&format!("wal {word} --dir d"))).unwrap() {
                Command::Wal {
                    action: a, threads, ..
                } => {
                    assert_eq!(a, action);
                    assert_eq!(threads, 0, "threads defaults to auto");
                }
                other => panic!("{other:?}"),
            }
        }
        let err = parse(argv("wal --dir d")).unwrap_err();
        assert!(err.to_string().contains("action"), "{err}");
        let err = parse(argv("wal compact --dir d")).unwrap_err();
        assert!(err.to_string().contains("compact"), "{err}");
        let err = parse(argv("wal verify")).unwrap_err();
        assert!(err.to_string().contains("--dir"), "{err}");
    }

    #[test]
    fn parses_ingest_with_defaults() {
        let cmd = parse(argv("ingest --wal events.wal")).unwrap();
        assert_eq!(
            cmd,
            Command::Ingest {
                wal: "events.wal".into(),
                scale: "small".into(),
                seed: None,
                threads: 0,
                fsync: FsyncPolicy::default(),
                segment_bytes: forumcast_wal::DEFAULT_SEGMENT_BYTES,
                faults: None,
                trace: None,
                metrics: false,
                bench_json: None,
            }
        );
    }

    #[test]
    fn parses_ingest_with_everything() {
        let cmd = parse(argv(
            "ingest --wal w --scale medium --seed 7 --threads 2 --fsync always \
             --segment-bytes 4096 --faults wal-torn-append:0x4 --trace t.json \
             --metrics --bench-json b.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Ingest {
                wal: "w".into(),
                scale: "medium".into(),
                seed: Some(7),
                threads: 2,
                fsync: FsyncPolicy::Always,
                segment_bytes: 4096,
                faults: Some("wal-torn-append:0x4".into()),
                trace: Some("t.json".into()),
                metrics: true,
                bench_json: Some("b.json".into()),
            }
        );
        match parse(argv("ingest --wal w --fsync 16")).unwrap() {
            Command::Ingest { fsync, .. } => assert_eq!(fsync, FsyncPolicy::EveryN(16)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ingest_rejects_bad_fsync_and_unknown_options() {
        let err = parse(argv("ingest --wal w --fsync sometimes")).unwrap_err();
        assert!(err.to_string().contains("--fsync"), "{err}");
        let err = parse(argv("ingest --wal w --bogus 1")).unwrap_err();
        assert!(err.to_string().contains("bogus"), "{err}");
        let err = parse(argv("ingest")).unwrap_err();
        assert!(err.to_string().contains("--wal"), "{err}");
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse(argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(argv("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn empty_argv_errors() {
        assert!(parse(Vec::<String>::new()).is_err());
    }
}
