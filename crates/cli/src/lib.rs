//! Library backing the `forumcast` command-line tool: argument
//! parsing and the command implementations, separated from `main` so
//! they are unit-testable.
//!
//! ```text
//! forumcast generate --scale small --seed 7 --out forum.json
//! forumcast stats    --data forum.json
//! forumcast train    --data forum.json --out model.json --fast
//! forumcast predict  --data forum.json --model model.json --question 12 --user 3
//! forumcast route    --data forum.json --model model.json --question 12 --lambda 0.5
//! forumcast evaluate --scale quick
//! forumcast abtest   --scale quick --lambda 0.5
//! ```

pub mod args;
pub mod commands;

pub use args::{parse, Command, ParseError};

/// Entry point shared by `main` and tests. Returns the process exit
/// code.
pub fn run<I: IntoIterator<Item = String>>(argv: I, out: &mut dyn std::io::Write) -> i32 {
    match parse(argv) {
        Ok(cmd) => match commands::execute(cmd, out) {
            Ok(()) => 0,
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
                1
            }
        },
        Err(e) => {
            let _ = writeln!(out, "error: {e}");
            let _ = writeln!(out, "{}", args::USAGE);
            2
        }
    }
}
