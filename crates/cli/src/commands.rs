//! Implementations of the CLI commands.

use std::error::Error;
use std::io::Write;
use std::path::Path;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use forumcast_abtest::AbTestConfig;
use forumcast_core::{ResponsePredictor, TrainConfig, TrainingSet};
use forumcast_data::{io as data_io, Dataset, QuestionId, UserId};
use forumcast_eval::{experiments::table1, CkptFormat, CvOptions, EvalConfig};
use forumcast_features::{ExtractorConfig, FeatureExtractor, LdaSampler};
use forumcast_graph::{dense_graph, qa_graph, GraphStats};
use forumcast_recsys::{Candidate, QuestionRouter, RouterConfig};
use forumcast_resilience::FaultPlan;
use forumcast_synth::SynthConfig;

use forumcast_wal::{FsyncPolicy, Wal, WalConfig};

use crate::args::{CkptAction, Command, WalAction, USAGE};

type CmdResult = Result<(), Box<dyn Error>>;

/// Executes a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns any I/O, parsing, or domain error encountered; `run`
/// converts it to a non-zero exit code.
pub fn execute(cmd: Command, out: &mut dyn Write) -> CmdResult {
    match cmd {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        Command::Generate {
            scale,
            seed,
            topics,
            threads,
            out: path,
        } => generate(&scale, seed, topics, threads, &path, out),
        Command::Stats { data, gate } => {
            with_env_trace("stats", out, |out| stats(&data, gate, out))
        }
        Command::Train {
            data,
            fast,
            seed,
            lda_sampler,
            out: path,
        } => with_env_trace("train", out, |out| {
            train(&data, fast, seed, lda_sampler, &path, out)
        }),
        Command::Predict {
            data,
            model,
            question,
            user,
        } => predict(&data, &model, question, user, out),
        Command::Route {
            data,
            model,
            question,
            lambda,
            epsilon,
            capacity,
            top,
        } => route(&data, &model, question, lambda, epsilon, capacity, top, out),
        Command::Evaluate {
            scale,
            threads,
            lda_sampler,
            topics,
            data_dir,
            resume,
            snapshot_every,
            ckpt_format,
            faults,
            trace,
            metrics,
            bench_json,
        } => evaluate(
            &scale,
            threads,
            lda_sampler,
            topics,
            data_dir.as_deref(),
            resume.as_deref(),
            snapshot_every,
            ckpt_format,
            faults.as_deref(),
            trace.as_deref(),
            metrics,
            bench_json.as_deref(),
            out,
        ),
        Command::Ckpt { action, file } => ckpt(action, &file, out),
        Command::Wal {
            action,
            dir,
            threads,
        } => wal_cmd(action, &dir, threads, out),
        Command::Ingest {
            wal,
            scale,
            seed,
            threads,
            fsync,
            segment_bytes,
            faults,
            trace,
            metrics,
            bench_json,
        } => ingest(
            &wal,
            &scale,
            seed,
            threads,
            fsync,
            segment_bytes,
            faults.as_deref(),
            trace.as_deref(),
            metrics,
            bench_json.as_deref(),
            out,
        ),
        Command::BenchCompare {
            baseline,
            current,
            tolerance,
            p99_tolerance,
            min_ms,
        } => bench_compare(&baseline, &current, tolerance, p99_tolerance, min_ms, out),
        Command::AbTest { scale, lambda } => abtest(&scale, lambda, out),
    }
}

/// Runs `body` under a root span, honouring the `FORUMCAST_TRACE` env
/// var: when set, the trace collector is armed and the collected
/// pipeline spans are written there afterwards. This is how commands
/// without their own `--trace` flag (`train`, `stats`) get tracing;
/// without the env var the probes stay no-ops.
fn with_env_trace(
    root: &'static str,
    out: &mut dyn Write,
    body: impl FnOnce(&mut dyn Write) -> CmdResult,
) -> CmdResult {
    let trace_path = std::env::var(forumcast_obs::TRACE_ENV).ok();
    if trace_path.is_some() {
        forumcast_obs::arm_for_process();
    }
    let result = {
        let _root = forumcast_obs::span(root);
        body(out)
    };
    if let Some(path) = trace_path {
        if result.is_ok() {
            let log = forumcast_obs::drain().ok_or("trace collector was disarmed mid-run")?;
            std::fs::write(&path, log.to_chrome_json())
                .map_err(|e| format!("cannot write trace to `{path}`: {e}"))?;
            writeln!(out, "trace written to {path}")?;
        }
    }
    result
}

fn synth_config(scale: &str) -> Result<SynthConfig, String> {
    match scale {
        "small" => Ok(SynthConfig::small()),
        "medium" => Ok(SynthConfig::medium()),
        "paper" => Ok(SynthConfig::paper_scale()),
        other => Err(format!("unknown scale `{other}` (small|medium|paper)")),
    }
}

fn generate(
    scale: &str,
    seed: Option<u64>,
    topics: Option<usize>,
    threads: usize,
    path: &str,
    out: &mut dyn Write,
) -> CmdResult {
    let mut cfg = synth_config(scale)?;
    if let Some(s) = seed {
        cfg = cfg.with_seed(s);
    }
    if let Some(k) = topics {
        cfg = cfg.with_topics(k);
    }
    let dataset = forumcast_synth::generate_with_threads(&cfg, threads);
    std::fs::write(path, data_io::to_json(&dataset)?)
        .map_err(|e| format!("cannot write dataset to `{path}`: {e}"))?;
    writeln!(
        out,
        "wrote {} ({} questions, {} users) to {path}",
        scale,
        dataset.num_questions(),
        dataset.num_users()
    )?;
    Ok(())
}

fn load_dataset(path: &str) -> Result<Dataset, Box<dyn Error>> {
    let json =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read dataset `{path}`: {e}"))?;
    data_io::from_json(&json).map_err(|e| format!("invalid dataset `{path}`: {e}").into())
}

fn stats(data: &str, gate: bool, out: &mut dyn Write) -> CmdResult {
    let dataset = {
        let _s = forumcast_obs::span("stats.load");
        load_dataset(data)?
    };
    // Measured on the raw dataset: preprocessing drops exactly the
    // unanswered questions the first calibration check counts.
    let calibration = gate.then(|| forumcast_data::calibrate(&dataset));
    writeln!(out, "raw:   {}", dataset.stats())?;
    let (clean, report) = {
        let _s = forumcast_obs::span("stats.preprocess");
        dataset.preprocess()
    };
    writeln!(out, "clean: {}", clean.stats())?;
    writeln!(out, "preprocessing: {report}")?;
    let builders = [
        ("G_QA", qa_graph as fn(_, _) -> _),
        ("G_D", dense_graph as fn(_, _) -> _),
    ];
    for (i, (name, build)) in builders.into_iter().enumerate() {
        let _g_span = forumcast_obs::span_unit("stats.graph", i as u64);
        let g = build(clean.num_users(), clean.threads());
        let s = GraphStats::compute(&g);
        writeln!(
            out,
            "{name}: avg degree {:.2}, {} components (largest {}), disconnected {}",
            s.average_degree,
            s.num_components,
            s.largest_component,
            s.is_disconnected()
        )?;
    }
    if let Some(report) = calibration {
        writeln!(out, "calibration vs paper Section III:")?;
        write!(out, "{report}")?;
        if !report.passed() {
            return Err(format!(
                "calibration gate: {} metric(s) drifted out of the paper's \
                 Section III range",
                report.drifted().len()
            )
            .into());
        }
        writeln!(out, "calibration gate: ok")?;
    }
    Ok(())
}

/// Builds a training set over all threads of a (preprocessed) dataset,
/// with one random non-answerer per answer as negative/survival
/// samples.
fn build_training_set(dataset: &Dataset, extractor: &FeatureExtractor, seed: u64) -> TrainingSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let horizon = dataset.horizon();
    let mut ts = TrainingSet::new(extractor.dim());
    for thread in dataset.threads() {
        let d_q = extractor.question_topics(thread);
        let window = (horizon - thread.asked_at()).max(0.5);
        let mut answers = Vec::new();
        for a in &thread.answers {
            let x = extractor.features(a.author, thread, &d_q);
            ts.push_answer(x.clone(), true);
            ts.push_vote(x.clone(), a.votes as f64);
            answers.push((x, a.timestamp - thread.asked_at()));
        }
        let mut negatives = Vec::new();
        let mut guard = 0;
        while negatives.len() < thread.answers.len() && guard < 50 {
            guard += 1;
            let u = UserId(rng.gen_range(0..dataset.num_users()));
            if thread.answered_by(u) || u == thread.asker() {
                continue;
            }
            let x = extractor.features(u, thread, &d_q);
            ts.push_answer(x.clone(), false);
            negatives.push(x);
        }
        if !answers.is_empty() {
            ts.push_timing_thread(answers, negatives, window, dataset.num_users() as usize);
        }
    }
    ts
}

/// Model + extractor are persisted together so `predict`/`route` can
/// featurize raw questions consistently.
#[derive(serde::Serialize, serde::Deserialize)]
struct SavedModel {
    predictor: ResponsePredictor,
    history_threads: usize,
}

fn train(
    data: &str,
    fast: bool,
    seed: Option<u64>,
    lda_sampler: LdaSampler,
    path: &str,
    out: &mut dyn Write,
) -> CmdResult {
    let dataset = load_dataset(data)?;
    let (clean, _) = dataset.preprocess();
    let mut ex_cfg = if fast {
        ExtractorConfig::fast()
    } else {
        ExtractorConfig::paper()
    };
    ex_cfg.lda.sampler = lda_sampler;
    let extractor = FeatureExtractor::fit(clean.threads(), clean.num_users(), &ex_cfg);
    let ts = build_training_set(&clean, &extractor, seed.unwrap_or(0x7EA1));
    let (na, nv, nt) = ts.counts();
    writeln!(
        out,
        "training on {na} answer / {nv} vote samples, {nt} threads …"
    )?;
    let train_cfg = if fast {
        TrainConfig::fast()
    } else {
        TrainConfig::default()
    };
    let predictor = ResponsePredictor::train(&ts, &train_cfg);
    let saved = SavedModel {
        predictor,
        history_threads: clean.num_questions(),
    };
    std::fs::write(path, serde_json::to_string(&saved)?)
        .map_err(|e| format!("cannot write model to `{path}`: {e}"))?;
    writeln!(out, "model written to {path}")?;
    Ok(())
}

/// Loads a model and refits the (deterministic) feature extractor on
/// the dataset it was trained against.
fn load_model_and_extractor(
    data: &str,
    model: &str,
    fast_features: bool,
) -> Result<(Dataset, FeatureExtractor, ResponsePredictor), Box<dyn Error>> {
    let dataset = load_dataset(data)?;
    let (clean, _) = dataset.preprocess();
    let json =
        std::fs::read_to_string(model).map_err(|e| format!("cannot read model `{model}`: {e}"))?;
    let saved: SavedModel =
        serde_json::from_str(&json).map_err(|e| format!("invalid model `{model}`: {e}"))?;
    let ex_cfg = if fast_features {
        ExtractorConfig::fast()
    } else {
        ExtractorConfig::paper()
    };
    let extractor = FeatureExtractor::fit(clean.threads(), clean.num_users(), &ex_cfg);
    Ok((clean, extractor, saved.predictor))
}

fn predict(data: &str, model: &str, question: u32, user: u32, out: &mut dyn Write) -> CmdResult {
    let (clean, extractor, predictor) = load_model_and_extractor(data, model, true)?;
    let thread = clean
        .thread(QuestionId(question))
        .ok_or_else(|| format!("question q{question} not found"))?;
    let d_q = extractor.question_topics(thread);
    let window = (clean.horizon() - thread.asked_at()).max(0.5);
    let x = extractor.features(UserId(user), thread, &d_q);
    let (a, v, r) = predictor.predict(&x, window);
    writeln!(out, "u{user} on q{question}:")?;
    writeln!(out, "  â = {a:.4} (answer probability)")?;
    writeln!(out, "  v̂ = {v:+.2} (net votes)")?;
    writeln!(out, "  r̂ = {r:.2} h (response time)")?;
    if let Some(observed) = thread.response_time_of(UserId(user)) {
        writeln!(out, "  observed: answered after {observed:.2} h")?;
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn route(
    data: &str,
    model: &str,
    question: u32,
    lambda: f64,
    epsilon: f64,
    capacity: f64,
    top: usize,
    out: &mut dyn Write,
) -> CmdResult {
    let (clean, extractor, predictor) = load_model_and_extractor(data, model, true)?;
    let thread = clean
        .thread(QuestionId(question))
        .ok_or_else(|| format!("question q{question} not found"))?;
    let d_q = extractor.question_topics(thread);
    let window = (clean.horizon() - thread.asked_at()).max(0.5);

    // Candidates: every user that has answered anything, except the
    // asker (a deployment would use its own eligibility source).
    let mut candidates = Vec::new();
    let ctx = extractor.context();
    for u in (0..clean.num_users()).map(UserId) {
        if u == thread.asker() || ctx.answers_provided(u) == 0.0 {
            continue;
        }
        let x = extractor.features(u, thread, &d_q);
        let (a, v, r) = predictor.predict(&x, window);
        candidates.push(Candidate {
            user: u,
            answer_prob: a,
            votes: v,
            response_time: r,
        });
    }
    let mut router = QuestionRouter::new(RouterConfig {
        epsilon,
        default_capacity: capacity,
        load_window: 24.0,
    });
    match router.recommend(thread.asked_at(), lambda, &candidates) {
        None => writeln!(out, "no eligible answerers at ε = {epsilon}")?,
        Some(rec) => {
            writeln!(
                out,
                "routing q{question} (λ = {lambda}, ε = {epsilon}; objective {:+.3}):",
                rec.objective()
            )?;
            for (rank, u) in rec.ranking().into_iter().take(top).enumerate() {
                let c = candidates
                    .iter()
                    .find(|c| c.user == u)
                    .ok_or_else(|| format!("router ranked {u}, which is not a candidate"))?;
                let p = rec
                    .users()
                    .iter()
                    .position(|&x| x == u)
                    .map(|i| rec.probabilities()[i])
                    .ok_or_else(|| format!("router ranked {u} without a probability"))?;
                writeln!(
                    out,
                    "  #{:<2} {u}: p = {p:.3}, â = {:.3}, v̂ = {:+.2}, r̂ = {:.2} h",
                    rank + 1,
                    c.answer_prob,
                    c.votes,
                    c.response_time
                )?;
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn evaluate(
    scale: &str,
    threads: usize,
    lda_sampler: LdaSampler,
    topics: Option<usize>,
    data_dir: Option<&str>,
    resume: Option<&str>,
    snapshot_every: usize,
    ckpt_format: CkptFormat,
    faults: Option<&str>,
    trace: Option<&str>,
    metrics: bool,
    bench_json: Option<&str>,
    out: &mut dyn Write,
) -> CmdResult {
    if data_dir.is_some() && resume.is_some() {
        return Err(
            "--data-dir streams folds without checkpoint support; drop --resume \
             (the spill itself is the durable artifact)"
                .into(),
        );
    }
    let mut cfg = match scale {
        "quick" => EvalConfig::quick(),
        "standard" => EvalConfig::standard(),
        "paper" => EvalConfig::paper(),
        other => return Err(format!("unknown scale `{other}`").into()),
    };
    cfg.threads = threads;
    // The same flag drives mini-batch gradient accumulation; the
    // fixed-order reduction keeps results bitwise identical at any
    // thread count, so this only affects wall time.
    forumcast_ml::set_train_threads(threads);
    cfg.extractor.lda.sampler = lda_sampler;
    if let Some(k) = topics {
        cfg.extractor = cfg.extractor.with_topics(k);
    }
    // --faults wins over the FORUMCAST_FAULTS env var.
    let plan = match faults {
        Some(spec) => Some(
            FaultPlan::parse(spec)
                .map_err(|e| format!("invalid value `{spec}` for --faults: {e}"))?,
        ),
        None => FaultPlan::from_env()
            .map_err(|e| format!("invalid {}: {e}", forumcast_resilience::FAULTS_ENV))?,
    };
    if let Some(plan) = plan {
        if !plan.is_empty() {
            plan.arm_for_process();
        }
    }
    // --trace wins over the FORUMCAST_TRACE env var. Either flag (or
    // the env var) arms the collector; without them the probes stay
    // no-ops and the output is byte-identical to an uninstrumented run.
    let env_trace = std::env::var(forumcast_obs::TRACE_ENV).ok();
    let trace_path = trace.map(str::to_owned).or(env_trace);
    let collect = trace_path.is_some() || metrics || bench_json.is_some();
    if collect {
        forumcast_obs::arm_for_process();
    }
    writeln!(
        out,
        "running Table-I evaluation at scale `{scale}` ({} worker threads) …",
        cfg.worker_threads()
    )?;
    if let Some(path) = resume {
        if snapshot_every > 0 {
            writeln!(
                out,
                "checkpointing completed folds to `{path}` as {} \
                 (sub-fold snapshots every {snapshot_every} epochs)",
                ckpt_format.name()
            )?;
        } else {
            writeln!(
                out,
                "checkpointing completed folds to `{path}` as {}",
                ckpt_format.name()
            )?;
        }
    }
    if let Some(dir) = data_dir {
        writeln!(
            out,
            "spilling the experiment to `{dir}` (columnar store, one fold \
             resident at a time)"
        )?;
    }
    let cv_opts = CvOptions::default()
        .with_snapshot_every(snapshot_every)
        .with_format(ckpt_format);
    let report = {
        let _root = forumcast_obs::span("evaluate");
        match data_dir {
            Some(dir) => table1::run_streamed(&cfg, Path::new(dir)),
            None => table1::run_with(&cfg, resume.map(Path::new), &cv_opts),
        }
        .map_err(|e| format!("evaluation failed: {e}"))?
    };
    writeln!(out, "{report}")?;
    if data_dir.is_some() {
        let rss_kb = forumcast_obs::peak_rss_kb();
        if rss_kb > 0 {
            writeln!(out, "peak RSS: {:.1} MB", rss_kb as f64 / 1024.0)?;
        }
    }
    if collect {
        let log = forumcast_obs::drain().ok_or("trace collector was disarmed mid-run")?;
        if let Some(path) = &trace_path {
            std::fs::write(path, log.to_chrome_json())
                .map_err(|e| format!("cannot write trace to `{path}`: {e}"))?;
            writeln!(out, "trace written to {path}")?;
        }
        if let Some(path) = bench_json {
            std::fs::write(path, log.to_bench_json())
                .map_err(|e| format!("cannot write bench report to `{path}`: {e}"))?;
            writeln!(out, "bench report written to {path}")?;
        }
        if metrics {
            writeln!(out, "{}", log.summary().render())?;
        }
    }
    Ok(())
}

/// Reads `key` out of a parsed JSON object.
fn bench_field<'a>(v: &'a serde::Value, key: &str) -> Option<&'a serde::Value> {
    match v {
        serde::Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

/// Any JSON number as `f64` (bench reports mix integers and floats).
fn bench_f64(v: &serde::Value) -> Option<f64> {
    match v {
        serde::Value::F64(f) => Some(*f),
        serde::Value::I64(i) => Some(*i as f64),
        serde::Value::U64(u) => Some(*u as f64),
        _ => None,
    }
}

/// Parses a `forumcast-bench` document, rejecting wrong schemas and
/// versions up front so the gate never silently compares garbage.
fn load_bench_report(path: &str) -> Result<forumcast_obs::BenchReport, Box<dyn Error>> {
    let json = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read bench report `{path}`: {e}"))?;
    let v: serde::Value = serde_json::from_str(&json)
        .map_err(|e| format!("invalid JSON in bench report `{path}`: {e}"))?;
    let schema = bench_field(&v, "schema").and_then(|s| match s {
        serde::Value::Str(s) => Some(s.as_str()),
        _ => None,
    });
    if schema != Some(forumcast_obs::BENCH_SCHEMA) {
        return Err(format!(
            "`{path}` is not a `{}` document (schema: {})",
            forumcast_obs::BENCH_SCHEMA,
            schema.unwrap_or("missing")
        )
        .into());
    }
    let version = bench_field(&v, "version")
        .and_then(bench_f64)
        .ok_or_else(|| format!("`{path}` has no schema version"))? as u64;
    if version != forumcast_obs::BENCH_VERSION {
        return Err(format!(
            "`{path}` is bench schema version {version}; this build reads version {}",
            forumcast_obs::BENCH_VERSION
        )
        .into());
    }
    let wall_ms = bench_field(&v, "wall_ms")
        .and_then(bench_f64)
        .ok_or_else(|| format!("`{path}` has no wall_ms"))?;
    let mut spans = Vec::new();
    if let Some(serde::Value::Array(items)) = bench_field(&v, "spans") {
        for item in items {
            let name = match bench_field(item, "name") {
                Some(serde::Value::Str(s)) => s.clone(),
                _ => return Err(format!("`{path}` has a span without a name").into()),
            };
            let num = |key: &str| {
                bench_field(item, key)
                    .and_then(bench_f64)
                    .ok_or_else(|| format!("`{path}` span `{name}` is missing {key}"))
            };
            spans.push(forumcast_obs::BenchSpanStat {
                calls: num("calls")? as u64,
                total_ms: num("total_ms")?,
                p99_ms: num("p99_ms")?,
                name,
            });
        }
    }
    Ok(forumcast_obs::BenchReport { wall_ms, spans })
}

/// `forumcast bench compare <baseline> <current>`: the perf-regression
/// gate. Prints the per-span ratio table; exits non-zero (naming each
/// offending span) when the current report regressed past tolerance.
fn bench_compare(
    baseline: &str,
    current: &str,
    tolerance: f64,
    p99_tolerance: f64,
    min_ms: f64,
    out: &mut dyn Write,
) -> CmdResult {
    let base = load_bench_report(baseline)?;
    let cur = load_bench_report(current)?;
    let opts = forumcast_obs::CompareOptions {
        tolerance,
        p99_tolerance,
        min_ms,
    };
    let cmp = forumcast_obs::compare_reports(&base, &cur, &opts);
    write!(out, "{}", cmp.render())?;
    if cmp.passed() {
        Ok(())
    } else {
        Err(format!(
            "bench compare: {} regression(s) against `{baseline}`",
            cmp.failures.len()
        )
        .into())
    }
}

/// `forumcast ckpt <inspect|verify|repair> --file <path>`: offline
/// tooling over the framed binary checkpoint store. All three run on
/// a pure, non-mutating scan of the file; only `repair` writes (it
/// truncates to the last valid frame via the same atomic tmp+rename+
/// fsync protocol the checkpoints themselves use).
fn ckpt(action: CkptAction, file: &str, out: &mut dyn Write) -> CmdResult {
    use forumcast_store::{scan, FrameIssue, SaveOptions, StoreFile};
    let path = Path::new(file);
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read checkpoint `{file}`: {e}"))?;
    if !forumcast_store::is_store_bytes(&bytes) {
        return Err(format!(
            "`{file}` is not a framed binary checkpoint (legacy JSON \
             checkpoints have nothing to verify frame-by-frame)"
        )
        .into());
    }
    let report = scan(&bytes, path).map_err(|e| e.to_string())?;
    let issue_text = report.issue.as_ref().map(|issue| match issue {
        FrameIssue::Torn { offset } => {
            format!("torn frame at byte {offset} (incomplete tail write)")
        }
        FrameIssue::CrcMismatch { frame, offset } => {
            format!("CRC mismatch in frame {frame} at byte {offset}")
        }
    });
    match action {
        CkptAction::Inspect => {
            writeln!(out, "{file}:")?;
            writeln!(out, "  format version: {}", report.version)?;
            writeln!(out, "  fingerprint:    {}", report.fingerprint)?;
            writeln!(
                out,
                "  frames:         {} valid ({} of {} bytes)",
                report.frames.len(),
                report.valid_end,
                report.file_len
            )?;
            for (i, frame) in report.frames.iter().enumerate() {
                writeln!(out, "    frame {i}: {} payload bytes", frame.len())?;
            }
            match issue_text {
                Some(text) => writeln!(out, "  issue:          {text}")?,
                None => writeln!(out, "  issue:          none")?,
            }
            Ok(())
        }
        CkptAction::Verify => match issue_text {
            Some(text) => Err(format!(
                "checkpoint {file}: {text}; {} valid frame(s) precede the damage \
                 (`forumcast ckpt repair --file {file}` truncates to them)",
                report.frames.len()
            )
            .into()),
            None => {
                writeln!(
                    out,
                    "ok: {} frames, {} bytes, fingerprint `{}`",
                    report.frames.len(),
                    report.file_len,
                    report.fingerprint
                )?;
                Ok(())
            }
        },
        CkptAction::Repair => match issue_text {
            None => {
                writeln!(out, "nothing to repair: all frames verify")?;
                Ok(())
            }
            Some(text) => {
                let dropped = report.file_len - report.valid_end;
                let mut repaired =
                    StoreFile::new(report.fingerprint.clone(), report.frames.clone());
                repaired.version = report.version;
                repaired
                    .save(path, &SaveOptions::default())
                    .map_err(|e| format!("cannot write repaired checkpoint: {e}"))?;
                writeln!(
                    out,
                    "repaired {file}: dropped {dropped} damaged byte(s) ({text}); \
                     {} valid frame(s) kept — the next resume recomputes the lost tail",
                    report.frames.len()
                )?;
                Ok(())
            }
        },
    }
}

/// `forumcast wal <inspect|verify|repair|replay> --dir <path>`:
/// offline tooling over the segmented write-ahead event log.
/// `inspect`, `verify`, and `replay` run on a pure, non-mutating scan
/// of the directory; only `repair` writes (the same tmp-reclaim /
/// torn-tail-truncation / quarantine pass a producer runs on open).
fn wal_cmd(action: WalAction, dir: &str, threads: usize, out: &mut dyn Write) -> CmdResult {
    let path = Path::new(dir);
    match action {
        WalAction::Inspect => {
            let segments = forumcast_wal::scan_dir(path).map_err(|e| e.to_string())?;
            writeln!(out, "{dir}: {} segment(s)", segments.len())?;
            for seg in &segments {
                let name = seg
                    .path
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| seg.path.display().to_string());
                let ids: Vec<u64> = seg.entries.iter().filter_map(|e| e.id).collect();
                let range = match (ids.iter().min(), ids.iter().max()) {
                    (Some(lo), Some(hi)) => format!("ids {lo}..={hi}"),
                    _ => "no decodable ids".to_owned(),
                };
                writeln!(
                    out,
                    "  {name}: {} event(s), {range}, fingerprint `{}`",
                    seg.entries.len(),
                    seg.fingerprint.as_deref().unwrap_or("<unreadable>")
                )?;
                if let Some(damage) = &seg.damage {
                    let fate = if seg.torn {
                        "torn tail — repair truncates to the valid prefix"
                    } else {
                        "repair quarantines the segment"
                    };
                    writeln!(out, "    damage: {damage} ({fate})")?;
                }
            }
            Ok(())
        }
        WalAction::Verify => {
            let segments = forumcast_wal::scan_dir(path).map_err(|e| e.to_string())?;
            if let Some(seg) = segments.iter().find(|s| s.damage.is_some()) {
                return Err(format!(
                    "wal {dir}: segment {} is damaged: {} \
                     (`forumcast wal repair --dir {dir}` heals the log)",
                    seg.path.display(),
                    seg.damage.as_deref().unwrap_or("unknown damage"),
                )
                .into());
            }
            let events: usize = segments.iter().map(|s| s.entries.len()).sum();
            writeln!(out, "ok: {} segment(s), {events} event(s)", segments.len())?;
            Ok(())
        }
        WalAction::Repair => {
            let recovery = Wal::repair(path).map_err(|e| e.to_string())?;
            writeln!(out, "repaired {dir}: {recovery}")?;
            Ok(())
        }
        WalAction::Replay => {
            let outcome = forumcast_data::replay_wal(path, threads).map_err(|e| e.to_string())?;
            if outcome.damaged > 0 {
                writeln!(
                    out,
                    "warning: {} damaged segment(s) replayed by valid prefix only \
                     (`forumcast wal repair --dir {dir}` heals the log)",
                    outcome.damaged
                )?;
            }
            writeln!(
                out,
                "replayed {} segment(s): {}",
                outcome.segments, outcome.report
            )?;
            for p in &outcome.poison_samples {
                match p.id {
                    Some(id) => writeln!(out, "  poison: event {id}: {}", p.reason)?,
                    None => writeln!(out, "  poison: <unidentifiable frame>: {}", p.reason)?,
                }
            }
            writeln!(
                out,
                "state: {} thread(s), {} post(s)",
                outcome.state.num_threads(),
                outcome.state.num_posts()
            )?;
            writeln!(out, "state hash: {:#018x}", outcome.state.hash())?;
            Ok(())
        }
    }
}

/// `forumcast ingest --wal <dir>`: the event-sourced producer path.
/// Generates the deterministic synthetic event stream for the
/// scale/seed shard-by-shard (the full forum is never materialized,
/// so 10M-post ingests are bounded by one shard batch, not the
/// dataset), appends it to the WAL (resuming idempotently from the
/// log's first missing id, so a killed run converges when re-run),
/// then independently replays the log and refuses to report a state
/// hash the replay does not reproduce.
#[allow(clippy::too_many_arguments)]
fn ingest(
    wal_dir: &str,
    scale: &str,
    seed: Option<u64>,
    threads: usize,
    fsync: FsyncPolicy,
    segment_bytes: u64,
    faults: Option<&str>,
    trace: Option<&str>,
    metrics: bool,
    bench_json: Option<&str>,
    out: &mut dyn Write,
) -> CmdResult {
    let mut synth = synth_config(scale)?;
    if let Some(s) = seed {
        synth = synth.with_seed(s);
    }
    // The fingerprint pins the log to one generator config: resuming
    // with a different scale or seed is refused instead of silently
    // interleaving two incompatible streams.
    let cfg = WalConfig {
        fingerprint: format!("forumcast-events v1 scale={scale} seed={}", synth.seed),
        segment_bytes,
        fsync,
    };
    // --faults wins over the FORUMCAST_FAULTS env var (same contract
    // as `evaluate`).
    let plan = match faults {
        Some(spec) => Some(
            FaultPlan::parse(spec)
                .map_err(|e| format!("invalid value `{spec}` for --faults: {e}"))?,
        ),
        None => FaultPlan::from_env()
            .map_err(|e| format!("invalid {}: {e}", forumcast_resilience::FAULTS_ENV))?,
    };
    if let Some(plan) = plan {
        if !plan.is_empty() {
            plan.arm_for_process();
        }
    }
    let env_trace = std::env::var(forumcast_obs::TRACE_ENV).ok();
    let trace_path = trace.map(str::to_owned).or(env_trace);
    let collect = trace_path.is_some() || metrics || bench_json.is_some();
    if collect {
        forumcast_obs::arm_for_process();
    }
    writeln!(
        out,
        "ingesting scale `{scale}` (seed {}) into {wal_dir} (fsync {fsync}) …",
        synth.seed
    )?;
    let dir = Path::new(wal_dir);
    let (outcome, replay) = {
        let _root = forumcast_obs::span("ingest");
        let outcome = {
            // The sharded stream generates events lazily inside the
            // delivery loop — one batch of shards resident at a time,
            // never the materialized forum (the `synth.shard` task
            // spans land under this one).
            let _g = forumcast_obs::span("ingest.deliver");
            let events = forumcast_synth::ShardedEventStream::new(&synth, threads);
            forumcast_data::ingest_event_iter(dir, &cfg, events).map_err(|e| e.to_string())?
        };
        let replay = {
            let _g = forumcast_obs::span("ingest.replay");
            forumcast_data::replay_wal(dir, threads).map_err(|e| e.to_string())?
        };
        (outcome, replay)
    };
    let healed =
        outcome.recovery.torn + outcome.recovery.quarantined + outcome.recovery.tmp_reclaimed;
    if healed > 0 {
        writeln!(out, "recovery: {}", outcome.recovery)?;
    }
    if outcome.resumed_from > 0 {
        writeln!(
            out,
            "resumed from event id {} ({} event(s) already durable)",
            outcome.resumed_from, outcome.resumed_from
        )?;
    }
    if outcome.reopens > 0 {
        writeln!(out, "healed {} torn append(s) in-flight", outcome.reopens)?;
    }
    writeln!(out, "{}", outcome.report)?;
    let ingest_hash = outcome.state.hash();
    let replay_hash = replay.state.hash();
    if replay_hash != ingest_hash {
        return Err(format!(
            "replay verification failed: the log folds to {replay_hash:#018x} \
             but the live ingest reached {ingest_hash:#018x}"
        )
        .into());
    }
    writeln!(
        out,
        "state: {} thread(s), {} post(s)",
        outcome.state.num_threads(),
        outcome.state.num_posts()
    )?;
    writeln!(out, "state hash: {ingest_hash:#018x} (replay-verified)")?;
    if collect {
        let log = forumcast_obs::drain().ok_or("trace collector was disarmed mid-run")?;
        if let Some(path) = &trace_path {
            std::fs::write(path, log.to_chrome_json())
                .map_err(|e| format!("cannot write trace to `{path}`: {e}"))?;
            writeln!(out, "trace written to {path}")?;
        }
        if let Some(path) = bench_json {
            std::fs::write(path, log.to_bench_json())
                .map_err(|e| format!("cannot write bench report to `{path}`: {e}"))?;
            writeln!(out, "bench report written to {path}")?;
        }
        if metrics {
            writeln!(out, "{}", log.summary().render())?;
        }
    }
    Ok(())
}

fn abtest(scale: &str, lambda: f64, out: &mut dyn Write) -> CmdResult {
    let cfg = match scale {
        "quick" => AbTestConfig::quick(),
        "standard" => AbTestConfig::standard(),
        other => return Err(format!("unknown scale `{other}`").into()),
    }
    .with_lambda(lambda);
    let report = forumcast_abtest::run(&cfg);
    writeln!(out, "{report}")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Command;

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("forumcast-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    fn run_cmd(cmd: Command) -> (i32, String) {
        let mut buf = Vec::new();
        let code = match execute(cmd, &mut buf) {
            Ok(()) => 0,
            Err(e) => {
                buf.extend_from_slice(format!("error: {e}").as_bytes());
                1
            }
        };
        (code, String::from_utf8(buf).unwrap())
    }

    #[test]
    fn generate_stats_train_predict_route_pipeline() {
        let data_path = tmp("pipeline.json");
        let model_path = tmp("pipeline-model.json");

        let (code, text) = run_cmd(Command::Generate {
            scale: "small".into(),
            seed: Some(11),
            topics: Some(4),
            threads: 0,
            out: data_path.clone(),
        });
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("questions"));

        let (code, text) = run_cmd(Command::Stats {
            data: data_path.clone(),
            gate: false,
        });
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("G_QA"));

        let (code, text) = run_cmd(Command::Train {
            data: data_path.clone(),
            fast: true,
            seed: Some(1),
            lda_sampler: LdaSampler::Sparse,
            out: model_path.clone(),
        });
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("model written"));

        // Find an answered pair to predict for.
        let clean = {
            let json = std::fs::read_to_string(&data_path).unwrap();
            let (ds, _) = forumcast_data::io::from_json(&json).unwrap().preprocess();
            ds
        };
        let pair = clean.answered_pairs()[0];
        let (code, text) = run_cmd(Command::Predict {
            data: data_path.clone(),
            model: model_path.clone(),
            question: pair.question.0,
            user: pair.user.0,
        });
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("â ="), "{text}");
        assert!(text.contains("observed"), "{text}");

        let (code, text) = run_cmd(Command::Route {
            data: data_path,
            model: model_path,
            question: pair.question.0,
            lambda: 0.5,
            epsilon: 0.0,
            capacity: 1.0,
            top: 3,
        });
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("#1"), "{text}");
    }

    #[test]
    fn generate_is_thread_count_invariant_and_stats_gate_passes() {
        let one = tmp("gen-t1.json");
        let two = tmp("gen-t2.json");
        for (threads, path) in [(1, &one), (2, &two)] {
            let (code, text) = run_cmd(Command::Generate {
                scale: "small".into(),
                seed: Some(5),
                topics: None,
                threads,
                out: path.clone(),
            });
            assert_eq!(code, 0, "{text}");
        }
        assert_eq!(
            std::fs::read(&one).unwrap(),
            std::fs::read(&two).unwrap(),
            "sharded generation must be bitwise-identical at any thread count"
        );

        // The synthetic forum is calibrated to the paper's Section III
        // shape statistics, so the gate must pass on its own output.
        let (code, text) = run_cmd(Command::Stats {
            data: one.clone(),
            gate: true,
        });
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("calibration vs paper Section III:"), "{text}");
        assert!(text.contains("calibration gate: ok"), "{text}");
        assert!(!text.contains("DRIFT"), "{text}");
        std::fs::remove_file(&one).unwrap();
        std::fs::remove_file(&two).unwrap();
    }

    #[test]
    fn evaluate_data_dir_rejects_resume() {
        let (code, text) = run_cmd(Command::Evaluate {
            scale: "quick".into(),
            threads: 1,
            lda_sampler: LdaSampler::Dense,
            topics: None,
            data_dir: Some(tmp("spill-conflict")),
            resume: Some(tmp("spill-conflict.ckpt")),
            snapshot_every: 0,
            ckpt_format: CkptFormat::Binary,
            faults: None,
            trace: None,
            metrics: false,
            bench_json: None,
        });
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("--resume"), "{text}");
    }

    #[test]
    fn predict_unknown_question_fails_cleanly() {
        let data_path = tmp("unknown-q.json");
        let model_path = tmp("unknown-q-model.json");
        run_cmd(Command::Generate {
            scale: "small".into(),
            seed: Some(2),
            topics: Some(2),
            threads: 0,
            out: data_path.clone(),
        });
        run_cmd(Command::Train {
            data: data_path.clone(),
            fast: true,
            seed: None,
            lda_sampler: LdaSampler::Dense,
            out: model_path.clone(),
        });
        let (code, text) = run_cmd(Command::Predict {
            data: data_path,
            model: model_path,
            question: 999_999,
            user: 0,
        });
        assert_eq!(code, 1);
        assert!(text.contains("not found"));
    }

    #[test]
    fn ckpt_inspect_verify_repair_roundtrip() {
        use forumcast_store::{SaveOptions, StoreFile};
        let file = tmp("ckpt-tool.ckpt");
        let path = std::path::Path::new(&file);
        StoreFile::new("cli-test v1", vec![vec![1, 2, 3], vec![4, 5], vec![6]])
            .save(path, &SaveOptions::default())
            .unwrap();

        let (code, text) = run_cmd(Command::Ckpt {
            action: CkptAction::Inspect,
            file: file.clone(),
        });
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("cli-test v1"), "{text}");
        assert!(text.contains("frame 2"), "{text}");

        let (code, text) = run_cmd(Command::Ckpt {
            action: CkptAction::Verify,
            file: file.clone(),
        });
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("ok: 3 frames"), "{text}");

        // Flip a bit in the last frame's CRC: verify must fail naming
        // the frame, and repair must truncate to the 2 intact frames.
        let mut bytes = std::fs::read(path).unwrap();
        *bytes.last_mut().unwrap() ^= 0x01;
        std::fs::write(path, &bytes).unwrap();
        let (code, text) = run_cmd(Command::Ckpt {
            action: CkptAction::Verify,
            file: file.clone(),
        });
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("frame 2"), "{text}");

        let (code, text) = run_cmd(Command::Ckpt {
            action: CkptAction::Repair,
            file: file.clone(),
        });
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("2 valid frame(s)"), "{text}");
        let (code, text) = run_cmd(Command::Ckpt {
            action: CkptAction::Verify,
            file: file.clone(),
        });
        assert_eq!(code, 0, "repaired file must verify clean: {text}");
        assert!(text.contains("ok: 2 frames"), "{text}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn ckpt_verify_rejects_non_store_files() {
        let file = tmp("ckpt-tool.json");
        std::fs::write(&file, "{\"meta\":\"legacy\"}").unwrap();
        let (code, text) = run_cmd(Command::Ckpt {
            action: CkptAction::Verify,
            file: file.clone(),
        });
        assert_eq!(code, 1);
        assert!(text.contains("not a framed binary checkpoint"), "{text}");
        std::fs::remove_file(&file).unwrap();
    }

    #[test]
    fn wal_tool_inspect_verify_repair_replay_roundtrip() {
        use forumcast_data::{encode_event, ForumEvent};
        let dir = tmp("wal-tool.wal");
        let _ = std::fs::remove_dir_all(&dir);
        let path = std::path::Path::new(&dir);
        let cfg = forumcast_wal::WalConfig {
            fingerprint: "cli-wal-test v1".into(),
            segment_bytes: 128,
            fsync: FsyncPolicy::OnRotate,
        };
        let events = [
            ForumEvent::NewQuestion {
                question: 0,
                author: 0,
                timestamp: 1.0,
                text: "how do I sort a vec".into(),
                code: String::new(),
            },
            ForumEvent::NewAnswer {
                question: 0,
                author: 1,
                timestamp: 2.0,
                text: "call sort()".into(),
                code: "v.sort();".into(),
            },
            ForumEvent::NewVote {
                question: 0,
                post: 1,
                delta: 3,
            },
        ];
        let (mut wal, _) = forumcast_wal::Wal::open(path, cfg).unwrap();
        for (i, ev) in events.iter().enumerate() {
            wal.append(i as u64, &encode_event(ev)).unwrap();
        }
        wal.finish().unwrap();

        let wal_cmd = |action: WalAction| Command::Wal {
            action,
            dir: dir.clone(),
            threads: 1,
        };
        let (code, text) = run_cmd(wal_cmd(WalAction::Inspect));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("cli-wal-test v1"), "{text}");
        assert!(text.contains("ids 0..="), "{text}");

        let (code, text) = run_cmd(wal_cmd(WalAction::Verify));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("3 event(s)"), "{text}");

        let (code, text) = run_cmd(wal_cmd(WalAction::Replay));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("applied 3/3"), "{text}");
        assert!(text.contains("state hash: 0x"), "{text}");

        // Tear the tail of the last segment: verify must fail naming
        // it, repair must heal, and replay then sees one fewer event.
        let mut segs: Vec<_> = std::fs::read_dir(path)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        segs.sort();
        let last = segs.last().unwrap();
        let bytes = std::fs::read(last).unwrap();
        std::fs::write(last, &bytes[..bytes.len() - 3]).unwrap();

        let (code, text) = run_cmd(wal_cmd(WalAction::Verify));
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("damaged"), "{text}");
        assert!(text.contains("wal repair"), "{text}");

        let (code, text) = run_cmd(wal_cmd(WalAction::Repair));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("repaired"), "{text}");
        let (code, text) = run_cmd(wal_cmd(WalAction::Verify));
        assert_eq!(code, 0, "healed log must verify clean: {text}");
        let (code, text) = run_cmd(wal_cmd(WalAction::Replay));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("applied 2/2"), "{text}");
        std::fs::remove_dir_all(path).unwrap();
    }

    #[test]
    fn ingest_is_idempotent_and_replay_verified() {
        let dir = tmp("ingest-cli.wal");
        let _ = std::fs::remove_dir_all(&dir);
        let bench = tmp("ingest-cli-bench.json");
        let cmd = |bench_json: Option<String>| Command::Ingest {
            wal: dir.clone(),
            scale: "small".into(),
            seed: Some(11),
            threads: 2,
            fsync: FsyncPolicy::OnRotate,
            segment_bytes: 64 * 1024,
            faults: None,
            trace: None,
            metrics: false,
            bench_json,
        };
        let (code, text) = run_cmd(cmd(None));
        assert_eq!(code, 0, "{text}");
        let hash_line = |text: &str| {
            text.lines()
                .find(|l| l.starts_with("state hash:"))
                .map(str::to_owned)
                .unwrap_or_else(|| panic!("no state hash in: {text}"))
        };
        let first = hash_line(&text);
        assert!(text.contains("replay-verified"), "{text}");
        assert!(
            !text.contains("resumed from"),
            "first run starts at 0: {text}"
        );

        // Re-running the same config over the same log appends
        // nothing and lands on the identical hash.
        let (code, text) = run_cmd(cmd(Some(bench.clone())));
        assert_eq!(code, 0, "{text}");
        assert_eq!(hash_line(&text), first);
        assert!(text.contains("resumed from event id"), "{text}");
        let report = std::fs::read_to_string(&bench).unwrap();
        assert!(report.contains("\"ingest\""), "ingest span in bench json");
        assert!(report.contains("ingest.replay"), "{report}");

        // A different seed must be refused: the log is fingerprinted
        // to one generator config.
        let (code, text) = run_cmd(Command::Ingest {
            wal: dir.clone(),
            scale: "small".into(),
            seed: Some(12),
            threads: 2,
            fsync: FsyncPolicy::OnRotate,
            segment_bytes: 64 * 1024,
            faults: None,
            trace: None,
            metrics: false,
            bench_json: None,
        });
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("fingerprint"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_file(&bench).unwrap();
    }

    #[test]
    fn bench_compare_gates_on_regression() {
        let base = tmp("bench-base.json");
        let cur = tmp("bench-cur.json");
        let doc = |wall: f64, total: f64| {
            format!(
                "{{\"schema\": \"forumcast-bench\", \"version\": 1, \"wall_ms\": {wall},\n\
                 \"spans\": [{{\"name\": \"evaluate\", \"calls\": 1, \"total_ms\": {total},\n\
                 \"self_ms\": 1.0, \"p50_ms\": 1.0, \"p90_ms\": 1.0, \"p99_ms\": {total},\n\
                 \"max_ms\": {total}}}], \"counters\": [], \"histograms\": []}}"
            )
        };
        let cmd = |b: &str, c: &str| Command::BenchCompare {
            baseline: b.into(),
            current: c.into(),
            tolerance: 1.5,
            p99_tolerance: 2.0,
            min_ms: 20.0,
        };
        std::fs::write(&base, doc(100.0, 90.0)).unwrap();
        std::fs::write(&cur, doc(105.0, 95.0)).unwrap();
        let (code, text) = run_cmd(cmd(&base, &cur));
        assert_eq!(code, 0, "{text}");
        assert!(text.contains("bench compare: OK"), "{text}");

        std::fs::write(&cur, doc(400.0, 380.0)).unwrap();
        let (code, text) = run_cmd(cmd(&base, &cur));
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("`evaluate`"), "{text}");

        std::fs::write(&cur, "{\"schema\": \"other\", \"version\": 1}").unwrap();
        let (code, text) = run_cmd(cmd(&base, &cur));
        assert_eq!(code, 1, "{text}");
        assert!(text.contains("forumcast-bench"), "{text}");
    }

    #[test]
    fn stats_on_missing_file_fails() {
        let (code, text) = run_cmd(Command::Stats {
            data: tmp("does-not-exist.json"),
            gate: false,
        });
        assert_eq!(code, 1);
        assert!(text.contains("error"));
    }

    #[test]
    fn help_prints_usage() {
        let (code, text) = run_cmd(Command::Help);
        assert_eq!(code, 0);
        assert!(text.contains("usage: forumcast"));
    }
}
