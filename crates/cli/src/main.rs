//! The `forumcast` command-line tool. See [`forumcast_cli`] for the
//! commands.

fn main() {
    let code = forumcast_cli::run(std::env::args().skip(1), &mut std::io::stdout());
    std::process::exit(code);
}
